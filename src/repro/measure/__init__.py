"""The measurement harness (OpenWPM-style crawls, paper §3/§4).

Provides multi-vantage-point detection crawls, cookie measurements
with repeat visits, SMP subscription measurements, uBlock bypass
measurements, accuracy evaluation, record storage, and the sharded
crawl engine that schedules all of the above (plan → shard → execute →
merge; see :mod:`repro.measure.engine`).
"""

from repro.measure.cookies_analysis import CookieCounts, count_cookies
from repro.measure.crawl import Crawler, CrawlResult
from repro.measure.engine import (
    EXECUTOR_BACKENDS,
    MERGE_MODES,
    CheckpointCompaction,
    CheckpointMismatch,
    CrawlEngine,
    CrawlPlan,
    CrawlTask,
    EngineResult,
    FaultInjectingExecutor,
    FaultInjectingProcessExecutor,
    ParallelExecutor,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    TaskOutcome,
    plan_fingerprint,
)
from repro.measure.records import CookieMeasurement, VisitRecord
from repro.measure.storage import (
    TornRecordWarning,
    iter_records,
    load_records,
    save_records,
)

__all__ = [
    "Crawler",
    "CrawlResult",
    "CrawlEngine",
    "CrawlPlan",
    "CrawlTask",
    "CheckpointCompaction",
    "CheckpointMismatch",
    "EngineResult",
    "TaskOutcome",
    "RetryPolicy",
    "SerialExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "FaultInjectingExecutor",
    "FaultInjectingProcessExecutor",
    "EXECUTOR_BACKENDS",
    "MERGE_MODES",
    "VisitRecord",
    "CookieMeasurement",
    "CookieCounts",
    "TornRecordWarning",
    "count_cookies",
    "plan_fingerprint",
    "save_records",
    "load_records",
    "iter_records",
]
