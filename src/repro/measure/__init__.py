"""The measurement harness (OpenWPM-style crawls, paper §3/§4).

Provides multi-vantage-point detection crawls, cookie measurements
with repeat visits, SMP subscription measurements, uBlock bypass
measurements, accuracy evaluation, record storage, and the sharded
crawl engine that schedules all of the above (plan → shard → execute →
merge; see :mod:`repro.measure.engine`).
"""

from repro.measure.cookies_analysis import CookieCounts, count_cookies
from repro.measure.crawl import Crawler, CrawlResult
from repro.measure.engine import (
    CrawlEngine,
    CrawlPlan,
    CrawlTask,
    EngineResult,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    TaskOutcome,
)
from repro.measure.records import CookieMeasurement, VisitRecord
from repro.measure.storage import iter_records, load_records, save_records

__all__ = [
    "Crawler",
    "CrawlResult",
    "CrawlEngine",
    "CrawlPlan",
    "CrawlTask",
    "EngineResult",
    "TaskOutcome",
    "RetryPolicy",
    "SerialExecutor",
    "ParallelExecutor",
    "VisitRecord",
    "CookieMeasurement",
    "CookieCounts",
    "count_cookies",
    "save_records",
    "load_records",
    "iter_records",
]
