"""The measurement harness (OpenWPM-style crawls, paper §3/§4).

Provides multi-vantage-point detection crawls, cookie measurements
with repeat visits, SMP subscription measurements, uBlock bypass
measurements, accuracy evaluation, and record storage.
"""

from repro.measure.cookies_analysis import CookieCounts, count_cookies
from repro.measure.crawl import Crawler, CrawlResult
from repro.measure.records import CookieMeasurement, VisitRecord
from repro.measure.storage import load_records, save_records

__all__ = [
    "Crawler",
    "CrawlResult",
    "VisitRecord",
    "CookieMeasurement",
    "CookieCounts",
    "count_cookies",
    "save_records",
    "load_records",
]
