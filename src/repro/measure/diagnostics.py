"""Crawl health diagnostics (OpenWPM-style run summaries).

Aggregates visit records into the kind of operational report a
large-scale crawl needs: reachability per vantage point, error
breakdown, banner/wall hit rates, and detector-location mix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.measure.records import VisitRecord


@dataclass
class CrawlDiagnostics:
    """Aggregated health metrics of one crawl."""

    total_visits: int = 0
    reachable: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    per_vp_visits: Dict[str, int] = field(default_factory=dict)
    per_vp_unreachable: Dict[str, int] = field(default_factory=dict)
    banner_rate: float = 0.0
    wall_rate: float = 0.0
    locations: Dict[str, int] = field(default_factory=dict)

    @property
    def reachability(self) -> float:
        return self.reachable / self.total_visits if self.total_visits else 0.0

    def render(self) -> str:
        lines = [
            "Crawl diagnostics",
            f"  visits:        {self.total_visits}",
            f"  reachable:     {self.reachable} "
            f"({self.reachability * 100:.1f}%)",
            f"  banner rate:   {self.banner_rate * 100:.1f}%",
            f"  wall rate:     {self.wall_rate * 100:.2f}%",
        ]
        if self.errors:
            lines.append("  errors:")
            for name, count in sorted(self.errors.items()):
                lines.append(f"    {name:<22} {count}")
        if self.locations:
            lines.append("  banner locations:")
            for name, count in sorted(self.locations.items()):
                lines.append(f"    {name:<14} {count}")
        for vp in sorted(self.per_vp_visits):
            lines.append(
                f"  {vp}: {self.per_vp_visits[vp]} visits, "
                f"{self.per_vp_unreachable.get(vp, 0)} unreachable"
            )
        return "\n".join(lines)


def diagnose(records: Sequence[VisitRecord]) -> CrawlDiagnostics:
    """Summarise crawl records into :class:`CrawlDiagnostics`."""
    diag = CrawlDiagnostics()
    diag.total_visits = len(records)
    error_counter: Counter = Counter()
    vp_counter: Counter = Counter()
    vp_unreachable: Counter = Counter()
    location_counter: Counter = Counter()
    banners = walls = 0
    for record in records:
        vp_counter[record.vp] += 1
        if record.reachable:
            diag.reachable += 1
        else:
            vp_unreachable[record.vp] += 1
            if record.error:
                error_counter[record.error] += 1
        if record.banner_found:
            banners += 1
            location_counter[record.banner_location] += 1
        if record.is_cookiewall:
            walls += 1
    if diag.reachable:
        diag.banner_rate = banners / diag.reachable
        diag.wall_rate = walls / diag.reachable
    diag.errors = dict(error_counter)
    diag.per_vp_visits = dict(vp_counter)
    diag.per_vp_unreachable = dict(vp_unreachable)
    diag.locations = dict(location_counter)
    return diag
