"""The crawler: detection crawls, cookie measurements, bypass runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.adblock import UBlockOrigin
from repro.bannerclick import BannerClick, accept_banner, reject_banner
from repro.errors import MeasurementError, NavigationError, NetworkError
from repro.httpkit import CookieJar
from repro.lang import LanguageDetector
from repro.measure.cookies_analysis import CookieCounts, average_counts, count_cookies
from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.smp import SMPPlatform
from repro.vantage import VANTAGE_POINTS
from repro.webgen.world import World


@dataclass
class CrawlResult:
    """All visit records of one crawl, with simple accessors."""

    records: List[VisitRecord] = field(default_factory=list)

    def by_vp(self, vp: str) -> List[VisitRecord]:
        return [r for r in self.records if r.vp == vp]

    def cookiewalls(self, vp: Optional[str] = None) -> List[VisitRecord]:
        return [
            r for r in self.records
            if r.is_cookiewall and (vp is None or r.vp == vp)
        ]

    def cookiewall_domains(self, vp: Optional[str] = None) -> List[str]:
        seen = set()
        out = []
        for record in self.cookiewalls(vp):
            if record.domain not in seen:
                seen.add(record.domain)
                out.append(record.domain)
        return out

    def regular_banner_domains(self, vp: str) -> List[str]:
        return [
            r.domain for r in self.by_vp(vp)
            if r.banner_found and not r.is_cookiewall and r.has_accept
        ]

    def __len__(self) -> int:
        return len(self.records)


class Crawler:
    """Runs the paper's measurements against a :class:`World`."""

    def __init__(
        self,
        world: World,
        *,
        bannerclick: Optional[BannerClick] = None,
        language_detector: Optional[LanguageDetector] = None,
    ) -> None:
        self.world = world
        self.bannerclick = bannerclick or BannerClick()
        self._lang = language_detector or LanguageDetector()

    # ------------------------------------------------------------------
    # Detection crawls (Table 1, §4.1)
    # ------------------------------------------------------------------
    def visit(
        self,
        vp: str,
        domain: str,
        *,
        extensions: Sequence = (),
        detect_language: bool = True,
    ) -> VisitRecord:
        """One detection visit with a fresh browser profile."""
        record = VisitRecord(vp=vp, domain=domain)
        browser = self.world.browser(vp, extensions=extensions)
        try:
            page = browser.visit(domain)
        except (NavigationError, NetworkError) as exc:
            record.reachable = False
            record.error = type(exc).__name__
            return record
        detection = self.bannerclick.detect(page)
        record.banner_found = detection.found
        record.banner_location = detection.location
        record.has_accept = detection.accept_element is not None
        record.has_reject = detection.has_reject
        record.is_cookiewall = detection.is_cookiewall
        record.wall_word_match = detection.wall_word_match
        record.currency_matches = list(detection.currency_matches)
        record.banner_text = detection.text
        record.flags = dict(page.flags)
        if page.scroll_locked:
            record.flags["scroll_locked"] = True
        if detect_language and detection.is_cookiewall:
            record.detected_language = self._lang.detect(
                page.visible_text()
            ).language
        return record

    def crawl_vp(
        self,
        vp: str,
        domains: Optional[Iterable[str]] = None,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[VisitRecord]:
        """Detection-crawl *domains* (default: the full target union)."""
        targets = list(domains) if domains is not None else self.world.crawl_targets
        records = []
        total = len(targets)
        for index, domain in enumerate(targets):
            records.append(self.visit(vp, domain))
            if progress is not None and (index + 1) % 1000 == 0:
                progress(index + 1, total)
        return records

    def crawl_all(
        self,
        vps: Optional[Sequence[str]] = None,
        domains: Optional[Iterable[str]] = None,
        *,
        progress: Optional[Callable[[str, int, int], None]] = None,
    ) -> CrawlResult:
        """The full multi-VP detection crawl."""
        vps = list(vps) if vps is not None else list(VANTAGE_POINTS)
        targets = list(domains) if domains is not None else self.world.crawl_targets
        result = CrawlResult()
        for vp in vps:
            vp_progress = None
            if progress is not None:
                vp_progress = lambda done, total, _vp=vp: progress(_vp, done, total)
            result.records.extend(
                self.crawl_vp(vp, targets, progress=vp_progress)
            )
        return result

    # ------------------------------------------------------------------
    # Cookie measurements (§4.3, Figure 4; §4.4, Figure 5)
    # ------------------------------------------------------------------
    def measure_accept_cookies(
        self, vp: str, domain: str, *, repeats: int = 5
    ) -> CookieMeasurement:
        """Visit, accept the banner, reload, count cookies; repeat."""
        measurement = CookieMeasurement(vp=vp, domain=domain, mode="accept")
        counts: List[CookieCounts] = []
        for _ in range(repeats):
            jar = CookieJar()
            browser = self.world.browser(vp, jar=jar)
            try:
                page = browser.visit(domain)
                detection = self.bannerclick.detect(page)
                if detection.found and detection.accept_element is not None:
                    accept_banner(browser, page, detection)
                    page = browser.reload(page)
            except (NavigationError, NetworkError, MeasurementError) as exc:
                measurement.error = type(exc).__name__
                continue
            site = page.site or domain
            count = count_cookies(jar, site, self.world.tracking_list)
            counts.append(count)
            measurement.per_visit.append(count.as_dict())
        measurement.repeats = len(counts)
        (measurement.avg_first_party,
         measurement.avg_third_party,
         measurement.avg_tracking) = average_counts(counts)
        return measurement

    def measure_reject_cookies(
        self, vp: str, domain: str, *, repeats: int = 5
    ) -> CookieMeasurement:
        """Visit, click reject (where offered), reload, count cookies.

        BannerClick's reject interaction (its PAM'23 heritage); walls
        have no reject button, so those measurements record an error.
        """
        measurement = CookieMeasurement(vp=vp, domain=domain, mode="reject")
        counts: List[CookieCounts] = []
        for _ in range(repeats):
            jar = CookieJar()
            browser = self.world.browser(vp, jar=jar)
            try:
                page = browser.visit(domain)
                detection = self.bannerclick.detect(page)
                if detection.found:
                    reject_banner(browser, page, detection)
                    page = browser.reload(page)
            except (NavigationError, NetworkError, MeasurementError) as exc:
                measurement.error = type(exc).__name__
                continue
            site = page.site or domain
            count = count_cookies(jar, site, self.world.tracking_list)
            counts.append(count)
            measurement.per_visit.append(count.as_dict())
        measurement.repeats = len(counts)
        (measurement.avg_first_party,
         measurement.avg_third_party,
         measurement.avg_tracking) = average_counts(counts)
        return measurement

    def measure_subscription_cookies(
        self,
        vp: str,
        domain: str,
        platform: SMPPlatform,
        email: str,
        password: str,
        *,
        repeats: int = 5,
    ) -> CookieMeasurement:
        """Visit as a logged-in subscriber; count newly set cookies."""
        measurement = CookieMeasurement(vp=vp, domain=domain, mode="subscription")
        counts: List[CookieCounts] = []
        for _ in range(repeats):
            jar = CookieJar()
            browser = self.world.browser(vp, jar=jar)
            try:
                login = browser.visit(
                    f"https://{platform.domain}/login"
                    f"?email={email}&password={password}"
                )
                if login.status != 200:
                    raise MeasurementError("SMP login failed")
                baseline = jar.snapshot()
                page = browser.visit(domain)
            except (NavigationError, NetworkError, MeasurementError) as exc:
                measurement.error = type(exc).__name__
                continue
            site = page.site or domain
            count = count_cookies(
                jar, site, self.world.tracking_list, baseline=baseline
            )
            counts.append(count)
            measurement.per_visit.append(count.as_dict())
        measurement.repeats = len(counts)
        (measurement.avg_first_party,
         measurement.avg_third_party,
         measurement.avg_tracking) = average_counts(counts)
        return measurement

    # ------------------------------------------------------------------
    # uBlock bypass measurement (§4.5)
    # ------------------------------------------------------------------
    def measure_ublock(
        self, vp: str, domain: str, *, iterations: int = 5
    ) -> UBlockRecord:
        """Visit with uBlock (Annoyances enabled); check wall and page."""
        record = UBlockRecord(domain=domain, iterations=iterations)
        for _ in range(iterations):
            ublock = UBlockOrigin(annoyances=True)
            browser = self.world.browser(vp, extensions=[ublock])
            try:
                page = browser.visit(domain)
            except (NavigationError, NetworkError):
                continue
            detection = self.bannerclick.detect(page)
            if detection.is_cookiewall:
                record.wall_seen_count += 1
            if page.flags.get("adblock_wall"):
                record.broken = True
                record.broken_reason = "anti-adblock prompt"
            elif page.scroll_locked and not detection.is_cookiewall:
                record.broken = True
                record.broken_reason = "page not scrollable"
        record.suppressed = record.wall_seen_count == 0
        return record
