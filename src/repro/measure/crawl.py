"""The crawler: detection crawls, cookie measurements, bypass runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.adblock import UBlockOrigin
from repro.bannerclick import BannerClick, accept_banner, reject_banner
from repro.consent.tcf import accept_all_string
from repro.errors import (
    MeasurementError,
    NavigationError,
    NetworkError,
    is_transient,
)
from repro.httpkit import CookieJar
from repro.lang import LanguageDetector
from repro.measure.cookies_analysis import CookieCounts, average_counts, count_cookies
from repro.measure.engine import CrawlPlan, CrawlTask
from repro.measure.instrumentation import BatchedProgress
from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.smp import SMPPlatform
from repro.vantage import VANTAGE_POINTS
from repro.vantage.regulation import RegulationScenario
from repro.webgen.world import World

#: Legacy progress cadence of the serial crawler, kept for the wrappers.
PROGRESS_BATCH = 1000


@dataclass
class CrawlResult:
    """All visit records of one crawl, with simple accessors."""

    records: List[VisitRecord] = field(default_factory=list)

    def by_vp(self, vp: str) -> List[VisitRecord]:
        return [r for r in self.records if r.vp == vp]

    def cookiewalls(self, vp: Optional[str] = None) -> List[VisitRecord]:
        return [
            r for r in self.records
            if r.is_cookiewall and (vp is None or r.vp == vp)
        ]

    def cookiewall_domains(self, vp: Optional[str] = None) -> List[str]:
        seen = set()
        out = []
        for record in self.cookiewalls(vp):
            if record.domain not in seen:
                seen.add(record.domain)
                out.append(record.domain)
        return out

    def regular_banner_domains(self, vp: str) -> List[str]:
        return [
            r.domain for r in self.by_vp(vp)
            if r.banner_found and not r.is_cookiewall and r.has_accept
        ]

    def __len__(self) -> int:
        return len(self.records)


class Crawler:
    """Runs the paper's measurements against a :class:`World`."""

    def __init__(
        self,
        world: World,
        *,
        bannerclick: Optional[BannerClick] = None,
        language_detector: Optional[LanguageDetector] = None,
        ublock_lists: Optional[Sequence[str]] = None,
    ) -> None:
        self.world = world
        self.bannerclick = bannerclick or BannerClick()
        self._lang = language_detector or LanguageDetector()
        #: Extra filter-list texts loaded into every uBlock instance of
        #: the §4.5 measurement (e.g. a full-scale list for benchmarks).
        self.ublock_lists = list(ublock_lists) if ublock_lists else None

    # ------------------------------------------------------------------
    # Detection crawls (Table 1, §4.1)
    # ------------------------------------------------------------------
    def visit(
        self,
        vp: str,
        domain: str,
        *,
        extensions: Sequence = (),
        detect_language: bool = True,
        visit_ids=None,
        scenario: Optional[RegulationScenario] = None,
        wave: int = 0,
    ) -> VisitRecord:
        """One detection visit with a fresh browser profile.

        *scenario* applies multi-vantage campaign knobs: the record
        keeps the logical *vp*, but the browser is located at the
        scenario's exit vantage point for *wave*, and visits to wall
        sites from a geo-blocked exit fail with ``error="GeoBlocked"``
        before any request is made.
        """
        record = VisitRecord(vp=vp, domain=domain)
        exit_vp = vp
        if scenario is not None:
            exit_vp = scenario.exit_vp(vp, wave)
            if scenario.blocks(exit_vp) and self._wall_site(domain):
                record.reachable = False
                record.error = "GeoBlocked"
                return record
        browser = self.world.browser(
            exit_vp, extensions=extensions, visit_ids=visit_ids
        )
        try:
            page = browser.visit(domain)
        except (NavigationError, NetworkError) as exc:
            if is_transient(exc):
                raise
            record.reachable = False
            record.error = type(exc).__name__
            return record
        detection = self.bannerclick.detect(page)
        record.banner_found = detection.found
        record.banner_location = detection.location
        record.has_accept = detection.accept_element is not None
        record.has_reject = detection.has_reject
        record.is_cookiewall = detection.is_cookiewall
        record.wall_word_match = detection.wall_word_match
        record.currency_matches = list(detection.currency_matches)
        record.banner_text = detection.text
        record.flags = dict(page.flags)
        if page.scroll_locked:
            record.flags["scroll_locked"] = True
        if exit_vp != vp:
            record.flags["exit_vp"] = exit_vp
        if detection.accept_element is not None:
            cmp_id = detection.accept_element.get_attribute("data-cmp-id")
            if cmp_id and str(cmp_id).isdigit():
                record.flags["tcf_accept"] = accept_all_string(int(cmp_id))
        if scenario is not None:
            # Campaign-only enrichment: the jar's third-party site set
            # depends on the visit id (sync-pixel partners are drawn
            # per visit), so recording it on plain detection visits
            # would break the engine's serial-vs-parallel record
            # identity.  Campaign plans always run in the per-task id
            # regime, where the set is reproducible.
            site = page.site or domain
            third_party = sorted({
                cookie.site
                for cookie in browser.jar.all_cookies()
                if cookie.site and cookie.site != site
            })
            if third_party:
                record.flags["cookies_third_party"] = third_party
        if detect_language and detection.is_cookiewall:
            record.detected_language = self._lang.detect(
                page.visible_text()
            ).language
        return record

    def _wall_site(self, domain: str) -> bool:
        """True when *domain* is a ground-truth accept-or-pay wall site."""
        spec = self.world.sites.get(domain)
        return spec is not None and spec.wall is not None

    def crawl_vp(
        self,
        vp: str,
        domains: Optional[Iterable[str]] = None,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        workers: int = 1,
        shards: Optional[int] = None,
    ) -> List[VisitRecord]:
        """Detection-crawl *domains* (default: the full target union).

        A thin wrapper over the crawl engine: compiles a single-VP
        detection plan and executes it with *workers* threads.
        *progress* fires every :data:`PROGRESS_BATCH` sites and — unlike
        the old serial loop — once more for the final partial batch, so
        short crawls also report completion.
        """
        # Imported lazily: repro.api is built on this module.
        from repro.api import EngineSpec, Session

        plan = self.plan_detection_crawl([vp], domains)
        hook = None
        if progress is not None:
            hook = BatchedProgress(progress, every=PROGRESS_BATCH)
        session = Session(
            self.world,
            engine=EngineSpec(workers=workers, shards=shards),
            crawler=self,
            progress=hook,
        )
        return session.execute(plan).records

    def crawl_all(
        self,
        vps: Optional[Sequence[str]] = None,
        domains: Optional[Iterable[str]] = None,
        *,
        progress: Optional[Callable[[str, int, int], None]] = None,
        workers: int = 1,
        shards: Optional[int] = None,
    ) -> CrawlResult:
        """The full multi-VP detection crawl, engine-executed.

        For a fixed world seed the returned records are identical for
        every *workers*/*shards* combination: outcomes are merged in
        plan (vp-major, then target) order and detection visits do not
        depend on scheduling.
        """
        from repro.api import EngineSpec, Session

        vps = list(vps) if vps is not None else list(VANTAGE_POINTS)
        targets = list(domains) if domains is not None else self.world.crawl_targets
        plan = self.plan_detection_crawl(vps, targets)
        hook = None
        if progress is not None:
            hook = BatchedProgress(
                progress, every=PROGRESS_BATCH, per_vp_total=len(targets)
            )
        session = Session(
            self.world,
            engine=EngineSpec(workers=workers, shards=shards),
            crawler=self,
            progress=hook,
        )
        return CrawlResult(records=session.execute(plan).records)

    # ------------------------------------------------------------------
    # Plan compilation (the engine's front end)
    # ------------------------------------------------------------------
    def plan_detection_crawl(
        self,
        vps: Optional[Sequence[str]] = None,
        domains: Optional[Iterable[str]] = None,
    ) -> CrawlPlan:
        """Compile the multi-VP detection crawl into a task plan."""
        vps = list(vps) if vps is not None else list(VANTAGE_POINTS)
        targets = list(domains) if domains is not None else self.world.crawl_targets
        return CrawlPlan(tasks=[
            CrawlTask(vp=vp, domain=domain, mode="detect")
            for vp in vps
            for domain in targets
        ])

    def plan_cookie_measurements(
        self,
        vp: str,
        domains: Iterable[str],
        *,
        mode: str = "accept",
        repeats: int = 5,
    ) -> CrawlPlan:
        """Compile repeated accept/reject cookie measurements."""
        if mode not in ("accept", "reject"):
            raise ValueError(f"unsupported cookie-measurement mode {mode!r}")
        return CrawlPlan(tasks=[
            CrawlTask(vp=vp, domain=domain, mode=mode, repeats=repeats)
            for domain in domains
        ])

    def plan_subscription_measurements(
        self,
        vp: str,
        domains: Iterable[str],
        platform: str,
        email: str,
        password: str,
        *,
        repeats: int = 5,
    ) -> CrawlPlan:
        """Compile logged-in SMP subscriber measurements.

        *platform* is the platform name (a ``world.platforms`` key); the
        credentials travel in the plan context so the plan stays pure
        serialisable data.
        """
        return CrawlPlan(
            tasks=[
                CrawlTask(vp=vp, domain=domain, mode="subscription",
                          repeats=repeats)
                for domain in domains
            ],
            context={
                "platform": platform, "email": email, "password": password,
            },
        )

    def plan_ublock(
        self,
        vp: str,
        domains: Iterable[str],
        *,
        iterations: int = 5,
    ) -> CrawlPlan:
        """Compile the §4.5 uBlock bypass measurement."""
        return CrawlPlan(tasks=[
            CrawlTask(vp=vp, domain=domain, mode="ublock", repeats=iterations)
            for domain in domains
        ])

    def run_task(
        self,
        task: CrawlTask,
        context: Optional[Dict] = None,
        *,
        visit_ids=None,
    ):
        """Execute one engine task; the engine's dispatch point.

        *visit_ids* is an optional per-task visit-id allocator the
        engine supplies in parallel mode (see the engine docstring).
        """
        if task.mode == "detect":
            campaign = (context or {}).get("multivantage")
            if campaign:
                return self.visit(
                    task.vp, task.domain, visit_ids=visit_ids,
                    scenario=RegulationScenario.from_context(
                        campaign.get("scenario")
                    ),
                    wave=int(campaign.get("wave", 0)),
                )
            return self.visit(task.vp, task.domain, visit_ids=visit_ids)
        if task.mode == "accept":
            return self.measure_accept_cookies(
                task.vp, task.domain, repeats=task.repeats,
                visit_ids=visit_ids,
            )
        if task.mode == "reject":
            return self.measure_reject_cookies(
                task.vp, task.domain, repeats=task.repeats,
                visit_ids=visit_ids,
            )
        if task.mode == "subscription":
            context = context or {}
            platform = self.world.platforms[str(context["platform"])]
            return self.measure_subscription_cookies(
                task.vp, task.domain, platform,
                str(context["email"]), str(context["password"]),
                repeats=task.repeats, visit_ids=visit_ids,
            )
        if task.mode == "ublock":
            return self.measure_ublock(
                task.vp, task.domain, iterations=task.repeats,
                visit_ids=visit_ids,
            )
        raise ValueError(f"unknown task mode {task.mode!r}")

    # ------------------------------------------------------------------
    # Cookie measurements (§4.3, Figure 4; §4.4, Figure 5)
    # ------------------------------------------------------------------
    def measure_accept_cookies(
        self, vp: str, domain: str, *, repeats: int = 5, visit_ids=None
    ) -> CookieMeasurement:
        """Visit, accept the banner, reload, count cookies; repeat."""
        measurement = CookieMeasurement(vp=vp, domain=domain, mode="accept")
        counts: List[CookieCounts] = []
        for _ in range(repeats):
            jar = CookieJar()
            browser = self.world.browser(vp, jar=jar, visit_ids=visit_ids)
            try:
                page = browser.visit(domain)
                detection = self.bannerclick.detect(page)
                if detection.found and detection.accept_element is not None:
                    accept_banner(browser, page, detection)
                    page = browser.reload(page)
            except (NavigationError, NetworkError, MeasurementError) as exc:
                if is_transient(exc):
                    raise
                measurement.error = type(exc).__name__
                continue
            site = page.site or domain
            count = count_cookies(jar, site, self.world.tracking_list)
            counts.append(count)
            measurement.per_visit.append(count.as_dict())
        measurement.repeats = len(counts)
        (measurement.avg_first_party,
         measurement.avg_third_party,
         measurement.avg_tracking) = average_counts(counts)
        return measurement

    def measure_reject_cookies(
        self, vp: str, domain: str, *, repeats: int = 5, visit_ids=None
    ) -> CookieMeasurement:
        """Visit, click reject (where offered), reload, count cookies.

        BannerClick's reject interaction (its PAM'23 heritage); walls
        have no reject button, so those measurements record an error.
        """
        measurement = CookieMeasurement(vp=vp, domain=domain, mode="reject")
        counts: List[CookieCounts] = []
        for _ in range(repeats):
            jar = CookieJar()
            browser = self.world.browser(vp, jar=jar, visit_ids=visit_ids)
            try:
                page = browser.visit(domain)
                detection = self.bannerclick.detect(page)
                if detection.found:
                    reject_banner(browser, page, detection)
                    page = browser.reload(page)
            except (NavigationError, NetworkError, MeasurementError) as exc:
                if is_transient(exc):
                    raise
                measurement.error = type(exc).__name__
                continue
            site = page.site or domain
            count = count_cookies(jar, site, self.world.tracking_list)
            counts.append(count)
            measurement.per_visit.append(count.as_dict())
        measurement.repeats = len(counts)
        (measurement.avg_first_party,
         measurement.avg_third_party,
         measurement.avg_tracking) = average_counts(counts)
        return measurement

    def measure_subscription_cookies(
        self,
        vp: str,
        domain: str,
        platform: SMPPlatform,
        email: str,
        password: str,
        *,
        repeats: int = 5,
        visit_ids=None,
    ) -> CookieMeasurement:
        """Visit as a logged-in subscriber; count newly set cookies."""
        measurement = CookieMeasurement(vp=vp, domain=domain, mode="subscription")
        counts: List[CookieCounts] = []
        for _ in range(repeats):
            jar = CookieJar()
            browser = self.world.browser(vp, jar=jar, visit_ids=visit_ids)
            try:
                login = browser.visit(
                    f"https://{platform.domain}/login"
                    f"?email={email}&password={password}"
                )
                if login.status != 200:
                    raise MeasurementError("SMP login failed")
                baseline = jar.snapshot()
                page = browser.visit(domain)
            except (NavigationError, NetworkError, MeasurementError) as exc:
                if is_transient(exc):
                    raise
                measurement.error = type(exc).__name__
                continue
            site = page.site or domain
            count = count_cookies(
                jar, site, self.world.tracking_list, baseline=baseline
            )
            counts.append(count)
            measurement.per_visit.append(count.as_dict())
        measurement.repeats = len(counts)
        (measurement.avg_first_party,
         measurement.avg_third_party,
         measurement.avg_tracking) = average_counts(counts)
        return measurement

    # ------------------------------------------------------------------
    # uBlock bypass measurement (§4.5)
    # ------------------------------------------------------------------
    def measure_ublock(
        self, vp: str, domain: str, *, iterations: int = 5, visit_ids=None
    ) -> UBlockRecord:
        """Visit with uBlock (Annoyances enabled); check wall and page."""
        record = UBlockRecord(domain=domain, iterations=iterations)
        for _ in range(iterations):
            ublock = UBlockOrigin(annoyances=True, extra_lists=self.ublock_lists)
            browser = self.world.browser(
                vp, extensions=[ublock], visit_ids=visit_ids
            )
            try:
                page = browser.visit(domain)
            except (NavigationError, NetworkError) as exc:
                if is_transient(exc):
                    raise
                record.errors += 1
                continue
            detection = self.bannerclick.detect(page)
            if detection.is_cookiewall:
                record.wall_seen_count += 1
            if page.flags.get("adblock_wall"):
                record.broken = True
                record.broken_reason = "anti-adblock prompt"
            elif page.scroll_locked and not detection.is_cookiewall:
                record.broken = True
                record.broken_reason = "page not scrollable"
        # "Suppressed" requires evidence: at least one visit must have
        # succeeded, otherwise an unreachable site would masquerade as a
        # successful uBlock bypass.
        record.suppressed = (
            record.wall_seen_count == 0 and record.errors < iterations
        )
        return record
