"""OpenWPM-style instrumentation: per-visit event logs.

BannerClick is built on OpenWPM, whose value is the instrumented
browser: every request, response, cookie write, and block decision is
recorded to a database.  This module provides the equivalent — attach
an :class:`EventLog` to a browser and every navigation produces a
structured event stream that can be saved with
:func:`repro.measure.storage.save_records`-style JSONL output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.httpkit import Request, Response

EVENT_KINDS = (
    "navigation",
    "request",
    "response",
    "blocked",
    "failed",
    "set-cookie",
    # Crawl-engine events (repro.measure.engine): scheduling, progress
    # and throughput share the same log as the browser instruments.
    "plan",
    "shard",
    "task-retry",
    # Resilience plane: a task degraded to a partial record, and
    # per-domain circuit-breaker transitions.
    "task-degraded",
    "breaker-open",
    "breaker-close",
    "progress",
    "throughput",
    "process-throughput",
    "resume",
)


@dataclass
class Event:
    """One instrumented browser event."""

    kind: str
    visit_id: int
    url: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "visit_id": self.visit_id,
            "url": self.url,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Event":
        return cls(**data)


class BatchedProgress:
    """Adapts the engine's per-task progress hook to batched callbacks.

    Every entry point used to hand-roll its own ``engine_progress``
    closure (one in ``Crawler.crawl_vp``, another in ``crawl_all``);
    this is the single shared adapter the :class:`repro.api.Session`
    event path wires instead, so progress reporting is identical
    however a crawl is started.

    The engine serialises hook calls, so no locking is needed here —
    but parallel workers complete tasks out of plan order, so the
    adapter counts completions itself rather than trusting the
    engine's ``done`` snapshot to be monotonic per call.

    Two shapes, matching the two legacy callbacks:

    - ``BatchedProgress(cb, every=N)`` calls ``cb(done, total)`` every
      *N* completions and once at the end (``crawl_vp`` style);
    - ``BatchedProgress(cb, every=N, per_vp_total=T)`` calls
      ``cb(vp, done_vp, T)`` on each vantage point's milestones
      (``crawl_all`` style).
    """

    def __init__(
        self,
        callback,
        *,
        every: int = 1000,
        per_vp_total: "int | None" = None,
    ) -> None:
        self.callback = callback
        self.every = max(every, 1)
        self.per_vp_total = per_vp_total
        self._done = 0
        self._done_by_vp: Dict[str, int] = {}

    def __call__(self, done: int, total: int, task) -> None:
        if self.per_vp_total is None:
            self._done += 1
            if self._done % self.every == 0 or self._done == total:
                self.callback(self._done, total)
            return
        done_vp = self._done_by_vp.get(task.vp, 0) + 1
        self._done_by_vp[task.vp] = done_vp
        if done_vp % self.every == 0 or done_vp == self.per_vp_total:
            self.callback(task.vp, done_vp, self.per_vp_total)


class Instrument:
    """Hook interface the browser calls during page loads."""

    def on_navigation(self, visit_id: int, url: str) -> None: ...

    def on_request(self, visit_id: int, request: Request) -> None: ...

    def on_response(self, visit_id: int, response: Response) -> None: ...

    def on_blocked(self, visit_id: int, request: Request) -> None: ...

    def on_failed(self, visit_id: int, request: Request) -> None: ...


class EventLog(Instrument):
    """Records every event, OpenWPM-database style."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    # -- hooks ----------------------------------------------------------
    def on_navigation(self, visit_id: int, url: str) -> None:
        self.events.append(Event("navigation", visit_id, url))

    def on_request(self, visit_id: int, request: Request) -> None:
        self.events.append(
            Event(
                "request", visit_id, str(request.url),
                {
                    "resource_type": request.resource_type,
                    "third_party": request.is_third_party,
                },
            )
        )

    def on_response(self, visit_id: int, response: Response) -> None:
        self.events.append(
            Event(
                "response", visit_id, str(response.request.url),
                {
                    "status": response.status,
                    "content_type": response.content_type,
                },
            )
        )
        for header in response.set_cookie_headers:
            name = header.split("=", 1)[0]
            self.events.append(
                Event(
                    "set-cookie", visit_id, str(response.request.url),
                    {"cookie_name": name},
                )
            )

    def on_blocked(self, visit_id: int, request: Request) -> None:
        self.events.append(Event("blocked", visit_id, str(request.url)))

    def on_failed(self, visit_id: int, request: Request) -> None:
        self.events.append(Event("failed", visit_id, str(request.url)))

    # -- queries ----------------------------------------------------------
    def by_kind(self, kind: str) -> List[Event]:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    def visits(self) -> List[int]:
        seen: List[int] = []
        for event in self.events:
            if event.visit_id not in seen:
                seen.append(event.visit_id)
        return seen

    def for_visit(self, visit_id: int) -> List[Event]:
        return [e for e in self.events if e.visit_id == visit_id]

    def third_party_requests(self) -> List[Event]:
        return [
            e for e in self.by_kind("request")
            if e.detail.get("third_party")
        ]

    def cookie_names_set(self) -> List[str]:
        return [
            str(e.detail["cookie_name"]) for e in self.by_kind("set-cookie")
        ]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- persistence --------------------------------------------------------
    def save(self, path: Union[str, Path]) -> int:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), ensure_ascii=False))
                handle.write("\n")
        return len(self.events)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EventLog":
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log.events.append(Event.from_dict(json.loads(line)))
        return log
