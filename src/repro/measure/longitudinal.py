"""Longitudinal measurement: repeated crawl rounds over an evolving web.

The paper notes ecosystem drift between its May and September 2023
snapshots (§4.4 footnote 5: contentpass 219→270, freechoice 167→184
partners) and nearly doubled German top-1k prevalence versus 2022
(§4.1).  This module measures exactly that kind of movement:
:func:`run_longitudinal` re-crawls the same target list against
successive :func:`~repro.webgen.evolve.evolve_world` snapshots
("waves"), and :func:`compare_rounds` / :func:`smp_growth` diff the
rounds.

Every wave is compiled into a
:class:`~repro.measure.engine.CrawlPlan` and executed through the
sharded :class:`~repro.measure.engine.CrawlEngine`, so the
longitudinal workload inherits sharding, parallelism, per-task retry,
JSONL spooling, and checkpoint/resume — a months-long re-measurement
campaign can die mid-wave and pick up where it stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.measure.crawl import CrawlResult
from repro.measure.engine import RetryPolicy
from repro.measure.instrumentation import EventLog
from repro.measure.storage import iter_records
from repro.webgen.evolve import EvolutionSummary
from repro.webgen.world import World


@dataclass
class RoundComparison:
    """Cookiewall movement between two crawl rounds."""

    walls_round1: int = 0
    walls_round2: int = 0
    appeared: List[str] = field(default_factory=list)
    disappeared: List[str] = field(default_factory=list)
    stable: List[str] = field(default_factory=list)

    @property
    def growth(self) -> float:
        if self.walls_round1 == 0:
            return 0.0
        return (self.walls_round2 - self.walls_round1) / self.walls_round1

    def render(self) -> str:
        return "\n".join(
            [
                "Longitudinal cookiewall comparison",
                f"  round 1 walls: {self.walls_round1}",
                f"  round 2 walls: {self.walls_round2} "
                f"({self.growth * +100:+.1f}%)",
                f"  appeared:      {len(self.appeared)}",
                f"  disappeared:   {len(self.disappeared)}",
                f"  stable:        {len(self.stable)}",
            ]
        )


def compare_rounds(
    round1: CrawlResult, round2: CrawlResult, *, vp: str = "DE"
) -> RoundComparison:
    """Diff the cookiewall populations seen from *vp* in two rounds."""
    first: Set[str] = set(round1.cookiewall_domains(vp))
    second: Set[str] = set(round2.cookiewall_domains(vp))
    comparison = RoundComparison(
        walls_round1=len(first),
        walls_round2=len(second),
        appeared=sorted(second - first),
        disappeared=sorted(first - second),
        stable=sorted(first & second),
    )
    return comparison


@dataclass
class SMPGrowth:
    """Partner-roster growth per platform between two world snapshots."""

    rosters: Dict[str, tuple] = field(default_factory=dict)  # name -> (before, after)

    def render(self) -> str:
        lines = ["SMP roster growth (paper §4.4 footnote 5)"]
        for name, (before, after) in sorted(self.rosters.items()):
            growth = (after - before) / before * 100 if before else 0.0
            lines.append(
                f"  {name}: {before} -> {after} partners ({growth:+.1f}%)"
            )
        return "\n".join(lines)


def smp_growth(world_before, world_after) -> SMPGrowth:
    """Roster sizes before/after (worlds from :func:`evolve_world`)."""
    growth = SMPGrowth()
    for name, platform in world_before.platforms.items():
        after = world_after.platforms.get(name)
        growth.rosters[name] = (
            len(platform.partner_domains),
            len(after.partner_domains) if after is not None else 0,
        )
    return growth


# ---------------------------------------------------------------------------
# The longitudinal workload, routed through the crawl engine
# ---------------------------------------------------------------------------

@dataclass
class LongitudinalWave:
    """One measurement round: a world snapshot plus its crawl."""

    months: int
    world: World
    crawl: CrawlResult
    #: Drift applied to reach this snapshot (``None`` for the baseline).
    summary: Optional[EvolutionSummary] = None
    #: Outcomes replayed from a checkpoint rather than re-crawled.
    resumed: int = 0


@dataclass
class LongitudinalRun:
    """All waves of one longitudinal campaign, oldest first."""

    vp: str
    waves: List[LongitudinalWave] = field(default_factory=list)

    def comparisons(self) -> List[RoundComparison]:
        """Wall movement between each pair of consecutive waves."""
        return [
            compare_rounds(earlier.crawl, later.crawl, vp=self.vp)
            for earlier, later in zip(self.waves, self.waves[1:])
        ]

    def roster_growth(self) -> SMPGrowth:
        """SMP roster movement from the first to the last snapshot."""
        return smp_growth(self.waves[0].world, self.waves[-1].world)

    def render(self) -> str:
        lines = [f"Longitudinal campaign ({len(self.waves)} waves, vp={self.vp})"]
        for wave in self.waves:
            walls = len(wave.crawl.cookiewall_domains(self.vp))
            lines.append(
                f"  month {wave.months}: {len(wave.crawl)} visits, "
                f"{walls} cookiewall domains"
            )
        for (earlier, later), comparison in zip(
            zip(self.waves, self.waves[1:]), self.comparisons()
        ):
            lines.append("")
            lines.append(f"month {earlier.months} -> month {later.months}:")
            lines.append(comparison.render())
        lines.append("")
        lines.append(self.roster_growth().render())
        return "\n".join(lines)


@dataclass
class MultiVantageWave:
    """One wave of a multi-vantage campaign (all VPs, one snapshot)."""

    months: int
    visits: int = 0
    #: Outcomes replayed (checkpoint or completed spool) not re-crawled.
    resumed: int = 0


@dataclass
class MultiVantageRun:
    """All waves of one multi-vantage campaign plus its report.

    ``report`` is the streaming
    :class:`~repro.analysis.StreamingDiscrepancyReport` the session fed
    while the waves executed (duck-typed here so the measurement layer
    does not import the analysis layer).
    """

    vps: tuple
    regime: str
    report: object
    waves: List[MultiVantageWave] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"Multi-vantage campaign ({len(self.waves)} waves, "
            f"{len(self.vps)} VPs, regime={self.regime})"
        ]
        for wave in self.waves:
            note = f" ({wave.resumed} replayed)" if wave.resumed else ""
            lines.append(f"  month {wave.months}: {wave.visits} visits{note}")
        lines.append("")
        lines.append(self.report.render())
        return "\n".join(lines)


def run_longitudinal(
    world: World,
    *,
    months: Sequence[int] = (0, 4),
    vp: str = "DE",
    domains: Optional[Sequence[str]] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    event_log: Optional[EventLog] = None,
    out_dir: Union[str, Path, None] = None,
    resume: bool = False,
) -> LongitudinalRun:
    """Crawl *world* and its evolved snapshots through the engine.

    .. deprecated::
        This is a compatibility shim over
        :meth:`repro.api.Session.longitudinal` (kept for one release);
        new code should build a :class:`~repro.api.LongitudinalSpec`
        and run it through a :class:`~repro.api.Session` directly.

    Each entry of *months* is one wave: ``0`` is the baseline world,
    any other value an :func:`~repro.webgen.evolve.evolve_world`
    snapshot that many months later.  Every wave detection-crawls the
    *same* target list (defaulting to the baseline's crawl targets, so
    sites that die mid-campaign are measured as unreachable rather
    than silently dropped) from the single vantage point *vp*.

    The crawl runs through :class:`~repro.measure.engine.CrawlEngine`
    with the given *workers*/*shards*/*retry* configuration; engine
    events (``plan``/``shard``/``progress``/``resume``/…) stream into
    *event_log*.  With *out_dir*, wave records spool to
    ``wave-<MM>.jsonl`` and each wave keeps a resumable checkpoint
    (``<spool>.checkpoint``); pass ``resume=True`` to pick up an
    interrupted campaign.  Resume works at two levels: a wave whose
    spool is already complete (full record count, no checkpoint left
    behind) is reloaded from disk without re-crawling, and the wave
    that actually crashed resumes from its checkpoint.
    """
    if resume and out_dir is None:
        # Without spools/checkpoints a "resumed" campaign would simply
        # re-crawl everything while claiming otherwise.
        raise ValueError("resume=True requires out_dir")
    # Imported here: repro.api is built on this module (not vice versa).
    from repro.api import (
        EngineSpec,
        LongitudinalSpec,
        OutputSpec,
        Session,
    )

    session = Session(
        world,
        engine=EngineSpec(workers=workers, shards=shards, resume=resume),
        retry=retry,
        event_log=event_log,
    )
    result = session.longitudinal(
        LongitudinalSpec(
            vp=vp,
            months=tuple(months),
            domains=tuple(domains) if domains is not None else None,
        ),
        output=OutputSpec(
            out_dir=str(out_dir) if out_dir is not None else None
        ),
    )
    return result.campaign


def reload_completed_wave(spool_path, checkpoint_path, plan):
    """The records of a wave that already finished, or ``None``.

    A wave is complete when its spool holds one record per plan task
    and no checkpoint was left behind (the engine deletes it on
    success); anything else — missing spool, surviving checkpoint,
    short or over-long file — re-runs the wave through the engine.
    """
    if spool_path is None or not spool_path.exists():
        return None
    if checkpoint_path is not None and checkpoint_path.exists():
        return None
    # reprolint: disable=materialized-records -- bounded by one wave; the caller builds a list-based CrawlResult from it either way
    records = list(iter_records(spool_path))
    if len(records) != len(plan.tasks):
        return None
    return records
