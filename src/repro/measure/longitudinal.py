"""Longitudinal comparison of two measurement rounds.

The paper notes ecosystem drift between its May and September 2023
snapshots (§4.4 footnote 5: contentpass 219→270, freechoice 167→184
partners) and nearly doubled German top-1k prevalence versus 2022
(§4.1).  This module compares two crawl rounds of the same target list
and reports exactly that kind of movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.measure.crawl import CrawlResult


@dataclass
class RoundComparison:
    """Cookiewall movement between two crawl rounds."""

    walls_round1: int = 0
    walls_round2: int = 0
    appeared: List[str] = field(default_factory=list)
    disappeared: List[str] = field(default_factory=list)
    stable: List[str] = field(default_factory=list)

    @property
    def growth(self) -> float:
        if self.walls_round1 == 0:
            return 0.0
        return (self.walls_round2 - self.walls_round1) / self.walls_round1

    def render(self) -> str:
        return "\n".join(
            [
                "Longitudinal cookiewall comparison",
                f"  round 1 walls: {self.walls_round1}",
                f"  round 2 walls: {self.walls_round2} "
                f"({self.growth * +100:+.1f}%)",
                f"  appeared:      {len(self.appeared)}",
                f"  disappeared:   {len(self.disappeared)}",
                f"  stable:        {len(self.stable)}",
            ]
        )


def compare_rounds(
    round1: CrawlResult, round2: CrawlResult, *, vp: str = "DE"
) -> RoundComparison:
    """Diff the cookiewall populations seen from *vp* in two rounds."""
    first: Set[str] = set(round1.cookiewall_domains(vp))
    second: Set[str] = set(round2.cookiewall_domains(vp))
    comparison = RoundComparison(
        walls_round1=len(first),
        walls_round2=len(second),
        appeared=sorted(second - first),
        disappeared=sorted(first - second),
        stable=sorted(first & second),
    )
    return comparison


@dataclass
class SMPGrowth:
    """Partner-roster growth per platform between two world snapshots."""

    rosters: Dict[str, tuple] = field(default_factory=dict)  # name -> (before, after)

    def render(self) -> str:
        lines = ["SMP roster growth (paper §4.4 footnote 5)"]
        for name, (before, after) in sorted(self.rosters.items()):
            growth = (after - before) / before * 100 if before else 0.0
            lines.append(
                f"  {name}: {before} -> {after} partners ({growth:+.1f}%)"
            )
        return "\n".join(lines)


def smp_growth(world_before, world_after) -> SMPGrowth:
    """Roster sizes before/after (worlds from :func:`evolve_world`)."""
    growth = SMPGrowth()
    for name, platform in world_before.platforms.items():
        after = world_after.platforms.get(name)
        growth.rosters[name] = (
            len(platform.partner_domains),
            len(after.partner_domains) if after is not None else 0,
        )
    return growth
