"""The sharded crawl engine: plan → shard → execute → merge.

The paper's workload — an 8-vantage-point detection crawl over ~45k
sites plus thousands of repeated cookie measurements — is embarrassingly
parallel, but the original harness ran every visit in one serial Python
loop.  This module turns that loop into an explicit subsystem:

1. **Plan.**  A measurement batch is compiled into a
   :class:`CrawlPlan`: an ordered list of :class:`CrawlTask` values
   (``vp``, ``domain``, ``mode``, ``repeats``).  Plans are pure data —
   they can be inspected, counted, and (via ``context``) carry
   serialisable per-plan configuration such as SMP credentials.
   :class:`~repro.measure.crawl.Crawler` provides the compilers
   (``plan_detection_crawl``, ``plan_cookie_measurements``,
   ``plan_subscription_measurements``, ``plan_ublock``).

2. **Shard.**  Tasks are partitioned into N shards by a *stable* hash
   of the task domain (CRC-32, not the per-process-salted ``hash()``),
   so the same plan always shards the same way on every machine and
   run.  Within a shard, tasks keep plan order.

3. **Execute.**  A pluggable executor runs the shards:
   :class:`SerialExecutor` walks them in shard order on the calling
   thread; :class:`ParallelExecutor` dispatches one shard at a time to
   a ``ThreadPoolExecutor`` with ``workers`` threads.  Threads suit
   this workload because real crawls are network-bound — the netsim
   mirrors that via ``Network.latency`` — and every task builds its own
   browser and cookie jar, so no mutable state is shared.  Each task
   runs under a :class:`RetryPolicy` (transient ``NetworkError``-family
   failures are retried, then recorded as a failed
   :class:`TaskOutcome` rather than aborting the crawl).

4. **Merge.**  Outcomes are re-assembled in **plan order** (their
   canonical order) regardless of which worker finished first.  With a
   ``spool_path``, shard output is additionally appended to a
   ``<path>.partial`` JSONL file as shards finish — crash durability
   and live inspection, not a memory saving: the merge still holds
   every outcome — and on success the final file is written in
   canonical order and the partial removed, so an interrupted run
   never clobbers a previous complete output.

Checkpoints and resume
----------------------
With a ``checkpoint_path``, the engine is additionally *resumable*: a
JSONL checkpoint records a header (a :func:`plan_fingerprint` binding
the file to this exact plan, world seed, and visit-id regime) followed
by one line per completed task outcome, appended as each shard
finishes.  A crashed run leaves the completed outcomes there; starting
the engine again with ``resume=True`` reconciles the checkpoint
against the plan — already-completed tasks are skipped and their
recorded outcomes replayed into the plan-order merge — so a resumed
run produces **byte-identical** final output to an uninterrupted one.
A fingerprint mismatch (different plan, world seed, or id regime)
raises :class:`CheckpointMismatch` rather than silently mixing two
different runs.  On success the checkpoint is removed.

Checkpointed runs always use the per-task visit-id streams (the
parallel regime below) regardless of ``workers``, because the serial
shared-counter stream cannot survive a resume boundary: skipped tasks
would no longer advance it.  Detection records are unaffected; cookie
and uBlock values are deterministic within the per-task regime.

Determinism
-----------
For a fixed world seed the merged detection-crawl records are
*identical* — not merely equivalent — for every ``workers``/``shards``
combination: detection visits do not depend on the visit-id sequence,
and the plan-order merge removes scheduling nondeterminism.

Cookie and uBlock measurements additionally consume visit ids (the
world keys ad rotation and first-party-count jitter on them), so the
engine controls how ids are allocated:

- **Serial** (``workers=1``, the default): browsers draw from the
  network's shared monotonic counter in plan order — byte-for-byte the
  pre-engine serial harness.
- **Parallel** (``workers>1``): every task gets a private visit-id
  stream derived from (world seed, vp, domain, mode, repeats), so the
  records are a pure function of the world and the plan — identical
  across reruns and across *any* parallel worker/shard combination,
  never dependent on thread scheduling.  (Parallel values differ from
  the serial stream's, since the ids differ; each regime is internally
  deterministic.)

Progress and throughput are emitted through the existing
:mod:`repro.measure.instrumentation` event-log machinery (``plan``,
``shard``, ``task-retry``, ``progress``, and ``throughput`` events), so
an engine run can be recorded and inspected exactly like an
instrumented browser session.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor as _PyThreadPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import NetworkError
from repro.measure.instrumentation import Event, EventLog
from repro.measure.storage import (
    decode_record,
    encode_record,
    iter_jsonl,
    save_records,
)
from repro.rng import derive_seed

#: Bumped whenever the checkpoint file layout changes; part of the
#: fingerprint, so old checkpoints are refused instead of misread.
CHECKPOINT_VERSION = 1

#: Task modes the engine knows how to dispatch (see ``Crawler.run_task``).
TASK_MODES = ("detect", "accept", "reject", "subscription", "ublock")

#: ``progress(done, total, task)`` — invoked after every completed task.
ProgressHook = Callable[[int, int, "CrawlTask"], None]


@dataclass(frozen=True)
class CrawlTask:
    """One schedulable unit of measurement work."""

    vp: str
    domain: str
    mode: str = "detect"
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.mode not in TASK_MODES:
            raise ValueError(f"unknown task mode {self.mode!r}")


def shard_of(domain: str, shards: int) -> int:
    """The stable shard index for *domain* (CRC-32, not ``hash()``)."""
    if shards <= 1:
        return 0
    return zlib.crc32(domain.encode("utf-8")) % shards


class CheckpointMismatch(RuntimeError):
    """A checkpoint was produced by a different plan, world, or engine
    configuration; resuming it would silently mix two runs."""


def plan_fingerprint(
    plan: "CrawlPlan",
    *,
    world_seed: Optional[int] = None,
    world_scale: Optional[float] = None,
    world_evolution: int = 0,
    per_task_ids: bool = True,
) -> str:
    """A stable hash binding a checkpoint to one resumable run.

    Covers everything the merged output is a function of: the full
    task list (order included — outcome indices are plan positions),
    the plan context, the world identity (seed, scale, and months of
    :func:`~repro.webgen.evolve.evolve_world` drift — two snapshots
    share a seed but not a web), and the visit-id regime.  It
    deliberately excludes ``workers``/``shards``/retry settings: in
    the per-task id regime those change scheduling, never results, so
    a crawl may be resumed with a different worker count.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "world_seed": world_seed,
        "world_scale": world_scale,
        "world_evolution": world_evolution,
        "visit_ids": "per-task" if per_task_ids else "serial",
        "context": plan.context,
        "tasks": [
            [task.vp, task.domain, task.mode, task.repeats]
            for task in plan.tasks
        ],
    }
    blob = json.dumps(payload, sort_keys=True, ensure_ascii=False, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class CrawlPlan:
    """An ordered batch of tasks plus per-plan configuration."""

    tasks: List[CrawlTask] = field(default_factory=list)
    #: Serialisable plan-wide settings (e.g. SMP platform credentials).
    context: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.tasks)

    def sharded(self, shards: int) -> List[List[Tuple[int, CrawlTask]]]:
        """Partition into *shards* lists of ``(plan_index, task)``.

        Hash-by-domain keeps every task for one domain in one shard;
        within a shard, plan order is preserved.
        """
        buckets: List[List[Tuple[int, CrawlTask]]] = [
            [] for _ in range(max(shards, 1))
        ]
        for index, task in enumerate(self.tasks):
            buckets[shard_of(task.domain, max(shards, 1))].append((index, task))
        return buckets


@dataclass
class TaskOutcome:
    """What happened to one task: a record, or a permanent failure."""

    index: int
    task: CrawlTask
    record: Optional[object] = None
    error: Optional[str] = None
    attempts: int = 1


@dataclass
class RetryPolicy:
    """Per-task retry behaviour for transient failures.

    ``retry_on`` handles exceptions escaping ``Crawler.run_task`` (the
    stock crawler converts network failures into records instead of
    raising, but subclasses and future transports may not).
    ``retry_unreachable`` additionally re-runs detection visits that
    came back ``reachable=False``; it defaults to off because the
    paper's methodology counts unreachable sites (and a retry consumes
    extra visit ids from the serial stream).
    """

    max_attempts: int = 2
    retry_on: Tuple[type, ...] = (NetworkError,)
    retry_unreachable: bool = False


@dataclass(frozen=True)
class CheckpointCompaction:
    """What :meth:`CrawlEngine.compact_checkpoint` did to one file."""

    path: Path
    #: Outcome lines kept (the latest per plan index).
    kept: int
    #: Superseded/duplicate outcome lines dropped.
    dropped: int
    fingerprint: str

    def render(self) -> str:
        return (
            f"{self.path}: kept {self.kept} outcomes, dropped "
            f"{self.dropped} (fingerprint {self.fingerprint})"
        )


@dataclass
class EngineResult:
    """Merged outcomes of one engine run, in canonical (plan) order."""

    outcomes: List[TaskOutcome] = field(default_factory=list)
    elapsed: float = 0.0
    #: Outcomes replayed from a checkpoint rather than executed.
    resumed: int = 0

    @property
    def executed(self) -> int:
        """Tasks actually run this invocation (resumed ones excluded)."""
        return len(self.outcomes) - self.resumed

    @property
    def records(self) -> List[object]:
        """The produced records, plan-ordered, skipping failed tasks."""
        return [o.record for o in self.outcomes if o.record is not None]

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    @property
    def tasks_per_sec(self) -> float:
        """Execution throughput — replayed outcomes took no work, so
        they do not count (a 90%-resumed run is not 10× faster)."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.executed / self.elapsed

    def __len__(self) -> int:
        return len(self.outcomes)


class Executor:
    """Strategy interface: run sharded tasks, return unordered outcomes."""

    def run(
        self,
        sharded: List[List[Tuple[int, CrawlTask]]],
        run_shard: Callable[[int, List[Tuple[int, CrawlTask]]], List[TaskOutcome]],
    ) -> List[TaskOutcome]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Runs shards one after another on the calling thread."""

    def run(self, sharded, run_shard):
        outcomes: List[TaskOutcome] = []
        for shard_id, items in enumerate(sharded):
            if items:
                outcomes.extend(run_shard(shard_id, items))
        return outcomes


class ParallelExecutor(Executor):
    """Runs shards concurrently on a thread pool of *workers* threads."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, sharded, run_shard):
        outcomes: List[TaskOutcome] = []
        with _PyThreadPool(max_workers=self.workers) as pool:
            futures = [
                pool.submit(run_shard, shard_id, items)
                for shard_id, items in enumerate(sharded)
                if items
            ]
            for future in futures:
                outcomes.extend(future.result())
        return outcomes


class FaultInjectingExecutor(ParallelExecutor):
    """Chaos harness for the checkpoint/resume path: kills the chosen
    shards either before they run or — with ``partial=True`` — after
    half their tasks completed (and were checkpointed), which is what a
    worker dying mid-shard looks like.  Surviving shards finish and
    checkpoint normally, exactly as under a real crash of one worker.
    Used by the crash-safety tests and benchmarks; never the default.
    """

    def __init__(self, workers: int, fail_shards, *, partial: bool = False):
        super().__init__(workers)
        self.fail_shards = set(fail_shards)
        self.partial = partial

    def run(self, sharded, run_shard):
        def wrapped(shard_id, items):
            if shard_id in self.fail_shards:
                if self.partial:
                    run_shard(shard_id, items[: len(items) // 2])
                raise RuntimeError(f"injected crash in shard {shard_id}")
            return run_shard(shard_id, items)

        return super().run(sharded, wrapped)


class CrawlEngine:
    """Compiles nothing, schedules everything: executes a
    :class:`CrawlPlan` through an executor and merges the outcomes.

    Parameters
    ----------
    crawler:
        The :class:`~repro.measure.crawl.Crawler` whose ``run_task``
        performs one task.
    workers:
        ``1`` (default) selects :class:`SerialExecutor`; ``>1`` a
        :class:`ParallelExecutor` with that many threads.
    shards:
        Shard count; defaults to ``1`` when serial and ``4 × workers``
        when parallel.  A shard is the unit of concurrency (tasks
        within it run serially), so effective parallelism is
        ``min(workers, shards)``.  The merged result is independent of
        it for detection crawls (see module docstring).
    retry:
        :class:`RetryPolicy` for transient failures.
    event_log:
        An :class:`~repro.measure.instrumentation.EventLog` receiving
        ``plan`` / ``shard`` / ``task-retry`` / ``progress`` /
        ``throughput`` events.
    progress:
        ``progress(done, total, task)`` called after every completed
        task (serialised under the engine lock).
    spool_path:
        When set, each finished shard's records are appended to
        ``<spool_path>.partial`` as the crawl runs (a crash leaves the
        completed shards there and the previous complete output
        untouched); on success the final file is written to
        *spool_path* in canonical plan order — identical runs produce
        byte-identical files.  This is crash durability, not a memory
        saving: the merged result is still assembled in memory.
    checkpoint_path:
        When set, completed task outcomes (records *and* permanent
        failures, with their plan indices) are appended to this JSONL
        checkpoint as shards finish, under a :func:`plan_fingerprint`
        header.  Enables crash-safe resume — see the module docstring.
        Checkpointed runs always use per-task visit-id streams, even
        when serial.  Removed on success.
    resume:
        With ``resume=True`` an existing checkpoint is reconciled
        against the plan before execution: completed tasks are skipped
        and their outcomes replayed into the merge.  A fingerprint
        mismatch raises :class:`CheckpointMismatch`; a missing
        checkpoint simply starts fresh.
    executor:
        Override the executor strategy (a test/fault-injection hook);
        by default chosen from *workers* as described above.
    """

    def __init__(
        self,
        crawler,
        *,
        workers: int = 1,
        shards: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        event_log: Optional[EventLog] = None,
        progress: Optional[ProgressHook] = None,
        progress_every: int = 1000,
        spool_path=None,
        checkpoint_path: Union[str, Path, None] = None,
        resume: bool = False,
        executor: Optional[Executor] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.crawler = crawler
        self.workers = workers
        self.shards = shards if shards is not None else (
            1 if workers == 1 else workers * 4
        )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        self.retry = retry or RetryPolicy()
        self.event_log = event_log
        self.progress = progress
        self.progress_every = max(progress_every, 1)
        self.spool_path = spool_path
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        if resume and self.checkpoint_path is None:
            # A silently ignored resume would re-run everything while
            # the caller believes the checkpoint was honoured.
            raise ValueError("resume=True requires a checkpoint_path")
        self.resume = resume
        self.executor = executor
        self._spool_partial: Optional[Path] = None
        self._lock = threading.Lock()
        #: Separate lock for the caller's progress hook, so a slow (or
        #: engine-reentrant) hook can never stall spool writes or
        #: deadlock against the engine's own lock.
        self._progress_lock = threading.Lock()
        self._done = 0
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def per_task_ids(self) -> bool:
        """Whether tasks get private visit-id streams (module docstring).

        True in parallel mode and for every checkpointed run: the
        serial shared-counter stream cannot survive a resume boundary,
        since replayed tasks would no longer advance it.
        """
        return self.workers > 1 or self.checkpoint_path is not None

    def fingerprint(self, plan: CrawlPlan) -> str:
        """The :func:`plan_fingerprint` of *plan* under this engine."""
        world = getattr(self.crawler, "world", None)
        config = getattr(world, "config", None)
        return plan_fingerprint(
            plan,
            world_seed=getattr(config, "seed", None),
            world_scale=getattr(config, "scale", None),
            world_evolution=getattr(world, "evolution_months", 0),
            per_task_ids=self.per_task_ids,
        )

    def execute(self, plan: CrawlPlan) -> EngineResult:
        """Run *plan* and return the plan-ordered merged result."""
        sharded = plan.sharded(self.shards)
        replayed = self._reconcile_checkpoint(plan)
        if replayed:
            sharded = [
                [(index, task) for index, task in shard if index not in replayed]
                for shard in sharded
            ]
        self._done = len(replayed)
        self._total = len(plan)
        self._spool_partial = None
        if self.spool_path is not None:
            self._spool_partial = Path(f"{self.spool_path}.partial")
            save_records([], self._spool_partial)
        self._emit("plan", "engine://plan", {
            "tasks": len(plan),
            "shards": self.shards,
            "workers": self.workers,
        })
        if replayed:
            self._emit("resume", "engine://resume", {
                "completed": len(replayed),
                "remaining": len(plan) - len(replayed),
            })
        # Each shard is one unit of concurrency, so threads beyond the
        # shard count would only idle.
        executor: Executor = self.executor or (
            SerialExecutor() if self.workers == 1
            else ParallelExecutor(min(self.workers, self.shards))
        )
        started = time.perf_counter()
        outcomes = executor.run(sharded, lambda sid, items: self._run_shard(
            plan, sid, items
        ))
        elapsed = time.perf_counter() - started
        outcomes.extend(replayed.values())
        outcomes.sort(key=lambda outcome: outcome.index)
        result = EngineResult(
            outcomes=outcomes, elapsed=elapsed, resumed=len(replayed)
        )
        if self.spool_path is not None:
            # Shards appended to the .partial file in completion order
            # (a crash leaves them there, and the previous complete
            # output untouched); success writes the canonical file and
            # drops the partial.
            save_records(result.records, self.spool_path)
            if self._spool_partial is not None:
                self._spool_partial.unlink(missing_ok=True)
        if self.checkpoint_path is not None:
            # The run completed; its durable output (if any) is final.
            self.checkpoint_path.unlink(missing_ok=True)
        self._emit("throughput", "engine://throughput", {
            "tasks": result.executed,
            "resumed": result.resumed,
            "elapsed": elapsed,
            "tasks_per_sec": result.tasks_per_sec,
        })
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _reconcile_checkpoint(self, plan: CrawlPlan) -> Dict[int, TaskOutcome]:
        """Load resumable outcomes and (re)start the checkpoint file.

        Returns the plan-index → outcome map to replay.  The file is
        rewritten as header + replayed outcomes, so it stays canonical
        (one header, then outcomes) across repeated resumes.
        """
        if self.checkpoint_path is None:
            return {}
        fingerprint = self.fingerprint(plan)
        replayed: Dict[int, TaskOutcome] = {}
        if self.resume and self.checkpoint_path.exists():
            replayed = self._load_checkpoint(plan, fingerprint)
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        with self.checkpoint_path.open("w", encoding="utf-8") as handle:
            header = {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "fingerprint": fingerprint,
                "tasks": len(plan),
            }
            handle.write(json.dumps(header, ensure_ascii=False) + "\n")
            for index in sorted(replayed):
                handle.write(self._outcome_line(replayed[index]))
        return replayed

    def _load_checkpoint(
        self, plan: CrawlPlan, fingerprint: str
    ) -> Dict[int, TaskOutcome]:
        """Parse the checkpoint, refusing someone else's (mismatch)."""
        try:
            return self._parse_checkpoint(plan, fingerprint)
        except CheckpointMismatch:
            raise
        except (ValueError, KeyError, TypeError) as error:
            # Mid-file corruption, a malformed outcome line, an
            # undecodable record — all land on the same refusal path
            # the CLI already handles, instead of a raw traceback.
            raise CheckpointMismatch(
                f"{self.checkpoint_path}: corrupt checkpoint ({error}); "
                "refusing to resume — rerun without resume to start over"
            ) from error

    def _parse_checkpoint(
        self, plan: CrawlPlan, fingerprint: str
    ) -> Dict[int, TaskOutcome]:
        replayed: Dict[int, TaskOutcome] = {}
        header_seen = False
        for line_number, payload in iter_jsonl(self.checkpoint_path):
            kind = payload.get("kind")
            if not header_seen:
                if kind != "header":
                    raise CheckpointMismatch(
                        f"{self.checkpoint_path}: not a crawl checkpoint "
                        f"(first line is {kind!r})"
                    )
                found = payload.get("fingerprint")
                if found != fingerprint:
                    raise CheckpointMismatch(
                        f"{self.checkpoint_path}: fingerprint {found} does "
                        f"not match this plan/world/config ({fingerprint}); "
                        "refusing to resume — rerun without resume to start "
                        "over"
                    )
                header_seen = True
                continue
            if kind != "outcome":
                continue
            index = payload["index"]
            if not 0 <= index < len(plan.tasks):
                raise CheckpointMismatch(
                    f"{self.checkpoint_path}:{line_number}: outcome index "
                    f"{index} outside the plan"
                )
            record_payload = payload.get("record")
            replayed[index] = TaskOutcome(
                index=index,
                task=plan.tasks[index],
                record=(
                    decode_record(record_payload)
                    if record_payload is not None else None
                ),
                error=payload.get("error"),
                attempts=payload.get("attempts", 1),
            )
        return replayed

    @staticmethod
    def _outcome_line(outcome: TaskOutcome) -> str:
        payload = {
            "kind": "outcome",
            "index": outcome.index,
            "attempts": outcome.attempts,
            "error": outcome.error,
            "record": (
                encode_record(outcome.record)
                if outcome.record is not None else None
            ),
        }
        return json.dumps(payload, ensure_ascii=False) + "\n"

    def _checkpoint_outcomes(self, outcomes: List[TaskOutcome]) -> None:
        """Append one finished shard's outcomes (caller holds the lock)."""
        with self.checkpoint_path.open("a", encoding="utf-8") as handle:
            for outcome in outcomes:
                handle.write(self._outcome_line(outcome))
            handle.flush()

    @staticmethod
    def compact_checkpoint(path: Union[str, Path]) -> CheckpointCompaction:
        """Rewrite an append-only checkpoint, keeping only the latest
        outcome per task.

        Long crash/resume cycles grow the checkpoint: a shard that
        died after checkpointing half its tasks re-runs them on
        resume, so later lines supersede earlier ones for the same
        plan index.  Compaction keeps the **last** outcome per index
        (the append order is the authority), preserves the
        :func:`plan_fingerprint` header verbatim, sorts outcomes into
        plan order, and replaces the file atomically — a compacted
        checkpoint resumes exactly like the original.  A torn trailing
        line (crashed writer) is dropped, as on any checkpoint read.

        Raises :class:`CheckpointMismatch` when *path* is not a crawl
        checkpoint (no header / mid-file corruption).
        """
        path = Path(path)
        header: Optional[Dict] = None
        latest: Dict[int, str] = {}
        superseded = 0
        try:
            for line_number, payload in iter_jsonl(path):
                kind = payload.get("kind")
                if header is None:
                    if kind != "header":
                        raise CheckpointMismatch(
                            f"{path}: not a crawl checkpoint "
                            f"(first line is {kind!r})"
                        )
                    header = payload
                    continue
                if kind != "outcome":
                    continue
                index = payload.get("index")
                if not isinstance(index, int):
                    raise CheckpointMismatch(
                        f"{path}:{line_number}: outcome without an index"
                    )
                if index in latest:
                    superseded += 1
                latest[index] = json.dumps(payload, ensure_ascii=False)
        except ValueError as error:
            raise CheckpointMismatch(
                f"{path}: corrupt checkpoint ({error}); refusing to compact"
            ) from error
        if header is None:
            raise CheckpointMismatch(f"{path}: not a crawl checkpoint (empty)")
        tmp = path.with_name(path.name + ".compact")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, ensure_ascii=False) + "\n")
            for index in sorted(latest):
                handle.write(latest[index] + "\n")
        tmp.replace(path)
        return CheckpointCompaction(
            path=path,
            kept=len(latest),
            dropped=superseded,
            fingerprint=str(header.get("fingerprint")),
        )

    # ------------------------------------------------------------------
    def _run_shard(
        self,
        plan: CrawlPlan,
        shard_id: int,
        items: List[Tuple[int, CrawlTask]],
    ) -> List[TaskOutcome]:
        started = time.perf_counter()
        outcomes = [self._run_one(plan, index, task) for index, task in items]
        if outcomes and (
            self._spool_partial is not None or self.checkpoint_path is not None
        ):
            records = [o.record for o in outcomes if o.record is not None]
            with self._lock:
                if self._spool_partial is not None:
                    save_records(records, self._spool_partial, append=True)
                if self.checkpoint_path is not None:
                    self._checkpoint_outcomes(outcomes)
        self._emit("shard", f"engine://shard/{shard_id}", {
            "shard": shard_id,
            "tasks": len(items),
            "elapsed": time.perf_counter() - started,
        })
        return outcomes

    def _run_one(self, plan: CrawlPlan, index: int, task: CrawlTask) -> TaskOutcome:
        attempts = 0
        visit_ids = self._task_id_stream(task) if self.per_task_ids else None
        while True:
            attempts += 1
            try:
                record = self.crawler.run_task(
                    task, plan.context, visit_ids=visit_ids
                )
            except self.retry.retry_on as exc:
                if attempts >= self.retry.max_attempts:
                    outcome = TaskOutcome(
                        index, task,
                        error=type(exc).__name__, attempts=attempts,
                    )
                    break
                self._emit_retry(index, task, attempts, type(exc).__name__)
            else:
                if (
                    self.retry.retry_unreachable
                    and task.mode == "detect"
                    and getattr(record, "reachable", True) is False
                    and attempts < self.retry.max_attempts
                ):
                    self._emit_retry(
                        index, task, attempts,
                        getattr(record, "error", None) or "unreachable",
                    )
                    continue
                outcome = TaskOutcome(
                    index, task, record=record, attempts=attempts
                )
                break
        self._advance(task)
        return outcome

    def _emit_retry(
        self, index: int, task: CrawlTask, attempt: int, error: str
    ) -> None:
        self._emit("task-retry", f"engine://task/{index}", {
            "vp": task.vp,
            "domain": task.domain,
            "mode": task.mode,
            "attempt": attempt,
            "error": error,
        })

    def _task_id_stream(self, task: CrawlTask) -> Optional[Callable[[], int]]:
        """A private, deterministic visit-id stream for *task*.

        Derived purely from the world seed and the task identity, so
        parallel measurement results never depend on which thread ran
        which task first (see the module docstring).
        """
        world = getattr(self.crawler, "world", None)
        config = getattr(world, "config", None)
        if config is None:
            return None
        base = derive_seed(
            config.seed, "engine-task-visits",
            task.vp, task.domain, task.mode, task.repeats,
        )
        counter = itertools.count()
        return lambda: derive_seed(base, next(counter))

    def _advance(self, task: CrawlTask) -> None:
        with self._lock:
            self._done += 1
            done, total = self._done, self._total
            if done % self.progress_every == 0 or done == total:
                self._emit_locked("progress", "engine://progress", {
                    "done": done, "total": total,
                })
        if self.progress is not None:
            # Hook calls are serialised (so wrapper closures need no
            # locking of their own) but run outside the engine lock;
            # under parallel execution consecutive calls may observe
            # `done` snapshots out of order.
            with self._progress_lock:
                self.progress(done, total, task)

    # ------------------------------------------------------------------
    def _emit(self, kind: str, url: str, detail: Dict[str, object]) -> None:
        if self.event_log is None:
            return
        with self._lock:
            self._emit_locked(kind, url, detail)

    def _emit_locked(self, kind: str, url: str, detail: Dict[str, object]) -> None:
        if self.event_log is not None:
            self.event_log.events.append(Event(kind, 0, url, detail))
