"""The sharded crawl engine: plan → shard → execute → merge.

The paper's workload — an 8-vantage-point detection crawl over ~45k
sites plus thousands of repeated cookie measurements — is embarrassingly
parallel, but the original harness ran every visit in one serial Python
loop.  This module turns that loop into an explicit subsystem:

1. **Plan.**  A measurement batch is compiled into a
   :class:`CrawlPlan`: an ordered list of :class:`CrawlTask` values
   (``vp``, ``domain``, ``mode``, ``repeats``).  Plans are pure data —
   they can be inspected, counted, and (via ``context``) carry
   serialisable per-plan configuration such as SMP credentials.
   :class:`~repro.measure.crawl.Crawler` provides the compilers
   (``plan_detection_crawl``, ``plan_cookie_measurements``,
   ``plan_subscription_measurements``, ``plan_ublock``).

2. **Shard.**  Tasks are partitioned into N shards by a *stable* hash
   of the task domain (CRC-32, not the per-process-salted ``hash()``),
   so the same plan always shards the same way on every machine and
   run.  Within a shard, tasks keep plan order.

3. **Execute.**  A pluggable executor runs the shards, selected by
   ``backend`` (surfaced as ``EngineSpec.executor`` / ``--executor``):

   - ``"serial"`` — :class:`SerialExecutor` walks the shards in shard
     order on the calling thread.
   - ``"thread"`` — :class:`ParallelExecutor` dispatches one shard at
     a time to a ``ThreadPoolExecutor`` with ``workers`` threads.
     Threads suit network-bound crawls — the netsim mirrors that via
     ``Network.latency`` — since every task builds its own browser and
     cookie jar, so no mutable state is shared.
   - ``"process"`` — :class:`ProcessExecutor` ships each shard to a
     worker *process* as a picklable task bundle (world key + task
     list + per-task visit-id stream seeds) and gets serialized
     outcomes back.  Processes sidestep the GIL, so this is the
     backend for compute-bound scale-out (the netsim at zero
     latency, heavy filter matching, parsing).  Workers rebuild the
     world deterministically from its (seed, scale, evolution) key —
     or, under the default ``fork`` start method, inherit the
     parent's already-built world for free — so the bundle stays
     small.  See *Pickling constraints* below.

   With no explicit backend the engine keeps its historical rule:
   ``workers == 1`` is serial, ``workers > 1`` is threads.  Each task
   runs under a :class:`RetryPolicy` (transient ``NetworkError``-family
   failures are retried, then recorded as a failed
   :class:`TaskOutcome` rather than aborting the crawl).

4. **Merge.**  Outcomes are re-assembled in **plan order** (their
   canonical order) regardless of which worker finished first, in one
   of two modes:

   - ``merge="memory"`` (default): the merge holds every outcome and,
     with a ``spool_path``, shard output is additionally appended to
     a ``<path>.partial`` JSONL file as shards finish — crash
     durability and live inspection, not a memory saving — and on
     success the final file is written in canonical order and the
     partial removed, so an interrupted run never clobbers a previous
     complete output.
   - ``merge="spool"``: each finished shard streams its outcomes to a
     private ``<path>.shardNNNN.part`` JSONL spool (plan-index-sorted
     by construction) and the final file is produced by a k-way
     plan-order streaming join (:func:`~repro.measure.storage.
     merge_record_spools`), so peak memory is O(one shard's buffer)
     rather than O(world) — the mode for worlds far beyond paper
     scale.  The returned :class:`EngineResult` carries counts and
     the (small) failure list instead of materialised outcomes;
     records stream lazily from the final spool.  Both modes produce
     byte-identical files.

Pickling constraints (process backend)
--------------------------------------
A shard bundle must reconstruct the crawl inside another process, so
the process backend requires the stock :class:`~repro.measure.crawl.
Crawler` over a world built by ``build_world(seed=…, scale=…)``
(identified by seed, scale, and evolution months; ``Network.latency``,
``ublock_lists``, and the live BannerClick/language-detector
instances travel in the bundle, so configured detectors behave
identically in a worker).  Crawler subclasses, hand-assembled or
knob-tuned worlds, and unpicklable detectors are refused with a
clear error — use the thread backend for those.

Checkpoints and resume
----------------------
With a ``checkpoint_path``, the engine is additionally *resumable*: a
JSONL checkpoint records a header (a :func:`plan_fingerprint` binding
the file to this exact plan, world seed, and visit-id regime) followed
by one line per completed task outcome, appended as each shard
finishes.  A crashed run leaves the completed outcomes there; starting
the engine again with ``resume=True`` reconciles the checkpoint
against the plan — already-completed tasks are skipped and their
recorded outcomes replayed into the plan-order merge — so a resumed
run produces **byte-identical** final output to an uninterrupted one.
A fingerprint mismatch (different plan, world seed, or id regime)
raises :class:`CheckpointMismatch` rather than silently mixing two
different runs.  On success the checkpoint is removed.

Checkpointed runs always use the per-task visit-id streams (the
parallel regime below) regardless of ``workers``, because the serial
shared-counter stream cannot survive a resume boundary: skipped tasks
would no longer advance it.  Detection records are unaffected; cookie
and uBlock values are deterministic within the per-task regime.

Determinism
-----------
For a fixed world seed the merged detection-crawl records are
*identical* — not merely equivalent — for every ``workers``/``shards``
combination: detection visits do not depend on the visit-id sequence,
and the plan-order merge removes scheduling nondeterminism.

Cookie and uBlock measurements additionally consume visit ids (the
world keys ad rotation and first-party-count jitter on them), so the
engine controls how ids are allocated:

- **Serial** (``workers=1``, the default): browsers draw from the
  network's shared monotonic counter in plan order — byte-for-byte the
  pre-engine serial harness.
- **Parallel** (``workers>1``): every task gets a private visit-id
  stream derived from (world seed, vp, domain, mode, repeats), so the
  records are a pure function of the world and the plan — identical
  across reruns and across *any* parallel worker/shard combination,
  never dependent on thread scheduling.  (Parallel values differ from
  the serial stream's, since the ids differ; each regime is internally
  deterministic.)

Progress and throughput are emitted through the existing
:mod:`repro.measure.instrumentation` event-log machinery (``plan``,
``shard``, ``task-retry``, ``progress``, and ``throughput`` events), so
an engine run can be recorded and inspected exactly like an
instrumented browser session.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import multiprocessing
import os
import signal
import threading
import time
import zlib
from concurrent.futures import ProcessPoolExecutor as _PyProcessPool
from concurrent.futures import ThreadPoolExecutor as _PyThreadPool
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.errors import NetworkError
from repro.measure.instrumentation import Event, EventLog
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import ChaosEngine, ChaosSpec
from repro.resilience.clock import TaskMeter, active_meter
from repro.resilience.degrade import degraded_record
from repro.measure.storage import (
    RawRecord,
    encode_record_line,
    iter_records,
    load_records,
    materialize_record,
    merge_record_spools,
    note_torn_line,
    save_records,
    validate_record_payload,
)
from repro.rng import derive_seed

#: Bumped whenever the checkpoint file layout changes; part of the
#: fingerprint, so old checkpoints are refused instead of misread.
CHECKPOINT_VERSION = 1

#: Task modes the engine knows how to dispatch (see ``Crawler.run_task``).
TASK_MODES = ("detect", "accept", "reject", "subscription", "ublock")

#: Executor backends selectable by name (``EngineSpec.executor`` /
#: ``--executor``); ``None`` keeps the historical workers-based rule.
EXECUTOR_BACKENDS = ("serial", "thread", "process", "distributed")

#: Backends whose shards run outside this process (picklable bundle
#: path, per-task visit-id regime, stock-crawler portability check).
_BUNDLE_BACKENDS = ("process", "distributed")

#: Merge strategies: in-memory plan-order assembly, or the k-way
#: streaming join over per-shard spools (O(shard buffer) memory).
MERGE_MODES = ("memory", "spool")

#: ``progress(done, total, task)`` — invoked after every completed task.
ProgressHook = Callable[[int, int, "CrawlTask"], None]


@dataclass(frozen=True)
class CrawlTask:
    """One schedulable unit of measurement work."""

    vp: str
    domain: str
    mode: str = "detect"
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.mode not in TASK_MODES:
            raise ValueError(f"unknown task mode {self.mode!r}")


def shard_of(domain: str, shards: int) -> int:
    """The stable shard index for *domain* (CRC-32, not ``hash()``)."""
    if shards <= 1:
        return 0
    return zlib.crc32(domain.encode("utf-8")) % shards


def campaign_plan(plan: "CrawlPlan") -> bool:
    """True for multi-vantage campaign plans (a scenario in context).

    Campaign records carry visit-dependent enrichment (the jar's
    third-party cookie sites), so campaign plans always run in the
    per-task visit-id regime — like checkpointed runs — to keep the
    output identical across backends and worker counts.
    """
    return bool(plan.context.get("multivantage"))


def chaos_plan(plan: "CrawlPlan") -> bool:
    """True when the plan carries a seeded chaos spec in its context.

    Chaos runs always use the per-task visit-id regime: fault rolls
    are keyed on ``(site, visit_id)``, so retries must replay the same
    visit ids for consumed faults to stay consumed — that is what makes
    the recoverable half of the differential oracle byte-identical.
    """
    chaos = plan.context.get("chaos")
    return isinstance(chaos, dict) and chaos.get("seed") is not None


class CheckpointMismatch(RuntimeError):
    """A checkpoint was produced by a different plan, world, or engine
    configuration; resuming it would silently mix two runs."""


def plan_fingerprint(
    plan: "CrawlPlan",
    *,
    world_seed: Optional[int] = None,
    world_scale: Optional[float] = None,
    world_evolution: int = 0,
    per_task_ids: bool = True,
) -> str:
    """A stable hash binding a checkpoint to one resumable run.

    Covers everything the merged output is a function of: the full
    task list (order included — outcome indices are plan positions),
    the plan context, the world identity (seed, scale, and months of
    :func:`~repro.webgen.evolve.evolve_world` drift — two snapshots
    share a seed but not a web), and the visit-id regime.  It
    deliberately excludes ``workers``/``shards``/retry settings: in
    the per-task id regime those change scheduling, never results, so
    a crawl may be resumed with a different worker count.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "world_seed": world_seed,
        "world_scale": world_scale,
        "world_evolution": world_evolution,
        "visit_ids": "per-task" if per_task_ids else "serial",
        "context": plan.context,
        "tasks": [
            [task.vp, task.domain, task.mode, task.repeats]
            for task in plan.tasks
        ],
    }
    blob = json.dumps(payload, sort_keys=True, ensure_ascii=False, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class CrawlPlan:
    """An ordered batch of tasks plus per-plan configuration."""

    tasks: List[CrawlTask] = field(default_factory=list)
    #: Serialisable plan-wide settings (e.g. SMP platform credentials).
    context: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.tasks)

    def sharded(self, shards: int) -> List[List[Tuple[int, CrawlTask]]]:
        """Partition into *shards* lists of ``(plan_index, task)``.

        Hash-by-domain keeps every task for one domain in one shard;
        within a shard, plan order is preserved.
        """
        buckets: List[List[Tuple[int, CrawlTask]]] = [
            [] for _ in range(max(shards, 1))
        ]
        for index, task in enumerate(self.tasks):
            buckets[shard_of(task.domain, max(shards, 1))].append((index, task))
        return buckets


@dataclass
class TaskOutcome:
    """What happened to one task: a record, or a permanent failure."""

    index: int
    task: CrawlTask
    record: Optional[object] = None
    error: Optional[str] = None
    attempts: int = 1


@dataclass
class RetryPolicy:
    """Per-task retry behaviour for transient failures.

    ``retry_on`` handles exceptions escaping ``Crawler.run_task`` (the
    stock crawler converts network failures into records instead of
    raising, but subclasses and future transports may not).
    ``retry_unreachable`` additionally re-runs detection visits that
    came back ``reachable=False``; it defaults to off because the
    paper's methodology counts unreachable sites (and a retry consumes
    extra visit ids from the serial stream).

    Backoff, jitter, and deadlines are paid on the **virtual clock**:
    no real sleeping ever happens, yet the accounting is deterministic
    (jitter derives from the task identity, never a live RNG) so the
    same policy yields the same attempt schedule on every backend.
    ``breaker_threshold``/``breaker_quarantine`` configure the
    per-domain circuit breakers; ``None`` disables them.
    """

    max_attempts: int = 2
    retry_on: Tuple[type, ...] = (NetworkError,)
    retry_unreachable: bool = False
    #: Exponential-backoff schedule (virtual seconds); base <= 0 means
    #: no inter-attempt delay.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Deterministic jitter fraction in [0, 1]: each delay is scaled by
    #: ``1 - jitter * roll`` where roll derives from the task identity.
    jitter: float = 0.1
    #: Virtual-seconds budget for one attempt (None = unlimited); the
    #: clock raises TimeoutError when an attempt exceeds it.
    attempt_deadline: Optional[float] = None
    #: Virtual-seconds budget for one task across all attempts + backoff
    #: (None = unlimited); breached budgets degrade to DeadlineExceeded.
    task_deadline: Optional[float] = None
    #: Open a domain's circuit after this many consecutive task
    #: failures (None disables breakers entirely).
    breaker_threshold: Optional[int] = None
    #: How many tasks an open breaker skips before a half-open probe.
    breaker_quarantine: int = 4

    def backoff_delay(self, task: CrawlTask, attempt: int) -> float:
        """The virtual-seconds delay before retrying *task*'s *attempt*."""
        base = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if base <= 0.0:
            return 0.0
        if self.jitter <= 0.0:
            return base
        roll = derive_seed(
            0, "backoff", task.vp, task.domain, task.mode, task.repeats,
            attempt,
        ) % 1_000_000 / 1_000_000.0
        return base * (1.0 - self.jitter * roll)


def _execute_task(
    crawler,
    task: CrawlTask,
    context: Optional[Dict],
    retry: RetryPolicy,
    id_streams,
    on_retry: Callable[[int, str], None],
    clock=None,
) -> Tuple[Optional[object], Optional[str], int]:
    """Run one task under *retry*; returns ``(record, error, attempts)``.

    The single retry loop shared by the in-process engine and the
    process-backend workers, so both backends have identical retry
    semantics by construction.

    *id_streams* is a zero-arg factory producing a fresh visit-id
    stream (or ``None`` for the serial regime).  The stream is rebuilt
    **per attempt** so a retried task replays the same visit ids — a
    consumed chaos fault then stays consumed and the recovered attempt
    is byte-identical to a fault-free run.

    Exhausted retries and breached task deadlines never lose the task:
    they return a deterministic degraded record alongside the error, so
    every plan index lands in the merge exactly once.
    """
    meter = TaskMeter(attempt_deadline=retry.attempt_deadline)
    attempts = 0
    with active_meter(meter):
        while True:
            attempts += 1
            meter.begin_attempt()
            visit_ids = id_streams() if id_streams is not None else None
            try:
                record = crawler.run_task(task, context, visit_ids=visit_ids)
            except retry.retry_on as exc:
                error = type(exc).__name__
                if attempts >= retry.max_attempts:
                    return degraded_record(task, error), error, attempts
                delay = retry.backoff_delay(task, attempts)
                if (
                    retry.task_deadline is not None
                    and meter.cost + delay > retry.task_deadline
                ):
                    return (
                        degraded_record(task, "DeadlineExceeded"),
                        "DeadlineExceeded",
                        attempts,
                    )
                if clock is not None:
                    clock.sleep(delay)
                meter.charge(delay)
                on_retry(attempts, error)
            else:
                if (
                    retry.retry_unreachable
                    and task.mode == "detect"
                    and getattr(record, "reachable", True) is False
                    and attempts < retry.max_attempts
                ):
                    on_retry(
                        attempts,
                        getattr(record, "error", None) or "unreachable",
                    )
                    continue
                return record, None, attempts


# ---------------------------------------------------------------------------
# Process-backend worker side
# ---------------------------------------------------------------------------

#: Worlds exported by the parent before the pool starts.  Under the
#: ``fork`` start method workers inherit this populated dict and skip
#: the rebuild entirely; under ``spawn`` it starts empty and the first
#: shard of each world pays one deterministic ``build_world``.
_SHARED_WORLDS: Dict[Tuple, object] = {}

#: Per-process world cache keyed by world key, for spawn-started
#: workers that had to rebuild (fork-started ones use _SHARED_WORLDS).
_WORKER_WORLDS: Dict[Tuple, object] = {}

#: Run-constant state a worker shares across its shards (world key,
#: detectors, retry policy, plan context).  Installed once per worker
#: by the pool initializer instead of travelling in every bundle, so
#: e.g. a multi-MB ublock_lists payload pickles per *worker*, not per
#: shard.
_WORKER_SHARED: Dict[str, object] = {}


def _init_worker_shared(shared: Dict[str, object]) -> None:
    """Pool initializer: install the run-constant half of the bundles."""
    _WORKER_SHARED.clear()
    _WORKER_SHARED.update(shared)


def _task_id_base(world_seed: int, task: CrawlTask) -> int:
    """The per-task visit-id stream seed (one derivation, all backends).

    Both the in-process engine and the process-backend bundles derive
    stream seeds through this function, so the cross-backend
    byte-identity contract cannot be broken by editing one copy.
    """
    return derive_seed(
        world_seed, "engine-task-visits",
        task.vp, task.domain, task.mode, task.repeats,
    )


def _id_stream(base: int) -> Callable[[], int]:
    """The deterministic visit-id stream rooted at *base*."""
    counter = itertools.count()
    return lambda: derive_seed(base, next(counter))


def _worker_world(world_key: Tuple, latency: float, latency_mode: str = "virtual"):
    """The (cached or fork-inherited) world a worker process uses."""
    world = _SHARED_WORLDS.get(world_key) or _WORKER_WORLDS.get(world_key)
    if world is None:
        # Imported lazily — repro.measure.crawl imports this module.
        from repro.webgen.evolve import evolve_world
        from repro.webgen.world import build_world

        seed, scale, evolution = world_key
        world = build_world(scale=scale, seed=seed)
        if evolution:
            world, _ = evolve_world(world, months=evolution)
        _WORKER_WORLDS[world_key] = world
    world.network.latency = latency
    world.network.latency_mode = latency_mode
    return world


def _run_shard_bundle(bundle: Dict) -> Dict:
    """Execute one picklable shard bundle inside a worker process.

    Returns serialized outcomes — each record is dumped **once**, in
    the worker, to its canonical JSONL line
    (:func:`~repro.measure.storage.encode_record_line`); the parent
    passes those bytes through to spools and checkpoints without ever
    decoding them — plus the worker's pid and elapsed time, so the
    parent can attribute per-process throughput.
    """
    started = time.perf_counter()
    from repro.measure.crawl import Crawler

    shared = _WORKER_SHARED
    world = _worker_world(
        tuple(shared["world"]),
        shared["latency"],
        shared.get("latency_mode", "virtual"),
    )
    crawler = Crawler(
        world,
        bannerclick=shared["bannerclick"],
        language_detector=shared["language_detector"],
        ublock_lists=shared["ublock_lists"],
    )
    retry: RetryPolicy = shared["retry"]
    context = shared["context"]
    chaos_ctx = (context or {}).get("chaos")
    world.network.chaos = (
        ChaosEngine(ChaosSpec.from_context(chaos_ctx)) if chaos_ctx else None
    )
    breakers: Dict[str, CircuitBreaker] = {}
    if retry.breaker_threshold is not None:
        snapshots = bundle.get("breakers") or {}
        for entry in bundle["tasks"]:
            domain = entry[2]
            if domain not in breakers:
                breakers[domain] = CircuitBreaker(
                    domain,
                    threshold=retry.breaker_threshold,
                    quarantine=retry.breaker_quarantine,
                    snapshot=snapshots.get(domain),
                )
    kill_after = bundle.get("kill_after")
    outcomes: List[Dict] = []
    retries: List[Dict] = []
    breaker_events: List[Dict] = []
    for position, (index, vp, domain, mode, repeats) in enumerate(
        bundle["tasks"]
    ):
        if kill_after is not None and position >= kill_after:
            # Fault injection: die the way a real worker does — no
            # cleanup, no exception, just gone (see
            # FaultInjectingProcessExecutor).
            os.kill(os.getpid(), signal.SIGKILL)
        task = CrawlTask(vp=vp, domain=domain, mode=mode, repeats=repeats)
        breaker = breakers.get(domain)
        if breaker is not None and not breaker.allow():
            outcomes.append({
                "index": index,
                "attempts": 0,
                "error": "BreakerOpenError",
                "record": encode_record_line(
                    degraded_record(task, "BreakerOpenError")
                ),
            })
            continue
        base = bundle["id_bases"].get(index)
        id_streams = (
            (lambda base=base: _id_stream(base)) if base is not None else None
        )
        record, error, attempts = _execute_task(
            crawler, task, context, retry, id_streams,
            lambda attempt, err: retries.append({
                "index": index, "vp": vp, "domain": domain, "mode": mode,
                "attempt": attempt, "error": err,
            }),
            clock=world.network.clock,
        )
        if breaker is not None:
            transition = breaker.record(error is None)
            if transition is not None:
                breaker_events.append(
                    {"domain": domain, "transition": transition}
                )
        outcomes.append({
            "index": index,
            "attempts": attempts,
            "error": error,
            "record": (
                encode_record_line(record) if record is not None else None
            ),
        })
    return {
        "shard": bundle["shard"],
        "pid": os.getpid(),
        "elapsed": time.perf_counter() - started,
        "outcomes": outcomes,
        "retries": retries,
        "breakers": {
            domain: breaker.snapshot() for domain, breaker in breakers.items()
        },
        "breaker_events": breaker_events,
    }


@dataclass(frozen=True)
class CheckpointCompaction:
    """What :meth:`CrawlEngine.compact_checkpoint` did to one file."""

    path: Path
    #: Outcome lines kept (the latest per plan index).
    kept: int
    #: Superseded/duplicate outcome lines dropped.
    dropped: int
    fingerprint: str

    def render(self) -> str:
        return (
            f"{self.path}: kept {self.kept} outcomes, dropped "
            f"{self.dropped} (fingerprint {self.fingerprint})"
        )


# ---------------------------------------------------------------------------
# Streaming checkpoint machinery
#
# A checkpoint is append-only: each shard flush (and each reconcile
# rewrite) appends one index-sorted batch of outcome lines, so the file
# is a concatenation of *sorted runs*.  That structure makes both
# resume and compaction streamable: a byte-offset scan finds the run
# boundaries, then a k-way ``heapq.merge`` over the runs yields every
# outcome in plan order — duplicates adjacent, latest occurrence last
# (``heapq.merge`` is stable, and the runs are passed in file order) —
# with one buffered line per run in memory, never the full replay set.
# ---------------------------------------------------------------------------

@dataclass
class _CheckpointScan:
    """Pass 1 of a streaming checkpoint read: structure, not payloads."""

    #: The header line exactly as found (no newline).
    header_line: str
    header: Dict
    #: Byte offset where each sorted run's first outcome line starts.
    runs: List[int]
    #: Byte offset just past the last complete line (a torn trailing
    #: line is excluded, as on any checkpoint read).
    end: int
    #: Total outcome lines (duplicates included).
    outcome_lines: int
    #: Unique plan indices with a checkpointed outcome.
    indices: Set[int]
    #: Latest-wins circuit-breaker snapshots keyed by domain
    #: (``{"kind": "breaker"}`` lines appended at shard flushes).
    breakers: Dict[str, Dict] = field(default_factory=dict)


def _scan_checkpoint(
    path: Path,
    *,
    validate: Optional[Callable[[int, Dict], None]] = None,
    on_header: Optional[Callable[[Dict], None]] = None,
) -> _CheckpointScan:
    """Scan *path* once, collecting run boundaries and the index set.

    Structural errors raise :class:`ValueError` (mid-file corruption,
    an outcome without an integer index) or :class:`CheckpointMismatch`
    (not a checkpoint at all); *validate* may add per-outcome checks
    and *on_header* runs as soon as the header parses, so e.g. a
    fingerprint mismatch is reported before the rest of the file is
    read.  Only integers ever accumulate here — record payloads stay
    on disk.
    """
    header_line: Optional[str] = None
    header: Optional[Dict] = None
    runs: List[int] = []
    end = 0
    outcome_lines = 0
    indices: Set[int] = set()
    breakers: Dict[str, Dict] = {}
    prev_index: Optional[int] = None
    #: A decode failure held back one line: only if another line
    #: follows is it corruption rather than a torn final write.
    pending: Optional[Tuple[int, Exception]] = None
    offset = 0
    with open(path, "rb") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line_start = offset
            offset += len(raw)
            if pending is not None:
                bad_line, error = pending
                raise ValueError(
                    f"{path}:{bad_line}: invalid JSON mid-file ({error})"
                )
            try:
                text = raw.decode("utf-8").strip()
            except UnicodeDecodeError as error:
                pending = (line_number, error)
                continue
            if not text:
                continue
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                pending = (line_number, error)
                continue
            kind = (
                payload.get("kind") if isinstance(payload, dict) else None
            )
            if header is None:
                if kind != "header":
                    raise CheckpointMismatch(
                        f"{path}: not a crawl checkpoint "
                        f"(first line is {kind!r})"
                    )
                header_line = text
                header = payload
                if on_header is not None:
                    on_header(header)
                end = offset
                continue
            if kind != "outcome":
                if kind == "breaker" and isinstance(
                    payload.get("domains"), dict
                ):
                    # Latest-wins by file order: a re-flushed shard's
                    # newer snapshot overwrites the stale one.
                    breakers.update(payload["domains"])
                end = offset
                continue
            index = payload.get("index")
            if not isinstance(index, int):
                raise ValueError(
                    f"{path}:{line_number}: outcome without an index"
                )
            if validate is not None:
                validate(line_number, payload)
            outcome_lines += 1
            indices.add(index)
            if prev_index is None or index <= prev_index:
                runs.append(line_start)
            prev_index = index
            end = offset
    if pending is not None:
        bad_line, error = pending
        note_torn_line(path, bad_line, error)
    if header is None or header_line is None:
        raise CheckpointMismatch(f"{path}: not a crawl checkpoint (empty)")
    return _CheckpointScan(
        header_line=header_line,
        header=header,
        runs=runs,
        end=end,
        outcome_lines=outcome_lines,
        indices=indices,
        breakers=breakers,
    )


def _breaker_line(snapshots: Dict[str, Dict]) -> str:
    """One ``{"kind": "breaker"}`` checkpoint line for *snapshots*."""
    return json.dumps(
        {"kind": "breaker", "domains": snapshots},
        ensure_ascii=False,
        sort_keys=True,
    ) + "\n"


def _iter_checkpoint_run(
    path: Path, start: int, stop: int
) -> Iterator[Tuple[int, Dict, str]]:
    """Stream one sorted run's ``(index, payload, line)`` triples."""
    with open(path, "rb") as handle:
        handle.seek(start)
        position = start
        while position < stop:
            raw = handle.readline()
            if not raw:
                break
            position += len(raw)
            text = raw.decode("utf-8").strip()
            if not text:
                continue
            payload = json.loads(text)
            if payload.get("kind") != "outcome":
                continue
            yield payload["index"], payload, text


def _merge_checkpoint_runs(
    path: Path, scan: _CheckpointScan
) -> Iterator[Tuple[int, Dict, str]]:
    """Latest-wins plan-order stream over a checkpoint's sorted runs.

    Duplicated indices (a shard re-run after a crash) collapse to the
    occurrence latest in the file — the append order is the authority
    — exactly like the dict-based compaction this replaces, but with
    one buffered line per run instead of the whole outcome set.
    """
    bounds = scan.runs + [scan.end]
    streams = [
        _iter_checkpoint_run(path, bounds[i], bounds[i + 1])
        for i in range(len(scan.runs))
    ]
    held: Optional[Tuple[int, Dict, str]] = None
    for item in heapq.merge(*streams, key=lambda item: item[0]):
        if held is not None and item[0] != held[0]:
            yield held
        held = item
    if held is not None:
        yield held


@dataclass
class CheckpointReplay:
    """What a streaming reconcile replays into the current run.

    The spool-merge resume path deliberately holds no records: the
    completed *indices* (ints), the — small — permanent failures, and
    the path of the sorted replay part file the k-way join consumes.
    Only the in-memory merge materialises replayed outcomes, and even
    those carry zero-copy :class:`~repro.measure.storage.RawRecord`
    payloads until a consumer looks inside.
    """

    completed: Set[int] = field(default_factory=set)
    #: Latest-wins permanently failed outcomes (spool merge only).
    failures: List["TaskOutcome"] = field(default_factory=list)
    #: In-memory merge only: every replayed outcome, records zero-copy.
    outcomes: List["TaskOutcome"] = field(default_factory=list)
    #: Spool merge only: the index-sorted record replay file, if any
    #: completed outcome carried a record.
    resume_part: Optional[Path] = None
    #: Circuit-breaker snapshots restored from the checkpoint, keyed
    #: by domain — adopted into the engine's registry before execution
    #: so quarantine survives a kill/resume.
    breakers: Dict[str, Dict] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.completed)


@dataclass
class EngineResult:
    """Merged outcomes of one engine run, in canonical (plan) order.

    In the default in-memory merge, :attr:`outcomes` holds every
    :class:`TaskOutcome`.  Under ``merge="spool"`` the outcomes were
    streamed to disk instead: :attr:`outcomes` is ``None``, the final
    records live at :attr:`spool_path` (stream them with
    :meth:`iter_records`; :attr:`records` materialises them on
    demand), and only the counts plus the — small — permanent-failure
    list are kept in memory.
    """

    outcomes: Optional[List[TaskOutcome]] = field(default_factory=list)
    elapsed: float = 0.0
    #: Outcomes replayed from a checkpoint rather than executed.
    resumed: int = 0
    #: Spool-merge mode only: where the merged records were written.
    spool_path: Optional[Path] = None
    #: Spool-merge mode only: total task count (``len(plan)``).
    total: Optional[int] = None
    #: Spool-merge mode only: records written to :attr:`spool_path`.
    spooled_records: int = 0
    #: Spool-merge mode only: the permanently failed outcomes.
    spooled_failures: List[TaskOutcome] = field(default_factory=list)

    @property
    def streamed(self) -> bool:
        """True when this result was spool-merged (outcomes on disk)."""
        return self.outcomes is None

    @property
    def executed(self) -> int:
        """Tasks actually run this invocation (resumed ones excluded)."""
        return len(self) - self.resumed

    @property
    def records(self) -> List[object]:
        """The produced records, plan-ordered, skipping failed tasks.

        For a spool-merged result this *materialises* the full list
        from disk — prefer :meth:`iter_records` at scale.  Outcomes
        that travelled zero-copy (process workers, checkpoint replay)
        are decoded here, at the consumer boundary — the first time
        anyone actually needs the typed objects.
        """
        if self.outcomes is None:
            # reprolint: disable=materialized-records -- .records IS the documented materialising consumer API; iter_records is the streaming twin
            return load_records(self.spool_path)
        return [
            materialize_record(o.record)
            for o in self.outcomes
            if o.record is not None
        ]

    def iter_records(self) -> Iterator[object]:
        """Stream the records in plan order without materialising."""
        if self.outcomes is None:
            yield from iter_records(self.spool_path)
            return
        for outcome in self.outcomes:
            if outcome.record is not None:
                yield materialize_record(outcome.record)

    @property
    def record_count(self) -> int:
        """Number of produced records (no materialisation needed)."""
        if self.outcomes is None:
            return self.spooled_records
        return sum(1 for o in self.outcomes if o.record is not None)

    @property
    def failures(self) -> List[TaskOutcome]:
        if self.outcomes is None:
            return list(self.spooled_failures)
        return [o for o in self.outcomes if o.error is not None]

    @property
    def tasks_per_sec(self) -> float:
        """Execution throughput — replayed outcomes took no work, so
        they do not count (a 90%-resumed run is not 10× faster)."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.executed / self.elapsed

    def __len__(self) -> int:
        if self.outcomes is None:
            return self.total if self.total is not None else 0
        return len(self.outcomes)


class Executor:
    """Strategy interface: run sharded tasks, return unordered outcomes."""

    def run(
        self,
        sharded: List[List[Tuple[int, CrawlTask]]],
        run_shard: Callable[[int, List[Tuple[int, CrawlTask]]], List[TaskOutcome]],
    ) -> List[TaskOutcome]:
        raise NotImplementedError


class SerialExecutor(Executor):
    """Runs shards one after another on the calling thread."""

    def run(self, sharded, run_shard):
        outcomes: List[TaskOutcome] = []
        for shard_id, items in enumerate(sharded):
            if items:
                outcomes.extend(run_shard(shard_id, items))
        return outcomes


class ParallelExecutor(Executor):
    """Runs shards concurrently on a thread pool of *workers* threads."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run(self, sharded, run_shard):
        outcomes: List[TaskOutcome] = []
        with _PyThreadPool(max_workers=self.workers) as pool:
            futures = [
                pool.submit(run_shard, shard_id, items)
                for shard_id, items in enumerate(sharded)
                if items
            ]
            for future in futures:
                outcomes.extend(future.result())
        return outcomes


class FaultInjectingExecutor(ParallelExecutor):
    """Chaos harness for the checkpoint/resume path: kills the chosen
    shards either before they run or — with ``partial=True`` — after
    half their tasks completed (and were checkpointed), which is what a
    worker dying mid-shard looks like.  Surviving shards finish and
    checkpoint normally, exactly as under a real crash of one worker.
    Used by the crash-safety tests and benchmarks; never the default.
    """

    def __init__(self, workers: int, fail_shards, *, partial: bool = False):
        super().__init__(workers)
        self.fail_shards = set(fail_shards)
        self.partial = partial

    def run(self, sharded, run_shard):
        def wrapped(shard_id, items):
            if shard_id in self.fail_shards:
                if self.partial:
                    run_shard(shard_id, items[: len(items) // 2])
                raise RuntimeError(f"injected crash in shard {shard_id}")
            return run_shard(shard_id, items)

        return super().run(sharded, wrapped)


class ProcessExecutor(Executor):
    """Runs shards in worker *processes* (``ProcessPoolExecutor``).

    The closure-based :meth:`Executor.run` contract cannot cross a
    process boundary, so this executor instead consumes picklable
    shard bundles built by the engine (:meth:`CrawlEngine.
    _process_bundle`) and hands each completed shard's serialized
    payload back through a callback — in completion order, so the
    engine checkpoints and spools shards exactly as eagerly as it
    does under threads.

    The start method defaults to ``fork`` where available (workers
    inherit the parent's already-built world through
    ``_SHARED_WORLDS`` for free) and falls back to ``spawn``, where
    each worker deterministically rebuilds the world from its key on
    first use.
    """

    uses_processes = True

    def __init__(self, workers: int, *, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.start_method = start_method

    def _mp_context(self):
        method = self.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def bundle_overrides(self, shard_id: int, task_count: int) -> Dict:
        """Extra bundle keys for *shard_id* (the fault-injection hook)."""
        return {}

    def run_bundles(
        self,
        bundles: List[Dict],
        on_shard: Callable[[Dict], None],
        shared: Dict[str, object],
    ) -> None:
        """Run *bundles*, invoking *on_shard* per completed payload.

        *shared* is the run-constant half of the work (world key,
        detectors, retry policy, context), installed once per worker
        via the pool initializer rather than pickled into every
        bundle.

        A worker that dies (or a bundle that raises) surfaces here as
        the pool's exception, after the shards whose results were
        already delivered have been absorbed.  Note the broken-pool
        caveat: when a worker dies, ``concurrent.futures`` voids *all*
        unfinished futures — including shards mid-flight in healthy
        sibling workers — so those shards simply re-run on resume.
        Correctness is unaffected (the checkpoint holds exactly the
        delivered shards); the amount of re-executed work under a
        multi-worker crash is scheduling-dependent.
        """
        with _PyProcessPool(
            max_workers=self.workers,
            mp_context=self._mp_context(),
            initializer=_init_worker_shared,
            initargs=(shared,),
        ) as pool:
            futures = [
                pool.submit(_run_shard_bundle, bundle) for bundle in bundles
            ]
            for future in as_completed(futures):
                on_shard(future.result())


class FaultInjectingProcessExecutor(ProcessExecutor):
    """Chaos harness for the process backend: the chosen shards'
    workers SIGKILL themselves after completing half their tasks —
    byte-for-byte what the OOM killer or a pod eviction does to a real
    worker.  The engine run fails with the pool's
    ``BrokenProcessPool``; shards whose results were delivered before
    the kill stay checkpointed, while shards still in flight (in the
    killed worker *or* — with multiple workers — in siblings, which a
    broken pool voids too) re-run on resume.  Tests pin ``workers=1``
    where they need the set of checkpointed shards deterministic.
    Used by the kill/resume tests; never the default.
    """

    def __init__(
        self,
        workers: int,
        kill_shards,
        *,
        start_method: Optional[str] = None,
    ):
        super().__init__(workers, start_method=start_method)
        self.kill_shards = set(kill_shards)

    def bundle_overrides(self, shard_id: int, task_count: int) -> Dict:
        if shard_id in self.kill_shards:
            return {"kill_after": task_count // 2}
        return {}


class CrawlEngine:
    """Compiles nothing, schedules everything: executes a
    :class:`CrawlPlan` through an executor and merges the outcomes.

    Parameters
    ----------
    crawler:
        The :class:`~repro.measure.crawl.Crawler` whose ``run_task``
        performs one task.
    workers:
        Degree of parallelism.  Without an explicit *backend*, ``1``
        (default) selects :class:`SerialExecutor` and ``>1`` a
        :class:`ParallelExecutor` with that many threads.
    backend:
        Executor backend by name — ``"serial"``, ``"thread"``, or
        ``"process"`` (see the module docstring); ``None`` keeps the
        workers-based rule above.  The process backend requires a
        stock crawler over a built world (pickling constraints) and
        always uses per-task visit-id streams.
    merge:
        ``"memory"`` (default) assembles the merged outcome list in
        memory; ``"spool"`` streams shard outcomes to per-shard spools
        and produces the final file via a k-way plan-order streaming
        join, keeping memory O(one shard) — requires *spool_path*.
    shards:
        Shard count; defaults to ``1`` when serial and ``4 × workers``
        when parallel.  A shard is the unit of concurrency (tasks
        within it run serially), so effective parallelism is
        ``min(workers, shards)``.  The merged result is independent of
        it for detection crawls (see module docstring).
    retry:
        :class:`RetryPolicy` for transient failures.
    event_log:
        An :class:`~repro.measure.instrumentation.EventLog` receiving
        ``plan`` / ``shard`` / ``task-retry`` / ``progress`` /
        ``throughput`` events.
    progress:
        ``progress(done, total, task)`` called after every completed
        task (serialised under the engine lock).
    spool_path:
        When set, each finished shard's records are appended to
        ``<spool_path>.partial`` as the crawl runs (a crash leaves the
        completed shards there and the previous complete output
        untouched); on success the final file is written to
        *spool_path* in canonical plan order — identical runs produce
        byte-identical files.  This is crash durability, not a memory
        saving: the merged result is still assembled in memory.
    checkpoint_path:
        When set, completed task outcomes (records *and* permanent
        failures, with their plan indices) are appended to this JSONL
        checkpoint as shards finish, under a :func:`plan_fingerprint`
        header.  Enables crash-safe resume — see the module docstring.
        Checkpointed runs always use per-task visit-id streams, even
        when serial.  Removed on success.
    resume:
        With ``resume=True`` an existing checkpoint is reconciled
        against the plan before execution: completed tasks are skipped
        and their outcomes replayed into the merge.  A fingerprint
        mismatch raises :class:`CheckpointMismatch`; a missing
        checkpoint simply starts fresh.
    executor:
        Override the executor strategy (a test/fault-injection hook);
        by default chosen from *workers* as described above.
    """

    def __init__(
        self,
        crawler,
        *,
        workers: int = 1,
        shards: Optional[int] = None,
        backend: Optional[str] = None,
        merge: str = "memory",
        retry: Optional[RetryPolicy] = None,
        event_log: Optional[EventLog] = None,
        progress: Optional[ProgressHook] = None,
        progress_every: int = 1000,
        spool_path=None,
        checkpoint_path: Union[str, Path, None] = None,
        resume: bool = False,
        executor: Optional[Executor] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend is not None and backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r} "
                f"(known: {', '.join(EXECUTOR_BACKENDS)})"
            )
        if backend == "serial" and workers > 1:
            raise ValueError(
                "backend='serial' contradicts workers > 1 "
                "(pick 'thread' or 'process' to parallelise)"
            )
        if merge not in MERGE_MODES:
            raise ValueError(
                f"unknown merge mode {merge!r} "
                f"(known: {', '.join(MERGE_MODES)})"
            )
        if merge == "spool" and spool_path is None:
            raise ValueError(
                "merge='spool' streams to per-shard spools and needs a "
                "spool_path for the final join"
            )
        self.crawler = crawler
        self.workers = workers
        self.backend = backend
        self.merge = merge
        # An explicitly injected process executor is as parallel as a
        # named backend — it must flip the shards default (and the
        # visit-id regime below) exactly like backend="process".
        parallel = (
            workers > 1
            or backend in ("thread",) + _BUNDLE_BACKENDS
            or getattr(executor, "uses_processes", False)
        )
        self.shards = shards if shards is not None else (
            workers * 4 if parallel else 1
        )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        self.retry = retry or RetryPolicy()
        self.event_log = event_log
        self.progress = progress
        self.progress_every = max(progress_every, 1)
        self.spool_path = spool_path
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        if resume and self.checkpoint_path is None:
            # A silently ignored resume would re-run everything while
            # the caller believes the checkpoint was honoured.
            raise ValueError("resume=True requires a checkpoint_path")
        self.resume = resume
        self.executor = executor
        self._spool_partial: Optional[Path] = None
        #: Spool-merge run state: part files written so far.
        self._merge_parts: List[Path] = []
        #: pid -> [shards, tasks, elapsed] for process-backend runs.
        self._process_stats: Dict[int, List] = {}
        self._lock = threading.Lock()
        #: Separate lock for the caller's progress hook, so a slow (or
        #: engine-reentrant) hook can never stall spool writes or
        #: deadlock against the engine's own lock.
        self._progress_lock = threading.Lock()
        self._done = 0
        self._total = 0
        #: Per-domain circuit breakers (populated in execute() when the
        #: retry policy enables them; adopted from checkpoint replays).
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: The crawler world's virtual clock, when it has one — retry
        #: backoff is paid here instead of sleeping.
        self._clock = None

    # ------------------------------------------------------------------
    @property
    def resolved_backend(self) -> str:
        """The effective backend name (explicit, or the workers rule)."""
        if self.backend is not None:
            return self.backend
        return "serial" if self.workers == 1 else "thread"

    @property
    def per_task_ids(self) -> bool:
        """Whether tasks get private visit-id streams (module docstring).

        True in parallel mode (any explicit thread/process backend —
        or injected process executor — included: worker processes
        cannot share the serial counter) and for every checkpointed
        run: the serial shared-counter stream cannot survive a resume
        boundary, since replayed tasks would no longer advance it.
        """
        return (
            self.workers > 1
            or self.checkpoint_path is not None
            or self.backend in ("thread",) + _BUNDLE_BACKENDS
            or getattr(self.executor, "uses_processes", False)
        )

    def fingerprint(self, plan: CrawlPlan) -> str:
        """The :func:`plan_fingerprint` of *plan* under this engine."""
        world = getattr(self.crawler, "world", None)
        config = getattr(world, "config", None)
        return plan_fingerprint(
            plan,
            world_seed=getattr(config, "seed", None),
            world_scale=getattr(config, "scale", None),
            world_evolution=getattr(world, "evolution_months", 0),
            per_task_ids=(
                self.per_task_ids or campaign_plan(plan) or chaos_plan(plan)
            ),
        )

    def execute(self, plan: CrawlPlan) -> EngineResult:
        """Run *plan* and return the plan-ordered merged result."""
        sharded = plan.sharded(self.shards)
        self._total = len(plan)
        self._spool_partial = None
        self._merge_parts = []
        self._process_stats = {}
        # Spool preparation runs *before* the checkpoint reconcile: the
        # reconcile streams the replay records straight into this
        # run's .resume.part, which the cleanup of an interrupted
        # earlier run's part files would otherwise delete.
        if self.spool_path is not None:
            if self.merge == "spool":
                # Part files from an interrupted earlier run would
                # contaminate this run's k-way join; shards open their
                # part files directly, so the directory must exist.
                Path(self.spool_path).parent.mkdir(
                    parents=True, exist_ok=True
                )
                self._cleanup_parts()
            else:
                self._spool_partial = Path(f"{self.spool_path}.partial")
                save_records([], self._spool_partial)
        replay = self._reconcile_checkpoint(plan)
        self._breakers = {}
        if self.retry.breaker_threshold is not None:
            # Pre-created single-threaded: shard workers only ever look
            # their domain's breaker up, never mutate the registry.
            for task in plan.tasks:
                if task.domain not in self._breakers:
                    self._breakers[task.domain] = CircuitBreaker(
                        task.domain,
                        threshold=self.retry.breaker_threshold,
                        quarantine=self.retry.breaker_quarantine,
                    )
            for domain, snapshot in replay.breakers.items():
                breaker = self._breakers.get(domain)
                if breaker is not None:
                    breaker.adopt(snapshot)
        if replay.completed:
            sharded = [
                [
                    (index, task) for index, task in shard
                    if index not in replay.completed
                ]
                for shard in sharded
            ]
        self._done = replay.count
        self._emit("plan", "engine://plan", {
            "tasks": len(plan),
            "shards": self.shards,
            "workers": self.workers,
            "backend": self.resolved_backend,
            "merge": self.merge,
        })
        if replay.count:
            self._emit("resume", "engine://resume", {
                "completed": replay.count,
                "remaining": len(plan) - replay.count,
            })
        executor: Executor = self.executor or self._default_executor()
        network = getattr(getattr(self.crawler, "world", None), "network", None)
        self._clock = getattr(network, "clock", None)
        chaos_ctx = plan.context.get("chaos")
        installed_chaos = False
        if network is not None and isinstance(chaos_ctx, dict):
            network.chaos = ChaosEngine(ChaosSpec.from_context(chaos_ctx))
            installed_chaos = True
        started = time.perf_counter()
        try:
            if getattr(executor, "uses_processes", False):
                outcomes = self._run_process_shards(executor, plan, sharded)
            else:
                outcomes = executor.run(
                    sharded,
                    lambda sid, items: self._run_shard(plan, sid, items),
                )
        finally:
            if installed_chaos:
                network.chaos = None
        elapsed = time.perf_counter() - started
        self._emit_process_throughput()
        if self.merge == "spool":
            result = self._finalise_spool_merge(
                plan, replay, outcomes, elapsed
            )
        else:
            outcomes.extend(replay.outcomes)
            outcomes.sort(key=lambda outcome: outcome.index)
            result = EngineResult(
                outcomes=outcomes, elapsed=elapsed, resumed=replay.count
            )
            if self.spool_path is not None:
                # Shards appended to the .partial file in completion
                # order (a crash leaves them there, and the previous
                # complete output untouched); success writes the
                # canonical file and drops the partial.  Iterating the
                # outcomes directly (not .records) keeps zero-copy
                # records serialized end to end.
                save_records(
                    (
                        o.record for o in outcomes
                        if o.record is not None
                    ),
                    self.spool_path,
                )
                if self._spool_partial is not None:
                    self._spool_partial.unlink(missing_ok=True)
        if self.checkpoint_path is not None:
            # The run completed; its durable output (if any) is final.
            self.checkpoint_path.unlink(missing_ok=True)
        self._emit("throughput", "engine://throughput", {
            "tasks": result.executed,
            "resumed": result.resumed,
            "elapsed": elapsed,
            "tasks_per_sec": result.tasks_per_sec,
        })
        return result

    def _default_executor(self) -> Executor:
        """The executor the resolved backend names.

        Each shard is one unit of concurrency, so workers beyond the
        shard count would only idle.
        """
        backend = self.resolved_backend
        if backend == "serial":
            return SerialExecutor()
        workers = min(self.workers, self.shards)
        if backend == "process":
            return ProcessExecutor(workers)
        if backend == "distributed":
            # Imported lazily — repro.distributed builds on this module.
            from repro.distributed import DistributedExecutor

            return DistributedExecutor(workers)
        return ParallelExecutor(workers)

    # ------------------------------------------------------------------
    # Process backend (picklable shard bundles)
    # ------------------------------------------------------------------
    def _check_process_portable(self) -> None:
        """Refuse crawls a worker process cannot reconstruct."""
        from repro.measure.crawl import Crawler

        if type(self.crawler) is not Crawler:
            raise ValueError(
                "the process backend ships picklable task bundles and "
                "rebuilds the stock Crawler in each worker; "
                f"{type(self.crawler).__name__} cannot cross the process "
                "boundary (use the thread backend)"
            )
        config = getattr(getattr(self.crawler, "world", None), "config", None)
        if config is None or getattr(config, "seed", None) is None:
            raise ValueError(
                "the process backend rebuilds the world from its "
                "(seed, scale, evolution) key; this crawler's world has "
                "no build config"
            )
        from repro.webgen.config import WorldConfig

        if config != WorldConfig(seed=config.seed, scale=config.scale):
            # A spawn-started worker rebuilds with build_world(scale,
            # seed) only; hand-tuned population knobs would silently
            # produce a *different web* in the worker, so refuse them
            # up front (fork-started workers would mask this locally).
            raise ValueError(
                "the process backend rebuilds the world from (seed, "
                "scale) alone; this world's config carries non-default "
                "knobs a worker could not reproduce (use the thread "
                "backend)"
            )

    def _run_process_shards(
        self,
        executor: "ProcessExecutor",
        plan: CrawlPlan,
        sharded: List[List[Tuple[int, CrawlTask]]],
    ) -> List[TaskOutcome]:
        self._check_process_portable()
        world = self.crawler.world
        config = world.config
        world_key = (
            config.seed, config.scale, getattr(world, "evolution_months", 0)
        )
        # Fork-started workers inherit this entry and skip the rebuild;
        # spawn-started ones build deterministically from the key.
        _SHARED_WORLDS[world_key] = world
        # The run-constant half, installed once per worker by the pool
        # initializer.  The live detector instances travel here, so
        # configured (e.g. ablation) detectors behave the same in a
        # worker as under threads; an unpicklable custom detector
        # fails loudly at pool start.
        shared = {
            "world": world_key,
            "latency": getattr(world.network, "latency", 0.0),
            "latency_mode": getattr(world.network, "latency_mode", "virtual"),
            "bannerclick": self.crawler.bannerclick,
            "language_detector": self.crawler._lang,
            "ublock_lists": self.crawler.ublock_lists,
            "context": plan.context,
            "retry": self.retry,
        }
        bundles: List[Dict] = []
        for shard_id, items in enumerate(sharded):
            if not items:
                continue
            shard_breakers: Dict[str, Dict] = {}
            for _, task in items:
                breaker = self._breakers.get(task.domain)
                if breaker is not None and task.domain not in shard_breakers:
                    shard_breakers[task.domain] = breaker.snapshot()
            bundle = {
                "shard": shard_id,
                "tasks": [
                    (index, task.vp, task.domain, task.mode, task.repeats)
                    for index, task in items
                ],
                "id_bases": {
                    index: _task_id_base(config.seed, task)
                    for index, task in items
                },
                "breakers": shard_breakers,
            }
            bundle.update(executor.bundle_overrides(shard_id, len(items)))
            bundles.append(bundle)
        collected: List[TaskOutcome] = []
        try:
            executor.run_bundles(
                bundles,
                lambda payload: collected.extend(
                    self._absorb_process_shard(plan, payload)
                ),
                shared,
            )
        finally:
            _SHARED_WORLDS.pop(world_key, None)
        return collected

    def _absorb_process_shard(
        self, plan: CrawlPlan, payload: Dict
    ) -> List[TaskOutcome]:
        """Deserialise one worker's shard payload into the merge path."""
        pid = payload["pid"]
        with self._lock:
            stats = self._process_stats.setdefault(pid, [0, 0, 0.0])
            stats[0] += 1
            stats[1] += len(payload["outcomes"])
            stats[2] += payload["elapsed"]
        for note in payload["retries"]:
            self._emit_retry(
                note["index"],
                plan.tasks[note["index"]],
                note["attempt"],
                note["error"],
            )
        outcomes = [
            TaskOutcome(
                index=entry["index"],
                task=plan.tasks[entry["index"]],
                # The worker shipped the canonical serialized line;
                # wrap it opaque — spool and checkpoint writes splice
                # these bytes straight through, and a decode happens
                # only if a consumer inspects the record's fields.
                record=(
                    RawRecord(entry["record"])
                    if entry["record"] is not None else None
                ),
                error=entry["error"],
                attempts=entry["attempts"],
            )
            for entry in payload["outcomes"]
        ]
        # Adopt the worker-final breaker states *before* the shard
        # flush, so the checkpoint's breaker line reflects them.
        for domain, snapshot in payload.get("breakers", {}).items():
            breaker = self._breakers.get(domain)
            if breaker is not None:
                breaker.adopt(snapshot)
        for event in payload.get("breaker_events", []):
            self._emit(
                f"breaker-{event['transition']}",
                f"engine://breaker/{event['domain']}",
                {"domain": event["domain"]},
            )
        for outcome in outcomes:
            if outcome.error is not None:
                self._emit(
                    "task-degraded",
                    f"engine://task/{outcome.index}",
                    {
                        "index": outcome.index,
                        "domain": outcome.task.domain,
                        "error": outcome.error,
                        "attempts": outcome.attempts,
                    },
                )
        kept = self._finish_shard(
            payload["shard"], outcomes, payload["elapsed"], pid=pid
        )
        for outcome in outcomes:
            self._advance(outcome.task)
        return kept

    def _emit_process_throughput(self) -> None:
        for pid, (shards, tasks, elapsed) in sorted(
            self._process_stats.items()
        ):
            self._emit("process-throughput", f"engine://process/{pid}", {
                "pid": pid,
                "shards": shards,
                "tasks": tasks,
                "elapsed": elapsed,
                "tasks_per_sec": tasks / elapsed if elapsed > 0 else 0.0,
            })

    # ------------------------------------------------------------------
    # Spool-backed merge
    # ------------------------------------------------------------------
    def _part_path(self, shard_id: int) -> Path:
        return Path(f"{self.spool_path}.shard{shard_id:04d}.part")

    def _cleanup_parts(self) -> None:
        spool = Path(self.spool_path)
        for stale in spool.parent.glob(f"{spool.name}.shard*.part"):
            stale.unlink(missing_ok=True)
        Path(f"{self.spool_path}.resume.part").unlink(missing_ok=True)

    def _finalise_spool_merge(
        self,
        plan: CrawlPlan,
        replay: CheckpointReplay,
        failure_outcomes: List[TaskOutcome],
        elapsed: float,
    ) -> EngineResult:
        """The k-way plan-order streaming join over the shard spools.

        The replay records were already streamed to their own sorted
        part file during the checkpoint reconcile; they join here as
        one more input to the merge — the resume path never holds
        them in memory.
        """
        parts = list(self._merge_parts)
        failures = list(failure_outcomes)
        if replay.resume_part is not None:
            parts.append(replay.resume_part)
        failures.extend(replay.failures)
        count = merge_record_spools(parts, self.spool_path)
        for part in parts:
            Path(part).unlink(missing_ok=True)
        failures.sort(key=lambda outcome: outcome.index)
        return EngineResult(
            outcomes=None,
            elapsed=elapsed,
            resumed=replay.count,
            spool_path=Path(self.spool_path),
            total=len(plan),
            spooled_records=count,
            spooled_failures=failures,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_header(self, fingerprint: str, tasks: int) -> str:
        header = {
            "kind": "header",
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "tasks": tasks,
        }
        return json.dumps(header, ensure_ascii=False) + "\n"

    def _reconcile_checkpoint(self, plan: CrawlPlan) -> CheckpointReplay:
        """Streaming resume: reconcile the checkpoint, (re)start the file.

        The checkpoint is rewritten as header + latest-wins outcomes in
        plan order (so it stays canonical — and compact — across
        repeated resumes) in one k-way streaming pass over its sorted
        runs; under the spool merge the replay records flow straight
        into the ``.resume.part`` file during that same pass.  The
        returned :class:`CheckpointReplay` therefore carries the
        completed index set, never the records.
        """
        replay = CheckpointReplay()
        if self.checkpoint_path is None:
            return replay
        fingerprint = self.fingerprint(plan)
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        if self.resume and self.checkpoint_path.exists():
            replay = self._streaming_reconcile(plan, fingerprint)
        else:
            with self.checkpoint_path.open("w", encoding="utf-8") as handle:
                handle.write(self._checkpoint_header(fingerprint, len(plan)))
        return replay

    def _streaming_reconcile(
        self, plan: CrawlPlan, fingerprint: str
    ) -> CheckpointReplay:
        path = self.checkpoint_path

        def on_header(header: Dict) -> None:
            found = header.get("fingerprint")
            if found != fingerprint:
                raise CheckpointMismatch(
                    f"{path}: fingerprint {found} does "
                    f"not match this plan/world/config ({fingerprint}); "
                    "refusing to resume — rerun without resume to start "
                    "over"
                )

        def validate(line_number: int, payload: Dict) -> None:
            index = payload["index"]
            if not 0 <= index < len(plan.tasks):
                raise CheckpointMismatch(
                    f"{path}:{line_number}: outcome index "
                    f"{index} outside the plan"
                )
            record_payload = payload.get("record")
            if record_payload is not None:
                # Structural refusal (unknown type, missing body) keeps
                # the corrupt-checkpoint error path without ever
                # deserialising a record.
                validate_record_payload(record_payload)

        try:
            scan = _scan_checkpoint(
                path, validate=validate, on_header=on_header
            )
        except CheckpointMismatch:
            raise
        except (ValueError, KeyError, TypeError) as error:
            # Mid-file corruption, a malformed outcome line, a bogus
            # record payload — all land on the same refusal path the
            # CLI already handles, instead of a raw traceback.
            raise CheckpointMismatch(
                f"{path}: corrupt checkpoint ({error}); "
                "refusing to resume — rerun without resume to start over"
            ) from error
        replay = CheckpointReplay(
            completed=scan.indices, breakers=dict(scan.breakers)
        )
        spooled = self.merge == "spool" and self.spool_path is not None
        resume_part = (
            Path(f"{self.spool_path}.resume.part") if spooled else None
        )
        part_handle = None
        tmp = path.with_name(path.name + ".reconcile")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(self._checkpoint_header(fingerprint, len(plan)))
                if scan.breakers:
                    # Consolidate the per-flush breaker lines into one
                    # (latest-wins already applied by the scan).
                    handle.write(_breaker_line(scan.breakers))
                for index, payload, line in _merge_checkpoint_runs(
                    path, scan
                ):
                    handle.write(line + "\n")
                    record_payload = payload.get("record")
                    error = payload.get("error")
                    if spooled:
                        if error is not None:
                            replay.failures.append(TaskOutcome(
                                index=index,
                                task=plan.tasks[index],
                                record=None,
                                error=error,
                                attempts=payload.get("attempts", 1),
                            ))
                        if record_payload is not None:
                            # The replay records never enter memory:
                            # the original serialized lines stream to
                            # the sorted part file the k-way join
                            # consumes.
                            if part_handle is None:
                                part_handle = resume_part.open(
                                    "w", encoding="utf-8"
                                )
                            part_handle.write(line + "\n")
                    else:
                        replay.outcomes.append(TaskOutcome(
                            index=index,
                            task=plan.tasks[index],
                            record=(
                                RawRecord.from_payload(record_payload)
                                if record_payload is not None else None
                            ),
                            error=error,
                            attempts=payload.get("attempts", 1),
                        ))
        finally:
            if part_handle is not None:
                part_handle.close()
        tmp.replace(path)
        if part_handle is not None:
            replay.resume_part = resume_part
        return replay

    def _breaker_snapshot_for(
        self, outcomes: List[TaskOutcome]
    ) -> Dict[str, Dict]:
        """Current breaker snapshots for the domains in *outcomes*."""
        snapshots: Dict[str, Dict] = {}
        for outcome in outcomes:
            domain = outcome.task.domain
            breaker = self._breakers.get(domain)
            if breaker is not None and domain not in snapshots:
                snapshots[domain] = breaker.snapshot()
        return snapshots

    @staticmethod
    def _outcome_line(outcome: TaskOutcome) -> str:
        head = {
            "kind": "outcome",
            "index": outcome.index,
            "attempts": outcome.attempts,
            "error": outcome.error,
        }
        if outcome.record is None:
            head["record"] = None
            return json.dumps(head, ensure_ascii=False) + "\n"
        # Splice the record's canonical serialized bytes into the
        # outcome envelope instead of re-dumping a nested payload —
        # byte-identical to the single json.dumps (same key order and
        # separators), and for a RawRecord entirely decode-free.
        raw = encode_record_line(outcome.record)
        return (
            json.dumps(head, ensure_ascii=False)[:-1]
            + ', "record": ' + raw + "}\n"
        )

    def _checkpoint_outcomes(self, outcomes: List[TaskOutcome]) -> None:
        """Append one finished shard's outcomes (caller holds the lock).

        When breakers are enabled the flush also appends a snapshot of
        this shard's breaker states; the scan applies them latest-wins,
        so a resume restores each domain's quarantine where it stood at
        the last completed flush.
        """
        with self.checkpoint_path.open("a", encoding="utf-8") as handle:
            for outcome in outcomes:
                handle.write(self._outcome_line(outcome))
            snapshots = self._breaker_snapshot_for(outcomes)
            if snapshots:
                handle.write(_breaker_line(snapshots))
            handle.flush()

    @staticmethod
    def compact_checkpoint(path: Union[str, Path]) -> CheckpointCompaction:
        """Rewrite an append-only checkpoint, keeping only the latest
        outcome per task.

        Long crash/resume cycles grow the checkpoint: a shard that
        died after checkpointing half its tasks re-runs them on
        resume, so later lines supersede earlier ones for the same
        plan index.  Compaction keeps the **last** outcome per index
        (the append order is the authority), preserves the
        :func:`plan_fingerprint` header verbatim, sorts outcomes into
        plan order, and replaces the file atomically — a compacted
        checkpoint resumes exactly like the original.  A torn trailing
        line (crashed writer) is dropped, as on any checkpoint read.

        Raises :class:`CheckpointMismatch` when *path* is not a crawl
        checkpoint (no header / mid-file corruption).

        Shares the streaming run-merge machinery with the resume
        reconcile: a boundary scan plus a k-way join over the sorted
        runs, so compaction memory is one buffered line per run (plus
        the index set), never the outcome payloads.
        """
        path = Path(path)
        try:
            scan = _scan_checkpoint(path)
        except CheckpointMismatch:
            raise
        except ValueError as error:
            raise CheckpointMismatch(
                f"{path}: corrupt checkpoint ({error}); refusing to compact"
            ) from error
        tmp = path.with_name(path.name + ".compact")
        kept = 0
        with tmp.open("w", encoding="utf-8") as handle:
            # The header survives verbatim (same fingerprint, still
            # resumable).
            handle.write(scan.header_line + "\n")
            if scan.breakers:
                handle.write(_breaker_line(scan.breakers))
            for _, _, line in _merge_checkpoint_runs(path, scan):
                handle.write(line + "\n")
                kept += 1
        tmp.replace(path)
        return CheckpointCompaction(
            path=path,
            kept=kept,
            dropped=scan.outcome_lines - kept,
            fingerprint=str(scan.header.get("fingerprint")),
        )

    # ------------------------------------------------------------------
    def _run_shard(
        self,
        plan: CrawlPlan,
        shard_id: int,
        items: List[Tuple[int, CrawlTask]],
    ) -> List[TaskOutcome]:
        started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for index, task in items:
            breaker = self._breakers.get(task.domain)
            if breaker is not None and not breaker.allow():
                # Quarantined domain: skip the task deterministically,
                # recording a degraded outcome so no plan index is lost.
                outcome = TaskOutcome(
                    index,
                    task,
                    record=degraded_record(task, "BreakerOpenError"),
                    error="BreakerOpenError",
                    attempts=0,
                )
                self._emit_degraded(outcome)
                self._advance(task)
                outcomes.append(outcome)
                continue
            outcome = self._run_one(plan, index, task)
            if breaker is not None:
                transition = breaker.record(outcome.error is None)
                if transition is not None:
                    self._emit(
                        f"breaker-{transition}",
                        f"engine://breaker/{task.domain}",
                        {"domain": task.domain},
                    )
            if outcome.error is not None:
                self._emit_degraded(outcome)
            outcomes.append(outcome)
        return self._finish_shard(
            shard_id, outcomes, time.perf_counter() - started
        )

    def _emit_degraded(self, outcome: TaskOutcome) -> None:
        self._emit("task-degraded", f"engine://task/{outcome.index}", {
            "index": outcome.index,
            "domain": outcome.task.domain,
            "error": outcome.error,
            "attempts": outcome.attempts,
        })

    def _finish_shard(
        self,
        shard_id: int,
        outcomes: List[TaskOutcome],
        elapsed: float,
        *,
        pid: Optional[int] = None,
    ) -> List[TaskOutcome]:
        """Persist one finished shard and hand back what the merge keeps.

        In the in-memory merge the full outcome list is returned; in
        the spool merge the records are streamed to this shard's part
        file first and only the (small) permanent failures are kept in
        memory.
        """
        has_sink = (
            self.merge == "spool"
            or self._spool_partial is not None
            or self.checkpoint_path is not None
        )
        if outcomes and has_sink:
            part: Optional[Path] = None
            if self.merge == "spool":
                # Each shard owns its part file, so the write needs no
                # lock; plan order within the shard makes it index-
                # sorted, which the k-way join requires.
                part = self._part_path(shard_id)
                with part.open("w", encoding="utf-8") as handle:
                    for outcome in outcomes:
                        if outcome.record is not None:
                            handle.write(self._outcome_line(outcome))
            with self._lock:
                if part is not None:
                    self._merge_parts.append(part)
                if self._spool_partial is not None:
                    save_records(
                        [o.record for o in outcomes if o.record is not None],
                        self._spool_partial, append=True,
                    )
                if self.checkpoint_path is not None:
                    self._checkpoint_outcomes(outcomes)
        detail = {
            "shard": shard_id,
            "tasks": len(outcomes),
            "elapsed": elapsed,
        }
        if pid is not None:
            detail["pid"] = pid
        self._emit("shard", f"engine://shard/{shard_id}", detail)
        if self.merge == "spool":
            return [o for o in outcomes if o.error is not None]
        return outcomes

    def _run_one(self, plan: CrawlPlan, index: int, task: CrawlTask) -> TaskOutcome:
        per_task = (
            self.per_task_ids or campaign_plan(plan) or chaos_plan(plan)
        )
        # A zero-arg factory: _execute_task rebuilds the stream per
        # attempt so retries replay the same visit ids (chaos faults
        # consumed on attempt 1 stay consumed on attempt 2).
        id_streams = (
            (lambda: self._task_id_stream(task)) if per_task else None
        )
        record, error, attempts = _execute_task(
            self.crawler, task, plan.context, self.retry, id_streams,
            lambda attempt, err: self._emit_retry(index, task, attempt, err),
            clock=self._clock,
        )
        self._advance(task)
        return TaskOutcome(
            index, task, record=record, error=error, attempts=attempts
        )

    def _emit_retry(
        self, index: int, task: CrawlTask, attempt: int, error: str
    ) -> None:
        self._emit("task-retry", f"engine://task/{index}", {
            "vp": task.vp,
            "domain": task.domain,
            "mode": task.mode,
            "attempt": attempt,
            "error": error,
        })

    def _task_id_stream(self, task: CrawlTask) -> Optional[Callable[[], int]]:
        """A private, deterministic visit-id stream for *task*.

        Derived purely from the world seed and the task identity, so
        parallel measurement results never depend on which thread ran
        which task first (see the module docstring).
        """
        world = getattr(self.crawler, "world", None)
        config = getattr(world, "config", None)
        if config is None:
            return None
        return _id_stream(_task_id_base(config.seed, task))

    def _advance(self, task: CrawlTask) -> None:
        with self._lock:
            self._done += 1
            done, total = self._done, self._total
            if done % self.progress_every == 0 or done == total:
                self._emit_locked("progress", "engine://progress", {
                    "done": done, "total": total,
                })
        if self.progress is not None:
            # Hook calls are serialised (so wrapper closures need no
            # locking of their own) but run outside the engine lock;
            # under parallel execution consecutive calls may observe
            # `done` snapshots out of order.
            with self._progress_lock:
                self.progress(done, total, task)

    # ------------------------------------------------------------------
    def _emit(self, kind: str, url: str, detail: Dict[str, object]) -> None:
        if self.event_log is None:
            return
        with self._lock:
            self._emit_locked(kind, url, detail)

    def _emit_locked(self, kind: str, url: str, detail: Dict[str, object]) -> None:
        if self.event_log is not None:
            self.event_log.events.append(Event(kind, 0, url, detail))
