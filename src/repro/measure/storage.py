"""Record persistence: JSON-lines files (the released-data format)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Type, Union

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord

_RECORD_TYPES = {
    "VisitRecord": VisitRecord,
    "CookieMeasurement": CookieMeasurement,
    "UBlockRecord": UBlockRecord,
}


def save_records(records: Iterable, path: Union[str, Path]) -> int:
    """Write records as JSON lines; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            payload = {
                "type": type(record).__name__,
                "data": record.to_dict(),
            }
            handle.write(json.dumps(payload, ensure_ascii=False) + "\n")
            count += 1
    return count


def load_records(path: Union[str, Path]) -> List:
    """Read records back; the inverse of :func:`save_records`."""
    path = Path(path)
    out: List = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            type_name = payload.get("type")
            record_cls = _RECORD_TYPES.get(type_name)
            if record_cls is None:
                raise ValueError(
                    f"{path}:{line_number}: unknown record type {type_name!r}"
                )
            out.append(record_cls.from_dict(payload["data"]))
    return out
