"""Record persistence: JSON-lines files (the released-data format).

Large crawls stream: :func:`save_records` can append shard output as it
arrives (``append=True``) and :func:`iter_records` yields records one
line at a time, so neither side ever materialises the full list.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord

_RECORD_TYPES = {
    "VisitRecord": VisitRecord,
    "CookieMeasurement": CookieMeasurement,
    "UBlockRecord": UBlockRecord,
}


def save_records(
    records: Iterable, path: Union[str, Path], *, append: bool = False
) -> int:
    """Write records as JSON lines; returns the number written.

    With ``append=True`` the records are appended to an existing file
    (creating it when missing) — the streaming mode the crawl engine
    uses to spill each shard's output as it finishes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a" if append else "w", encoding="utf-8") as handle:
        for record in records:
            payload = {
                "type": type(record).__name__,
                "data": record.to_dict(),
            }
            handle.write(json.dumps(payload, ensure_ascii=False) + "\n")
            count += 1
    return count


def iter_records(path: Union[str, Path]) -> Iterator:
    """Yield records from *path* one at a time (streaming reader)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            type_name = payload.get("type")
            record_cls = _RECORD_TYPES.get(type_name)
            if record_cls is None:
                raise ValueError(
                    f"{path}:{line_number}: unknown record type {type_name!r}"
                )
            yield record_cls.from_dict(payload["data"])


def load_records(path: Union[str, Path]) -> List:
    """Read records back; the inverse of :func:`save_records`."""
    return list(iter_records(path))
