"""Record persistence: JSON-lines files (the released-data format).

Large crawls stream: :func:`save_records` can append shard output as it
arrives (``append=True``) and :func:`iter_records` yields records one
line at a time, so neither side ever materialises the full list.

Crash tolerance: a writer that dies mid-append leaves a *torn* final
line (truncated JSON with no trailing record after it).  The readers
here skip exactly that case with a :class:`TornRecordWarning` instead
of raising — the crawl engine's resume path depends on it — while
invalid JSON *followed by more records* is still hard corruption and
raises.

Zero-copy pass-through: a record that only travels (worker → parent →
spool, or checkpoint → resume spool) never needs its typed object.
:class:`RawRecord` wraps the canonical serialized line instead; it
writes itself back byte-identically through :func:`save_records` and
decodes lazily — only when a consumer actually inspects a field.
:func:`record_decode_count` counts real :func:`decode_record` calls in
this process, so tests can assert a transport path stayed zero-copy.
"""

from __future__ import annotations

import heapq
import json
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord

_RECORD_TYPES = {
    "VisitRecord": VisitRecord,
    "CookieMeasurement": CookieMeasurement,
    "UBlockRecord": UBlockRecord,
}


class TornRecordWarning(UserWarning):
    """A truncated trailing JSONL line (crashed writer) was skipped."""


#: Real record deserialisations performed in this process — the
#: observable half of the zero-copy contract (see
#: :func:`record_decode_count`).
_DECODE_CALLS = 0


def encode_record(record) -> Dict[str, object]:
    """The JSONL payload for one record (``{"type", "data"}``)."""
    return {"type": type(record).__name__, "data": record.to_dict()}


def decode_record(payload: Dict[str, object]):
    """Rebuild a record from its :func:`encode_record` payload."""
    global _DECODE_CALLS
    _DECODE_CALLS += 1
    type_name = payload.get("type")
    record_cls = _RECORD_TYPES.get(type_name)
    if record_cls is None:
        raise ValueError(f"unknown record type {type_name!r}")
    return record_cls.from_dict(payload["data"])


def record_decode_count() -> int:
    """How many :func:`decode_record` calls this process has made.

    Pass-through paths (worker outcome absorption, spool writes,
    checkpoint reconciliation) must not move this counter; tests pin
    the zero-copy contract by snapshotting it around a transport leg.
    """
    return _DECODE_CALLS


#: Torn trailing lines skipped by :func:`iter_jsonl` in this process.
#: The chaos suite snapshots it around a merge/resume to assert a torn
#: spool or checkpoint was *tolerated* (not silently absent).
_TORN_LINES = 0


def torn_line_count() -> int:
    """How many torn trailing JSONL lines this process has skipped."""
    return _TORN_LINES


def note_torn_line(path, bad_line: int, error: Exception) -> None:
    """Count and warn about one skipped torn trailing line.

    The single funnel every torn-tolerant reader (spool, checkpoint
    scan) reports through, so :func:`torn_line_count` observes all of
    them.
    """
    global _TORN_LINES
    _TORN_LINES += 1
    warnings.warn(
        f"{path}:{bad_line}: skipping torn trailing line "
        f"(crashed writer? {error})",
        TornRecordWarning,
        stacklevel=3,
    )


def validate_record_payload(payload) -> None:
    """Structurally check an :func:`encode_record` payload *without*
    building the record.

    Raises :class:`ValueError` on an unknown type or a missing data
    body — the same refusal a :func:`decode_record` would produce —
    while leaving the (lazy, zero-copy) deserialisation for whoever
    eventually inspects the record's fields.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"record payload is not an object: {payload!r}")
    type_name = payload.get("type")
    if type_name not in _RECORD_TYPES:
        raise ValueError(f"unknown record type {type_name!r}")
    if not isinstance(payload.get("data"), dict):
        raise ValueError(f"record payload of type {type_name!r} has no data")


def encode_record_line(record) -> str:
    """The canonical serialized JSONL line for *record* (no newline).

    This is the exact string :func:`save_records` writes; producing it
    once at the source lets the record travel as opaque bytes
    (:class:`RawRecord`) through every later hop.
    """
    if isinstance(record, RawRecord):
        return record.raw
    return json.dumps(encode_record(record), ensure_ascii=False)


class RawRecord:
    """A record still in its canonical serialized form (zero-copy).

    Wraps the exact JSONL line :func:`save_records` would write, so
    transport paths (process-worker absorption, checkpoint lines,
    spool writes) move bytes instead of decode/encode round-trips.
    The typed record is built lazily — :meth:`materialize` on first
    field access — and cached; until then no :func:`decode_record`
    happens.  Attribute reads and equality forward to the
    materialised record, so a ``RawRecord`` substitutes for its record
    anywhere fields are merely *inspected*.
    """

    __slots__ = ("raw", "_record")

    def __init__(self, raw: str) -> None:
        self.raw = raw
        self._record = None

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RawRecord":
        """Wrap an already-parsed :func:`encode_record` payload.

        Re-dumping a canonically produced payload is byte-identical to
        the original line, so the wrapper stays write-through exact.
        """
        return cls(json.dumps(payload, ensure_ascii=False))

    @classmethod
    def from_record(cls, record) -> "RawRecord":
        """Serialize a typed record once, up front."""
        return cls(encode_record_line(record))

    def materialize(self):
        """The typed record (decoded on first call, then cached)."""
        if self._record is None:
            self._record = decode_record(json.loads(self.raw))
        return self._record

    def __getattr__(self, name):
        # Field inspection is the moment the zero-copy contract allows
        # a decode; everything before this is pure pass-through.
        return getattr(self.materialize(), name)

    def __eq__(self, other) -> bool:
        if isinstance(other, RawRecord):
            return self.materialize() == other.materialize()
        return self.materialize() == other

    def __repr__(self) -> str:
        status = "decoded" if self._record is not None else "raw"
        return f"RawRecord({status}, {len(self.raw)} bytes)"


def materialize_record(record):
    """*record* as its typed object (:class:`RawRecord`-transparent)."""
    if isinstance(record, RawRecord):
        return record.materialize()
    return record


def save_records(
    records: Iterable, path: Union[str, Path], *, append: bool = False
) -> int:
    """Write records as JSON lines; returns the number written.

    With ``append=True`` the records are appended to an existing file
    (creating it when missing) — the streaming mode the crawl engine
    uses to spill each shard's output as it finishes.  A
    :class:`RawRecord` is written straight from its serialized bytes
    (no decode), byte-identically to writing the typed record.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a" if append else "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(encode_record_line(record) + "\n")
            count += 1
    return count


def iter_jsonl(path: Union[str, Path]) -> Iterator[Tuple[int, Dict]]:
    """Yield ``(line_number, payload)`` pairs from a JSONL file.

    Tolerates exactly one torn *final* line: when the last non-empty
    line is not valid JSON (a writer crashed mid-append), it is skipped
    with a :class:`TornRecordWarning`.  Invalid JSON anywhere else is
    corruption and raises :class:`ValueError`.
    """
    path = Path(path)
    #: A decode failure is held back one line: only if another record
    #: follows is it real corruption rather than a torn final write.
    pending: "Tuple[int, json.JSONDecodeError] | None" = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                bad_line, error = pending
                raise ValueError(
                    f"{path}:{bad_line}: invalid JSON mid-file ({error})"
                )
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                pending = (line_number, error)
                continue
            yield line_number, payload
    if pending is not None:
        bad_line, error = pending
        note_torn_line(path, bad_line, error)


def iter_records(path: Union[str, Path]) -> Iterator:
    """Yield records from *path* one at a time (streaming reader).

    A torn final line — the crash-mid-write case — is skipped with a
    :class:`TornRecordWarning` (see :func:`iter_jsonl`); a structurally
    complete record of an unknown type still raises.
    """
    path = Path(path)
    for line_number, payload in iter_jsonl(path):
        try:
            yield decode_record(payload)
        except ValueError as error:
            raise ValueError(f"{path}:{line_number}: {error}") from None


def load_records(path: Union[str, Path]) -> List:
    """Read records back; the inverse of :func:`save_records`."""
    # reprolint: disable=materialized-records -- this IS the deliberately materialising API the rule bans at call sites
    return list(iter_records(path))


# ---------------------------------------------------------------------------
# Spool-backed merging (the crawl engine's O(shard-buffer) merge)
# ---------------------------------------------------------------------------

def iter_merged_jsonl(
    paths: Sequence[Union[str, Path]], *, key: str = "index"
) -> Iterator[Dict]:
    """K-way merge of JSONL files whose payloads are sorted by *key*.

    Each input file must already be ordered by ``payload[key]`` (the
    crawl engine writes per-shard spools in plan order, which is index
    order within a shard).  The merge is streaming: memory use is one
    buffered payload per input file, never the union — this is what
    lets a merged crawl output stay O(shards) for worlds far beyond
    paper scale.
    """

    def stream(path):
        for _, payload in iter_jsonl(path):
            yield payload

    return heapq.merge(*(stream(p) for p in paths), key=lambda p: p[key])


def merge_record_spools(
    parts: Sequence[Union[str, Path]], path: Union[str, Path]
) -> int:
    """Streaming plan-order join of outcome part files into a final
    record JSONL; returns the number of records written.

    *parts* hold checkpoint-style ``{"kind": "outcome", "index", ...,
    "record"}`` lines sorted by plan index (one file per shard, plus
    the resume replay file).  The output is byte-identical to
    :func:`save_records` over the same records in plan order: the
    embedded payloads were produced by the canonical
    :func:`encode_record` dump, so re-serialising the parsed payload
    reproduces those bytes exactly — no record is ever *decoded* on
    this path (the zero-copy contract), the payload is only
    structurally validated, and one payload per part is held in
    memory.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    # Stream to a sibling and rename on success: a crash mid-join must
    # never truncate a previous complete output — the same invariant
    # the in-memory merge's .partial protocol provides.
    tmp = path.with_name(path.name + ".merging")
    with tmp.open("w", encoding="utf-8") as handle:
        for payload in iter_merged_jsonl(parts):
            record_payload = payload.get("record")
            if record_payload is None:
                continue
            validate_record_payload(record_payload)
            handle.write(
                json.dumps(record_payload, ensure_ascii=False) + "\n"
            )
            count += 1
    tmp.replace(path)
    return count
