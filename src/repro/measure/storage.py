"""Record persistence: JSON-lines files (the released-data format).

Large crawls stream: :func:`save_records` can append shard output as it
arrives (``append=True``) and :func:`iter_records` yields records one
line at a time, so neither side ever materialises the full list.

Crash tolerance: a writer that dies mid-append leaves a *torn* final
line (truncated JSON with no trailing record after it).  The readers
here skip exactly that case with a :class:`TornRecordWarning` instead
of raising — the crawl engine's resume path depends on it — while
invalid JSON *followed by more records* is still hard corruption and
raises.
"""

from __future__ import annotations

import heapq
import json
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord

_RECORD_TYPES = {
    "VisitRecord": VisitRecord,
    "CookieMeasurement": CookieMeasurement,
    "UBlockRecord": UBlockRecord,
}


class TornRecordWarning(UserWarning):
    """A truncated trailing JSONL line (crashed writer) was skipped."""


def encode_record(record) -> Dict[str, object]:
    """The JSONL payload for one record (``{"type", "data"}``)."""
    return {"type": type(record).__name__, "data": record.to_dict()}


def decode_record(payload: Dict[str, object]):
    """Rebuild a record from its :func:`encode_record` payload."""
    type_name = payload.get("type")
    record_cls = _RECORD_TYPES.get(type_name)
    if record_cls is None:
        raise ValueError(f"unknown record type {type_name!r}")
    return record_cls.from_dict(payload["data"])


def save_records(
    records: Iterable, path: Union[str, Path], *, append: bool = False
) -> int:
    """Write records as JSON lines; returns the number written.

    With ``append=True`` the records are appended to an existing file
    (creating it when missing) — the streaming mode the crawl engine
    uses to spill each shard's output as it finishes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a" if append else "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(encode_record(record), ensure_ascii=False) + "\n"
            )
            count += 1
    return count


def iter_jsonl(path: Union[str, Path]) -> Iterator[Tuple[int, Dict]]:
    """Yield ``(line_number, payload)`` pairs from a JSONL file.

    Tolerates exactly one torn *final* line: when the last non-empty
    line is not valid JSON (a writer crashed mid-append), it is skipped
    with a :class:`TornRecordWarning`.  Invalid JSON anywhere else is
    corruption and raises :class:`ValueError`.
    """
    path = Path(path)
    #: A decode failure is held back one line: only if another record
    #: follows is it real corruption rather than a torn final write.
    pending: "Tuple[int, json.JSONDecodeError] | None" = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                bad_line, error = pending
                raise ValueError(
                    f"{path}:{bad_line}: invalid JSON mid-file ({error})"
                )
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                pending = (line_number, error)
                continue
            yield line_number, payload
    if pending is not None:
        bad_line, error = pending
        warnings.warn(
            f"{path}:{bad_line}: skipping torn trailing line "
            f"(crashed writer? {error})",
            TornRecordWarning,
            stacklevel=2,
        )


def iter_records(path: Union[str, Path]) -> Iterator:
    """Yield records from *path* one at a time (streaming reader).

    A torn final line — the crash-mid-write case — is skipped with a
    :class:`TornRecordWarning` (see :func:`iter_jsonl`); a structurally
    complete record of an unknown type still raises.
    """
    path = Path(path)
    for line_number, payload in iter_jsonl(path):
        try:
            yield decode_record(payload)
        except ValueError as error:
            raise ValueError(f"{path}:{line_number}: {error}") from None


def load_records(path: Union[str, Path]) -> List:
    """Read records back; the inverse of :func:`save_records`."""
    return list(iter_records(path))


# ---------------------------------------------------------------------------
# Spool-backed merging (the crawl engine's O(shard-buffer) merge)
# ---------------------------------------------------------------------------

def iter_merged_jsonl(
    paths: Sequence[Union[str, Path]], *, key: str = "index"
) -> Iterator[Dict]:
    """K-way merge of JSONL files whose payloads are sorted by *key*.

    Each input file must already be ordered by ``payload[key]`` (the
    crawl engine writes per-shard spools in plan order, which is index
    order within a shard).  The merge is streaming: memory use is one
    buffered payload per input file, never the union — this is what
    lets a merged crawl output stay O(shards) for worlds far beyond
    paper scale.
    """

    def stream(path):
        for _, payload in iter_jsonl(path):
            yield payload

    return heapq.merge(*(stream(p) for p in paths), key=lambda p: p[key])


def merge_record_spools(
    parts: Sequence[Union[str, Path]], path: Union[str, Path]
) -> int:
    """Streaming plan-order join of outcome part files into a final
    record JSONL; returns the number of records written.

    *parts* hold checkpoint-style ``{"kind": "outcome", "index", ...,
    "record"}`` lines sorted by plan index (one file per shard, plus
    the resume replay file).  The output is byte-identical to
    :func:`save_records` over the same records in plan order — each
    record is decoded and re-encoded through the canonical
    :func:`encode_record` path, exactly like a checkpoint replay —
    but only one payload per part is ever held in memory.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    # Stream to a sibling and rename on success: a crash mid-join must
    # never truncate a previous complete output — the same invariant
    # the in-memory merge's .partial protocol provides.
    tmp = path.with_name(path.name + ".merging")
    with tmp.open("w", encoding="utf-8") as handle:
        for payload in iter_merged_jsonl(parts):
            record_payload = payload.get("record")
            if record_payload is None:
                continue
            record = decode_record(record_payload)
            handle.write(
                json.dumps(encode_record(record), ensure_ascii=False) + "\n"
            )
            count += 1
    tmp.replace(path)
    return count
