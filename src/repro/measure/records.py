"""Measurement record types (serialisable results of crawls)."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass
class VisitRecord:
    """The outcome of one detection visit to one domain from one VP."""

    vp: str
    domain: str
    reachable: bool = True
    error: Optional[str] = None
    banner_found: bool = False
    banner_location: str = "none"
    has_accept: bool = False
    has_reject: bool = False
    is_cookiewall: bool = False
    wall_word_match: bool = False
    currency_matches: List[str] = field(default_factory=list)
    banner_text: str = ""
    detected_language: str = "und"
    flags: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "VisitRecord":
        return cls(**data)


@dataclass
class CookieMeasurement:
    """Averaged cookie counts for one domain (paper §4.3 methodology:
    five repetitions, averaged, split by party and tracking)."""

    vp: str
    domain: str
    mode: str                    # "accept" | "subscription" | "plain"
    repeats: int = 0
    avg_first_party: float = 0.0
    avg_third_party: float = 0.0
    avg_tracking: float = 0.0
    per_visit: List[Dict[str, int]] = field(default_factory=list)
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CookieMeasurement":
        return cls(**data)


@dataclass
class UBlockRecord:
    """Outcome of the §4.5 bypass measurement for one wall site."""

    domain: str
    iterations: int = 0
    wall_seen_count: int = 0
    errors: int = 0               # visits that failed to load at all
    suppressed: bool = False      # wall never displayed (≥1 visit loaded)
    broken: bool = False          # anti-adblock prompt / unscrollable
    broken_reason: str = ""
    error: Optional[str] = None   # engine-level degradation taxonomy

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "UBlockRecord":
        return cls(**data)
