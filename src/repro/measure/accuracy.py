"""Detection accuracy evaluation (paper §3, "Detection Accuracy").

Two checks, mirroring the paper's manual verification:

1. a random audit of N target domains — compare the detector's verdict
   against ground truth (paper: 1000 domains, 6 walls, all correct);
2. a verification of *all* positive detections — walls the generator
   planted count as true positives, bait sites as false positives
   (paper: 285 detected, 280 true, precision 98.2%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.measure.crawl import Crawler
from repro.measure.records import VisitRecord
from repro.webgen.world import World


@dataclass
class AccuracyReport:
    """Precision/recall of the cookiewall detector."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0
    false_positive_domains: List[str] = field(default_factory=list)
    false_negative_domains: List[str] = field(default_factory=list)

    @property
    def detected(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def precision(self) -> float:
        if self.detected == 0:
            return 1.0
        return self.true_positives / self.detected

    @property
    def recall(self) -> float:
        relevant = self.true_positives + self.false_negatives
        if relevant == 0:
            return 1.0
        return self.true_positives / relevant


def _is_true_wall(world: World, vp: str, domain: str) -> bool:
    spec = world.sites.get(domain)
    if spec is None or spec.wall is None:
        return False
    return vp in spec.wall.regions


def evaluate_records(
    world: World, records: Sequence[VisitRecord]
) -> AccuracyReport:
    """Score detection records against the world's ground truth."""
    report = AccuracyReport()
    for record in records:
        truth = _is_true_wall(world, record.vp, record.domain)
        if record.is_cookiewall and truth:
            report.true_positives += 1
        elif record.is_cookiewall and not truth:
            report.false_positives += 1
            report.false_positive_domains.append(record.domain)
        elif truth and not record.is_cookiewall:
            report.false_negatives += 1
            report.false_negative_domains.append(record.domain)
        else:
            report.true_negatives += 1
    return report


def random_audit(
    world: World,
    crawler: Crawler,
    *,
    vp: str = "DE",
    sample_size: int = 1000,
    seed: int = 99,
    domains: Optional[Sequence[str]] = None,
) -> AccuracyReport:
    """The paper's 1000-domain random manual check, automated."""
    pool = list(domains) if domains is not None else list(world.crawl_targets)
    rng = random.Random(seed)
    sample = rng.sample(pool, min(sample_size, len(pool)))
    records = [crawler.visit(vp, domain) for domain in sample]
    return evaluate_records(world, records)


def audit_with_screenshots(
    world: World,
    crawler: Crawler,
    output_dir,
    *,
    vp: str = "DE",
    sample_size: int = 100,
    seed: int = 99,
) -> AccuracyReport:
    """Random audit that also saves text screenshots for inspection.

    The paper's reviewers worked from screenshots (§3); this writes a
    text rendering of every page flagged as a cookiewall into
    *output_dir* so a human can repeat the verification.
    """
    from pathlib import Path

    from repro.browser.screenshot import screenshot

    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    pool = list(world.crawl_targets)
    rng = random.Random(seed)
    sample = rng.sample(pool, min(sample_size, len(pool)))
    records = []
    for domain in sample:
        record = crawler.visit(vp, domain)
        records.append(record)
        if record.is_cookiewall:
            browser = world.browser(vp)
            page = browser.visit(domain)
            path = output_dir / f"{domain.replace('.', '_')}.txt"
            path.write_text(screenshot(page) + "\n", encoding="utf-8")
    return evaluate_records(world, records)
