"""Cookie counting: first-party / third-party / tracking (paper §4.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.blocklists import JustDomainsList
from repro.httpkit import CookieJar


@dataclass(frozen=True)
class CookieCounts:
    """Cookie totals for one visit, split the way the paper splits them."""

    first_party: int
    third_party: int
    tracking: int

    def as_dict(self) -> dict:
        return {
            "first_party": self.first_party,
            "third_party": self.third_party,
            "tracking": self.tracking,
        }


def count_cookies(
    jar: CookieJar,
    page_site: str,
    tracking_list: JustDomainsList,
    *,
    baseline: Optional[CookieJar] = None,
) -> CookieCounts:
    """Count cookies in *jar* relative to the visited *page_site*.

    A cookie is third-party when its registrable domain differs from
    the page's; it is a tracking cookie when its domain matches the
    justdomains list (the paper's §4.3 classification).  When a
    *baseline* jar is given (e.g. the subscription login state), only
    cookies that are new relative to the baseline are counted.
    """
    existing = set()
    if baseline is not None:
        existing = {c.key() for c in baseline.all_cookies()}
    first = third = tracking = 0
    for cookie in jar.all_cookies():
        if cookie.key() in existing:
            continue
        if cookie.site == page_site:
            first += 1
        else:
            third += 1
        if tracking_list.is_tracking_cookie(cookie):
            tracking += 1
    return CookieCounts(first, third, tracking)


def average_counts(counts: Iterable[CookieCounts]) -> tuple:
    """Mean (first, third, tracking) over several visits."""
    items = list(counts)
    if not items:
        return (0.0, 0.0, 0.0)
    n = len(items)
    return (
        sum(c.first_party for c in items) / n,
        sum(c.third_party for c in items) / n,
        sum(c.tracking for c in items) / n,
    )
