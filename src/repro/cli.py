"""Command-line interface: ``repro-cookiewalls``.

Examples
--------
List available experiments::

    repro-cookiewalls list

Run one experiment on a small world and print the artefact::

    repro-cookiewalls run table1 --scale 0.05

Show the generated world's ground-truth statistics::

    repro-cookiewalls stats --scale 0.05
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from repro.webgen import build_world


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="world scale (1.0 = the paper's 45k-site web; default 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="world seed (default 2023)"
    )


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="crawl-engine worker threads (default 1 = serial)",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="crawl-engine shard count (default: 1 serial, 4x workers "
             "parallel; tasks are sharded by a stable domain hash)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run from its checkpoint "
             "(<out>.checkpoint); refuses when the checkpoint fingerprint "
             "does not match the plan/world/config",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cookiewalls",
        description="Reproduce 'Thou Shalt Not Reject' (IMC 2023) "
                    "on a synthetic web.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids (or 'all'); known: {', '.join(sorted(EXPERIMENTS))}",
    )
    _add_world_args(run)
    run.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    sub.add_parser("list", help="list available experiments")

    stats = sub.add_parser("stats", help="print world ground-truth stats")
    _add_world_args(stats)

    crawl = sub.add_parser(
        "crawl", help="run a detection crawl and save JSONL records"
    )
    _add_world_args(crawl)
    _add_engine_args(crawl)
    crawl.add_argument("--vp", action="append", default=None,
                       help="vantage point code (repeatable; default: all)")
    crawl.add_argument("--out", required=True, help="output JSONL path")

    measure = sub.add_parser(
        "measure",
        help="run cookie/uBlock measurements through the crawl engine, "
             "streaming JSONL records shard-by-shard",
    )
    _add_world_args(measure)
    _add_engine_args(measure)
    measure.add_argument("--vp", default="DE",
                         help="vantage point code (default: DE)")
    measure.add_argument(
        "--mode", choices=("accept", "reject", "ublock"), default="accept",
        help="measurement mode (default: accept)",
    )
    measure.add_argument(
        "--repeats", type=_positive_int, default=5,
        help="visits per domain (default 5, the paper's methodology)",
    )
    measure.add_argument(
        "--domain", action="append", default=None,
        help="target domain (repeatable; default: detected wall domains "
             "from a fresh detection crawl)",
    )
    measure.add_argument("--out", required=True, help="output JSONL path")

    longitudinal = sub.add_parser(
        "longitudinal",
        help="re-crawl the same targets against evolved world snapshots "
             "(waves through the crawl engine) and report the drift",
    )
    _add_world_args(longitudinal)
    _add_engine_args(longitudinal)
    longitudinal.add_argument("--vp", default="DE",
                              help="vantage point code (default: DE)")
    longitudinal.add_argument(
        "--month", action="append", type=int, default=None, dest="months",
        help="wave offset in months, repeatable and increasing; 0 is the "
             "baseline snapshot (default: 0 and 4, the paper's May/Sept gap)",
    )
    longitudinal.add_argument(
        "--out-dir", default=None,
        help="spool each wave to <dir>/wave-<MM>.jsonl with a resumable "
             "checkpoint alongside",
    )

    report = sub.add_parser(
        "report", help="summarise saved crawl records (walls per VP)"
    )
    report.add_argument("records", help="JSONL produced by 'crawl'")

    export = sub.add_parser(
        "export-toplists", help="write the country toplists as CrUX-style CSV"
    )
    _add_world_args(export)
    export.add_argument("--dir", required=True, help="output directory")

    verify = sub.add_parser(
        "verify",
        help="run every experiment and compare against the paper's numbers",
    )
    _add_world_args(verify)
    verify.add_argument(
        "--markdown", action="store_true",
        help="emit the EXPERIMENTS.md-style markdown table",
    )

    validate = sub.add_parser(
        "validate", help="check the generated world's structural invariants"
    )
    _add_world_args(validate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "stats":
        world = build_world(scale=args.scale, seed=args.seed)
        for key, value in world.stats().items():
            print(f"{key}: {value}")
        return 0

    if args.command == "crawl":
        from repro.measure import CheckpointMismatch, Crawler, CrawlEngine
        from repro.measure.crawl import CrawlResult

        world = build_world(scale=args.scale, seed=args.seed)
        crawler = Crawler(world)
        plan = crawler.plan_detection_crawl(args.vp)
        # Shard output spools to <out>.partial as the crawl runs (a
        # crash keeps the completed shards without clobbering an older
        # --out file); success writes --out in plan order.  Completed
        # outcomes also checkpoint to <out>.checkpoint so a crashed run
        # restarts from where it died with --resume.
        engine = CrawlEngine(
            crawler, workers=args.workers, shards=args.shards,
            spool_path=args.out,
            checkpoint_path=f"{args.out}.checkpoint",
            resume=args.resume,
        )
        try:
            result = engine.execute(plan)
        except CheckpointMismatch as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        crawl_result = CrawlResult(records=result.records)
        walls = len(crawl_result.cookiewall_domains())
        resumed = (
            f", {result.resumed} replayed from checkpoint"
            if result.resumed else ""
        )
        print(f"wrote {len(crawl_result.records)} records to {args.out} "
              f"({walls} unique cookiewall domains{resumed})")
        return 0

    if args.command == "measure":
        from repro.measure import CheckpointMismatch, Crawler, CrawlEngine

        world = build_world(scale=args.scale, seed=args.seed)
        crawler = Crawler(world)
        domains = args.domain
        if not domains:
            crawl = crawler.crawl_all(
                [args.vp], workers=args.workers, shards=args.shards
            )
            domains = crawl.cookiewall_domains()
        if args.mode == "ublock":
            plan = crawler.plan_ublock(
                args.vp, domains, iterations=args.repeats
            )
        else:
            plan = crawler.plan_cookie_measurements(
                args.vp, domains, mode=args.mode, repeats=args.repeats
            )
        engine = CrawlEngine(
            crawler, workers=args.workers, shards=args.shards,
            spool_path=args.out,
            checkpoint_path=f"{args.out}.checkpoint",
            resume=args.resume,
        )
        try:
            result = engine.execute(plan)
        except CheckpointMismatch as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        resumed = (
            f", {result.resumed} replayed from checkpoint"
            if result.resumed else ""
        )
        print(f"wrote {len(result.records)} {args.mode} records to "
              f"{args.out} ({result.tasks_per_sec:.1f} tasks/s, "
              f"{len(result.failures)} failures{resumed})")
        return 0

    if args.command == "longitudinal":
        from repro.measure import CheckpointMismatch
        from repro.measure.longitudinal import run_longitudinal

        if args.resume and not args.out_dir:
            print("error: --resume requires --out-dir (the checkpoints "
                  "live next to the wave spools)", file=sys.stderr)
            return 2
        months = tuple(args.months) if args.months else (0, 4)
        world = build_world(scale=args.scale, seed=args.seed)
        try:
            campaign = run_longitudinal(
                world, months=months, vp=args.vp,
                workers=args.workers, shards=args.shards,
                out_dir=args.out_dir, resume=args.resume,
            )
        except (CheckpointMismatch, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(campaign.render())
        if args.out_dir:
            print(f"\nwave records spooled under {args.out_dir}")
        return 0

    if args.command == "report":
        from collections import Counter

        from repro.measure import load_records
        from repro.measure.records import VisitRecord

        records = [
            r for r in load_records(args.records)
            if isinstance(r, VisitRecord)
        ]
        per_vp = Counter(r.vp for r in records if r.is_cookiewall)
        banners = Counter(r.vp for r in records if r.banner_found)
        print(f"records: {len(records)}")
        for vp in sorted({r.vp for r in records}):
            print(f"  {vp}: {banners.get(vp, 0)} banners, "
                  f"{per_vp.get(vp, 0)} cookiewalls")
        unique_walls = len({r.domain for r in records if r.is_cookiewall})
        print(f"unique cookiewall domains: {unique_walls}")
        return 0

    if args.command == "export-toplists":
        from repro.webgen.crux import export_all

        world = build_world(scale=args.scale, seed=args.seed)
        paths = export_all(world.toplists, args.dir)
        for path in paths:
            print(path)
        return 0

    if args.command == "verify":
        from repro.analysis.papercheck import compare_with_paper

        world = build_world(scale=args.scale, seed=args.seed)
        context = ExperimentContext(world)
        results = [
            run_experiment(e, context=context) for e in sorted(EXPERIMENTS)
        ]
        comparison = compare_with_paper(results)
        print(
            comparison.render_markdown()
            if args.markdown
            else comparison.render_text()
        )
        return 0 if comparison.holding == comparison.total else 1

    if args.command == "validate":
        from repro.webgen.validate import validate_world

        world = build_world(scale=args.scale, seed=args.seed)
        report = validate_world(world)
        print(report.render())
        return 0 if report.ok else 1

    # run
    requested = list(args.experiments)
    if requested == ["all"]:
        requested = sorted(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    world = build_world(scale=args.scale, seed=args.seed)
    context = ExperimentContext(world)
    results = [
        run_experiment(experiment_id, context=context)
        for experiment_id in requested
    ]
    if args.json:
        print(json.dumps(
            {r.experiment_id: r.data for r in results},
            indent=2, default=str,
        ))
    else:
        for result in results:
            print("=" * 72)
            print(result.rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
