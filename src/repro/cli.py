"""Command-line interface: ``repro-cookiewalls``.

The engine-backed subcommands (``crawl``, ``measure``,
``longitudinal``, ``multivantage``) are thin adapters over
:mod:`repro.api`: argv is
compiled into a :class:`~repro.api.RunSpec` (optionally seeded from a
``--config`` TOML/JSON file, with explicitly given flags overriding
file values) and executed through a :class:`~repro.api.Session` — the
same code path as the library API, so flag runs, config runs, and
programmatic runs produce byte-identical output.

Examples
--------
List available experiments::

    repro-cookiewalls list

Run one experiment on a small world and print the artefact::

    repro-cookiewalls run table1 --scale 0.05

Describe a campaign in a config file, inspect it, run it::

    repro-cookiewalls spec crawl --config run.toml
    repro-cookiewalls crawl --config run.toml --workers 8

Compact a long-lived crawl checkpoint in place::

    repro-cookiewalls checkpoint compact crawl.jsonl.checkpoint
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from repro.webgen import build_world

#: Subcommands that compile argv into a RunSpec.
_SPEC_COMMANDS = ("crawl", "measure", "longitudinal", "multivantage")


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {count}")
    return count


# ---------------------------------------------------------------------------
# Flag groups.  Spec-backed subcommands use SUPPRESS defaults so the
# compiler can tell an explicitly given flag (which must override the
# config file) from an omitted one (where the file/spec default wins).
# ---------------------------------------------------------------------------

def _add_world_args(parser: argparse.ArgumentParser, *, spec_mode: bool = False) -> None:
    suppress = argparse.SUPPRESS
    parser.add_argument(
        "--scale", type=float, default=suppress if spec_mode else 0.05,
        help="world scale (1.0 = the paper's 45k-site web; default 0.05)",
    )
    parser.add_argument(
        "--seed", type=int, default=suppress if spec_mode else 2023,
        help="world seed (default 2023)",
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=argparse.SUPPRESS,
        help="crawl-engine worker threads (default 1 = serial)",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=argparse.SUPPRESS,
        help="crawl-engine shard count (default: 1 serial, 4x workers "
             "parallel; tasks are sharded by a stable domain hash)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process", "distributed"),
        default=argparse.SUPPRESS,
        help="executor backend (default: serial when --workers 1, thread "
             "otherwise; process sidesteps the GIL for compute-bound "
             "crawls; distributed ships shard bundles to worker "
             "processes over a socket work queue — final JSONL is "
             "byte-identical across backends)",
    )
    parser.add_argument(
        "--merge", choices=("memory", "spool"),
        default=argparse.SUPPRESS,
        help="merge strategy (default memory; spool streams shard output "
             "to per-shard files and k-way-joins them, keeping memory "
             "O(one shard) for very large worlds — requires an output "
             "path)",
    )
    parser.add_argument(
        "--resume", action="store_true", default=argparse.SUPPRESS,
        help="resume an interrupted run from its checkpoint "
             "(<out>.checkpoint); refuses when the checkpoint fingerprint "
             "does not match the plan/world/config",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=argparse.SUPPRESS,
        help="seed for the deterministic fault-injection plane "
             "(chaos.* config sets the rates; recoverable faults leave "
             "the output byte-identical to a fault-free run)",
    )
    parser.add_argument(
        "--deadline", type=float, default=argparse.SUPPRESS,
        help="per-task virtual-seconds budget across attempts and "
             "backoff (resilience.task_deadline; breached tasks degrade "
             "to DeadlineExceeded partial records, no real sleeping)",
    )
    parser.add_argument(
        "--breaker", type=_positive_int, default=argparse.SUPPRESS,
        help="open a per-domain circuit breaker after N consecutive "
             "task failures (resilience.breaker_threshold; quarantined "
             "tasks degrade to BreakerOpenError records, breaker state "
             "survives --resume)",
    )
    parser.add_argument(
        "--config", metavar="FILE", default=argparse.SUPPRESS,
        help="load a run spec from a TOML or JSON config file; flags "
             "given explicitly override the file's values",
    )


def _add_crawl_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vp", action="append", default=argparse.SUPPRESS,
        help="vantage point code (repeatable; default: all)",
    )
    parser.add_argument(
        "--out", default=argparse.SUPPRESS,
        help="output JSONL path (required unless the config supplies "
             "output.path)",
    )


def _add_measure_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vp", default=argparse.SUPPRESS,
        help="vantage point code (default: DE)",
    )
    parser.add_argument(
        "--mode", choices=("accept", "reject", "ublock"),
        default=argparse.SUPPRESS,
        help="measurement mode (default: accept)",
    )
    parser.add_argument(
        "--repeats", type=_positive_int, default=argparse.SUPPRESS,
        help="visits per domain (default 5, the paper's methodology)",
    )
    parser.add_argument(
        "--domain", action="append", default=argparse.SUPPRESS,
        help="target domain (repeatable; default: detected wall domains "
             "from a fresh detection crawl)",
    )
    parser.add_argument(
        "--out", default=argparse.SUPPRESS,
        help="output JSONL path (required unless the config supplies "
             "output.path)",
    )


def _add_longitudinal_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vp", default=argparse.SUPPRESS,
        help="vantage point code (default: DE)",
    )
    parser.add_argument(
        "--month", action="append", type=int, default=argparse.SUPPRESS,
        dest="months",
        help="wave offset in months, repeatable and increasing; 0 is the "
             "baseline snapshot (default: 0 and 4, the paper's May/Sept gap)",
    )
    parser.add_argument(
        "--out-dir", default=argparse.SUPPRESS,
        help="spool each wave to <dir>/wave-<MM>.jsonl with a resumable "
             "checkpoint alongside",
    )


def _add_multivantage_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--vps", action="append", default=argparse.SUPPRESS,
        help="vantage point code (repeatable, case-insensitive; "
             "default: all eight)",
    )
    parser.add_argument(
        "--month", action="append", type=int, default=argparse.SUPPRESS,
        dest="months",
        help="wave offset in months, repeatable and increasing; 0 is the "
             "baseline snapshot (default: just 0, a single wave)",
    )
    parser.add_argument(
        "--domain", action="append", default=argparse.SUPPRESS,
        help="target domain (repeatable; default: the world's reachable "
             "union)",
    )
    parser.add_argument(
        "--regime", choices=("baseline", "eu", "non-eu", "geo-blocked"),
        default=argparse.SUPPRESS,
        help="regulation regime: baseline browses from home; eu routes "
             "every VP through a German exit; non-eu routes the EU VPs "
             "through a US exit; geo-blocked has wall sites refuse "
             "GDPR-region visitors",
    )
    parser.add_argument(
        "--relocate", action="append", default=argparse.SUPPRESS,
        metavar="VP=EXIT",
        help="VPN-like relocation: traffic of VP exits at EXIT "
             "(repeatable; applied on top of the regime)",
    )
    parser.add_argument(
        "--relocate-month", type=int, default=argparse.SUPPRESS,
        help="first wave (month offset) the relocations apply from "
             "(default 0: all waves; later values change subsequent "
             "waves only)",
    )
    parser.add_argument(
        "--out-dir", default=argparse.SUPPRESS,
        help="spool each wave to <dir>/wave-<MM>.jsonl with a resumable "
             "checkpoint alongside",
    )


_WORKLOAD_ARGS = {
    "crawl": _add_crawl_args,
    "measure": _add_measure_args,
    "longitudinal": _add_longitudinal_args,
    "multivantage": _add_multivantage_args,
}


def _add_spec_surface(parser: argparse.ArgumentParser, kind: str) -> None:
    """The full flag surface of one spec-backed subcommand."""
    _add_world_args(parser, spec_mode=True)
    _add_engine_args(parser)
    _WORKLOAD_ARGS[kind](parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cookiewalls",
        description="Reproduce 'Thou Shalt Not Reject' (IMC 2023) "
                    "on a synthetic web.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments", nargs="+",
        help=f"experiment ids (or 'all'); known: {', '.join(sorted(EXPERIMENTS))}",
    )
    _add_world_args(run)
    run.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    sub.add_parser("list", help="list available experiments")

    stats = sub.add_parser("stats", help="print world ground-truth stats")
    _add_world_args(stats)

    crawl = sub.add_parser(
        "crawl", help="run a detection crawl and save JSONL records"
    )
    _add_spec_surface(crawl, "crawl")

    measure = sub.add_parser(
        "measure",
        help="run cookie/uBlock measurements through the crawl engine, "
             "streaming JSONL records shard-by-shard",
    )
    _add_spec_surface(measure, "measure")

    longitudinal = sub.add_parser(
        "longitudinal",
        help="re-crawl the same targets against evolved world snapshots "
             "(waves through the crawl engine) and report the drift",
    )
    _add_spec_surface(longitudinal, "longitudinal")

    multivantage = sub.add_parser(
        "multivantage",
        help="one campaign, N vantage points: crawl the VP x domain x "
             "wave cross-product under a regulation regime and report "
             "the geo-discrepancies",
    )
    _add_spec_surface(multivantage, "multivantage")

    spec = sub.add_parser(
        "spec",
        help="resolve a run spec (config file + flags) and print it "
             "without running anything",
    )
    spec_sub = spec.add_subparsers(dest="spec_kind", required=True)
    for kind in _SPEC_COMMANDS:
        kind_parser = spec_sub.add_parser(
            kind, help=f"resolve and print a '{kind}' run spec"
        )
        _add_spec_surface(kind_parser, kind)

    serve = sub.add_parser(
        "serve",
        help="run the campaign service: a long-lived HTTP server that "
             "accepts versioned RunSpec JSON (submit/status/stream/"
             "cancel) with per-tenant quotas and priority scheduling",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default localhost)"
    )
    serve.add_argument(
        "--port", type=int, default=8423,
        help="bind port (default 8423; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--data-dir", required=True,
        help="root for job state and campaign outputs (jobs/ and "
             "campaigns/<id>/ live here; campaigns resume from the "
             "checkpoints they left behind)",
    )
    serve.add_argument(
        "--quota", type=_positive_int, default=4,
        help="max queued+running campaigns per tenant (submits beyond "
             "it get HTTP 429; default 4)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="requeue persisted unfinished jobs on startup; their "
             "campaigns restore from their checkpoint fingerprints",
    )

    worker = sub.add_parser(
        "worker", help="distributed-crawl worker processes"
    )
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    worker_serve = worker_sub.add_parser(
        "serve",
        help="dial a distributed-run coordinator and run shard bundles "
             "from its work queue until it closes the connection",
    )
    worker_serve.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator's work-queue address (printed by a "
             "distributed-executor run, or set via the engine spec)",
    )
    worker_serve.add_argument(
        "--id", dest="worker_id", default=None,
        help="worker name reported in the hello (default: host-pid)",
    )
    worker_serve.add_argument(
        "--heartbeat", type=float, default=1.0,
        help="heartbeat interval in seconds while a shard runs "
             "(default 1.0)",
    )

    submit = sub.add_parser(
        "submit",
        help="compile a run spec from flags/--config (exactly like the "
             "run subcommands) and submit it to a campaign service",
    )
    submit_sub = submit.add_subparsers(dest="submit_kind", required=True)
    for kind in _SPEC_COMMANDS:
        kind_parser = submit_sub.add_parser(
            kind, help=f"submit a '{kind}' campaign"
        )
        _add_spec_surface(kind_parser, kind)
        kind_parser.add_argument(
            "--url", required=True,
            help="service base URL, e.g. http://127.0.0.1:8423",
        )
        kind_parser.add_argument(
            "--tenant", default="default",
            help="tenant the campaign counts against (quota unit)",
        )
        kind_parser.add_argument(
            "--priority", type=int, default=0,
            help="scheduling priority (higher runs first; default 0)",
        )
        kind_parser.add_argument(
            "--wait", action="store_true",
            help="poll until the campaign leaves the queue and print "
                 "its final state",
        )

    checkpoint = sub.add_parser(
        "checkpoint", help="crawl-checkpoint file maintenance"
    )
    checkpoint_sub = checkpoint.add_subparsers(
        dest="checkpoint_command", required=True
    )
    compact = checkpoint_sub.add_parser(
        "compact",
        help="rewrite an append-only checkpoint keeping only the latest "
             "outcome per task (header and resumability preserved)",
    )
    compact.add_argument("path", help="checkpoint file (<out>.checkpoint)")

    report = sub.add_parser(
        "report", help="summarise saved crawl records (walls per VP, or "
                       "the multi-vantage geo-discrepancy report)"
    )
    report.add_argument(
        "records", nargs="+",
        help="JSONL file(s) produced by 'crawl' or 'multivantage', or a "
             "campaign --out-dir (expanded to its wave-<MM>.jsonl "
             "spools; the names carry their wave offset)",
    )
    report.add_argument(
        "--product", choices=("walls", "discrepancy", "failures"),
        default="walls",
        help="walls: banner/cookiewall counts per VP (default); "
             "discrepancy: the streaming per-domain geo-discrepancy "
             "report across VPs and waves; failures: the degraded-record "
             "taxonomy (error class x vantage point, "
             "transient/permanent)",
    )

    export = sub.add_parser(
        "export-toplists", help="write the country toplists as CrUX-style CSV"
    )
    _add_world_args(export)
    export.add_argument("--dir", required=True, help="output directory")

    verify = sub.add_parser(
        "verify",
        help="run every experiment and compare against the paper's numbers",
    )
    _add_world_args(verify)
    verify.add_argument(
        "--markdown", action="store_true",
        help="emit the EXPERIMENTS.md-style markdown table",
    )

    validate = sub.add_parser(
        "validate", help="check the generated world's structural invariants"
    )
    _add_world_args(validate)

    return parser


# ---------------------------------------------------------------------------
# argv -> RunSpec
# ---------------------------------------------------------------------------

def _compile_spec(kind: str, args: argparse.Namespace):
    """Compile parsed argv into a validated RunSpec.

    Precedence: spec defaults < ``--config`` file values < explicitly
    given flags.  SUPPRESS defaults make "explicitly given" knowable —
    an absent attribute means the flag was omitted.
    """
    from repro.api import RunSpec, SpecError

    config = getattr(args, "config", None)
    base = RunSpec.load(config, kind=kind) if config else RunSpec(kind=kind)
    given = lambda name: hasattr(args, name)  # noqa: E731
    overrides = {
        "world": {}, "engine": {}, "resilience": {}, "chaos": {},
        kind: {}, "output": {},
    }
    if given("scale"):
        overrides["world"]["scale"] = args.scale
    if given("seed"):
        overrides["world"]["seed"] = args.seed
    if given("workers"):
        overrides["engine"]["workers"] = args.workers
    if given("shards"):
        overrides["engine"]["shards"] = args.shards
    if given("executor"):
        overrides["engine"]["executor"] = args.executor
    if given("merge"):
        overrides["engine"]["merge"] = args.merge
    if given("resume"):
        overrides["engine"]["resume"] = True
    if given("chaos_seed"):
        overrides["chaos"]["seed"] = args.chaos_seed
    if given("deadline"):
        overrides["resilience"]["task_deadline"] = args.deadline
    if given("breaker"):
        overrides["resilience"]["breaker_threshold"] = args.breaker
    if kind == "crawl":
        if given("vp"):
            overrides["crawl"]["vps"] = tuple(args.vp)
        if given("out"):
            overrides["output"]["path"] = args.out
    elif kind == "measure":
        if given("vp"):
            overrides["measure"]["vp"] = args.vp
        if given("mode"):
            overrides["measure"]["mode"] = args.mode
        if given("repeats"):
            overrides["measure"]["repeats"] = args.repeats
        if given("domain"):
            overrides["measure"]["domains"] = tuple(args.domain)
        if given("out"):
            overrides["output"]["path"] = args.out
    elif kind == "longitudinal":
        if given("vp"):
            overrides["longitudinal"]["vp"] = args.vp
        if given("months"):
            overrides["longitudinal"]["months"] = tuple(args.months)
        if given("out_dir"):
            overrides["output"]["out_dir"] = args.out_dir
    else:
        if given("vps"):
            overrides["multivantage"]["vps"] = tuple(args.vps)
        if given("months"):
            overrides["multivantage"]["months"] = tuple(args.months)
        if given("domain"):
            overrides["multivantage"]["domains"] = tuple(args.domain)
        if given("regime"):
            overrides["multivantage"]["regime"] = args.regime
        if given("relocate"):
            relocations = {}
            for pair in args.relocate:
                home, separator, exit_code = pair.partition("=")
                if not separator or not home or not exit_code:
                    raise SpecError(
                        f"--relocate takes VP=EXIT pairs, got {pair!r}"
                    )
                relocations[home] = exit_code
            overrides["multivantage"]["relocate"] = relocations
        if given("relocate_month"):
            overrides["multivantage"]["relocate_month"] = args.relocate_month
        if given("out_dir"):
            overrides["output"]["out_dir"] = args.out_dir
    return base.override(overrides)


def _run_spec_command(kind: str, args: argparse.Namespace) -> int:
    """Compile and execute one spec-backed subcommand via a Session."""
    from repro.api import Session, SpecError
    from repro.measure import CheckpointMismatch

    try:
        spec = _compile_spec(kind, args)
    except SpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if kind in ("crawl", "measure") and not spec.output.path:
        print(
            "error: an output path is required (--out, or output.path "
            "in --config)", file=sys.stderr,
        )
        return 2
    try:
        result = Session(spec).run()
    except CheckpointMismatch as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    resumed = (
        f", {result.resumed} replayed from checkpoint"
        if result.resumed else ""
    )
    if kind == "crawl":
        # Streamed, not materialised: a spool-merged crawl of a huge
        # world must stay O(1) in the summary pass too.
        walls = len({
            r.domain for r in result.iter_records()
            if getattr(r, "is_cookiewall", False)
        })
        print(f"wrote {result.record_count} records to {spec.output.path} "
              f"({walls} unique cookiewall domains{resumed})")
    elif kind == "measure":
        print(f"wrote {result.record_count} {spec.measure.mode} records to "
              f"{spec.output.path} ({result.tasks_per_sec:.1f} tasks/s, "
              f"{len(result.failures)} failures{resumed})")
    else:
        print(result.campaign.render())
        if spec.output.out_dir:
            print(f"\nwave records spooled under {spec.output.out_dir}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS):
            print(experiment_id)
        return 0

    if args.command == "stats":
        world = build_world(scale=args.scale, seed=args.seed)
        for key, value in world.stats().items():
            print(f"{key}: {value}")
        return 0

    if args.command in _SPEC_COMMANDS:
        return _run_spec_command(args.command, args)

    if args.command == "spec":
        from repro.api import SpecError

        try:
            spec = _compile_spec(args.spec_kind, args)
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.command == "serve":
        from repro.service import CampaignService

        service = CampaignService(
            args.data_dir, host=args.host, port=args.port, quota=args.quota
        )
        return service.serve_forever(resume=args.resume)

    if args.command == "worker":
        from repro.distributed import serve_worker

        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(
                f"error: --connect takes HOST:PORT, got {args.connect!r}",
                file=sys.stderr,
            )
            return 2
        served = serve_worker(
            host, int(port),
            worker_id=args.worker_id,
            heartbeat_interval=args.heartbeat,
        )
        print(f"served {served} shard(s)")
        return 0

    if args.command == "submit":
        from repro.api import SpecError
        from repro.service import ServiceClient, ServiceError

        try:
            spec = _compile_spec(args.submit_kind, args)
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        client = ServiceClient(args.url)
        try:
            job = client.submit(
                spec, tenant=args.tenant, priority=args.priority
            )
            print(f"{job['id']}: {job['state']}")
            if args.wait:
                job = client.wait(job["id"])
                print(f"{job['id']}: {job['state']}"
                      + (f" ({job['error']})" if job.get("error") else ""))
                return 0 if job["state"] == "done" else 1
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    if args.command == "checkpoint":
        from repro.measure import CheckpointMismatch, CrawlEngine

        try:
            compaction = CrawlEngine.compact_checkpoint(args.path)
        except (CheckpointMismatch, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(compaction.render())
        return 0

    if args.command == "report":
        import re
        from collections import Counter
        from pathlib import Path

        from repro.measure.storage import iter_records

        # A campaign --out-dir may be passed directly; expand it to its
        # wave spools (sorted, so wave offsets parse in order).
        record_paths: List[str] = []
        for entry in args.records:
            if Path(entry).is_dir():
                spools = sorted(Path(entry).glob("wave-*.jsonl"))
                if not spools:
                    print(f"no wave-*.jsonl spools under {entry}",
                          file=sys.stderr)
                    return 2
                record_paths.extend(str(spool) for spool in spools)
            else:
                record_paths.append(entry)

        if args.product == "failures":
            from repro.analysis import StreamingFailureTaxonomy

            taxonomy = StreamingFailureTaxonomy()
            for position, path in enumerate(record_paths):
                # Same wave attribution as the discrepancy product, so
                # campaign spools stay distinguishable in the table.
                match = re.search(r"wave-(\d+)", Path(path).name)
                wave = int(match.group(1)) if match else None
                for record in iter_records(path):
                    taxonomy.add(record, wave=wave)
            print(taxonomy.render())
            return 0

        if args.product == "discrepancy":
            from repro.analysis import StreamingDiscrepancyReport

            report = StreamingDiscrepancyReport()
            for position, path in enumerate(record_paths):
                # wave-<MM>.jsonl spools carry their wave offset in the
                # name; anything else is attributed by argument order.
                match = re.search(r"wave-(\d+)", Path(path).name)
                wave = int(match.group(1)) if match else position
                report.consume(iter_records(path), wave=wave)
            print(report.render())
            return 0

        count = 0
        vps = set()
        per_vp = Counter()
        banners = Counter()
        wall_domains = set()
        for path in record_paths:
            for record in iter_records(path):
                if getattr(record, "is_cookiewall", None) is None:
                    continue
                count += 1
                vps.add(record.vp)
                if record.is_cookiewall:
                    per_vp[record.vp] += 1
                    wall_domains.add(record.domain)
                if record.banner_found:
                    banners[record.vp] += 1
        print(f"records: {count}")
        for vp in sorted(vps):
            print(f"  {vp}: {banners.get(vp, 0)} banners, "
                  f"{per_vp.get(vp, 0)} cookiewalls")
        print(f"unique cookiewall domains: {len(wall_domains)}")
        return 0

    if args.command == "export-toplists":
        from repro.webgen.crux import export_all

        world = build_world(scale=args.scale, seed=args.seed)
        paths = export_all(world.toplists, args.dir)
        for path in paths:
            print(path)
        return 0

    if args.command == "verify":
        from repro.analysis.papercheck import compare_with_paper

        world = build_world(scale=args.scale, seed=args.seed)
        context = ExperimentContext(world)
        results = [
            run_experiment(e, context=context) for e in sorted(EXPERIMENTS)
        ]
        comparison = compare_with_paper(results)
        print(
            comparison.render_markdown()
            if args.markdown
            else comparison.render_text()
        )
        return 0 if comparison.holding == comparison.total else 1

    if args.command == "validate":
        from repro.webgen.validate import validate_world

        world = build_world(scale=args.scale, seed=args.seed)
        report = validate_world(world)
        print(report.render())
        return 0 if report.ok else 1

    # run
    requested = list(args.experiments)
    if requested == ["all"]:
        requested = sorted(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    world = build_world(scale=args.scale, seed=args.seed)
    context = ExperimentContext(world)
    results = [
        run_experiment(experiment_id, context=context)
        for experiment_id in requested
    ]
    if args.json:
        print(json.dumps(
            {r.experiment_id: r.data for r in results},
            indent=2, default=str,
        ))
    else:
        for result in results:
            print("=" * 72)
            print(result.rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
