"""Virtual time for the resilience layer.

Latency, latency spikes, retry backoff, and deadlines are all modelled
on a *virtual* clock: simulated seconds advance a counter instead of
sleeping, so timeout/backoff behaviour is deterministic and a test
exercising a 30-second slow-loris spike still finishes in
milliseconds.  Two pieces cooperate:

* :class:`VirtualClock` — a world-wide monotonic counter owned by the
  :class:`~repro.netsim.network.Network`.  Thread workers advance it
  concurrently; the total is a sum of per-request costs, so the final
  reading is deterministic even though interleavings are not.
* :class:`TaskMeter` — per-task cost accounting, installed around one
  task's retry loop.  Tasks run serially within their shard worker, so
  the active meter lives in a ``threading.local`` and never races.
  The meter enforces the *per-attempt* deadline at request granularity
  (a request that busts the budget raises
  :class:`~repro.errors.TimeoutError`); the engine's retry loop reads
  the accumulated cost to enforce the *per-task* deadline.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import TimeoutError

_ACTIVE = threading.local()


class VirtualClock:
    """A monotonic counter of simulated seconds (no real sleeping)."""

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Advance virtual time by *seconds* (ignores non-positive)."""
        if seconds <= 0.0:
            return
        with self._lock:
            self._now += seconds

    # ``sleep`` is the drop-in replacement for ``time.sleep`` in
    # simulated code paths: it costs virtual time only.
    sleep = advance


class TaskMeter:
    """Accrues one task's virtual-time cost across its retry attempts."""

    __slots__ = ("cost", "attempt_deadline", "_attempt_start")

    def __init__(self, attempt_deadline: Optional[float] = None) -> None:
        #: Total virtual seconds spent on this task so far.
        self.cost = 0.0
        self.attempt_deadline = attempt_deadline
        self._attempt_start = 0.0

    def begin_attempt(self) -> None:
        """Reset the per-attempt budget (called once per retry attempt)."""
        self._attempt_start = self.cost

    @property
    def attempt_cost(self) -> float:
        """Virtual seconds spent in the current attempt."""
        return self.cost - self._attempt_start

    def charge(self, seconds: float) -> None:
        if seconds > 0.0:
            self.cost += seconds


def current_meter() -> Optional[TaskMeter]:
    """The meter of the task running on this thread, if any."""
    return getattr(_ACTIVE, "meter", None)


class active_meter:
    """Context manager installing *meter* as this thread's task meter."""

    __slots__ = ("_meter", "_previous")

    def __init__(self, meter: TaskMeter) -> None:
        self._meter = meter
        self._previous: Optional[TaskMeter] = None

    def __enter__(self) -> TaskMeter:
        self._previous = current_meter()
        _ACTIVE.meter = self._meter
        return self._meter

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE.meter = self._previous


def spend(clock: Optional[VirtualClock], seconds: float) -> None:
    """Charge one request leg's virtual cost and enforce its deadline.

    Advances *clock*, charges the active :class:`TaskMeter` (if a task
    is running), and raises :class:`~repro.errors.TimeoutError` once
    the attempt's accumulated cost exceeds its deadline — the moment a
    real HTTP client would give up on a hung connection.
    """
    if clock is not None:
        clock.advance(seconds)
    meter = current_meter()
    if meter is None:
        return
    meter.charge(seconds)
    deadline = meter.attempt_deadline
    if deadline is not None and meter.attempt_cost > deadline:
        raise TimeoutError(
            f"attempt exceeded its {deadline:g}s virtual deadline"
        )
