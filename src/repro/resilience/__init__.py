"""Layered resilience: virtual time, chaos injection, breakers, degradation.

This package is the robustness plane the crawl engine runs under:

* :mod:`repro.resilience.clock` — virtual time (latency, backoff and
  deadlines cost simulated seconds, never real sleeps).
* :mod:`repro.resilience.chaos` — the seeded deterministic fault
  injector (:class:`ChaosSpec`/:class:`ChaosEngine`).
* :mod:`repro.resilience.breaker` — per-domain circuit breakers whose
  state checkpoints and restores across ``--resume``.
* :mod:`repro.resilience.degrade` — deterministic partial records for
  tasks that cannot be recovered.

The load-bearing invariant is the differential oracle: a chaos seed
whose faults are all recoverable yields records byte-identical to the
fault-free run; unrecoverable seeds yield deterministic degraded
output across backends, worker counts, and kill/resume.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import (
    FAULT_KINDS,
    ChaosEngine,
    ChaosSpec,
    tear_trailing_line,
)
from repro.resilience.clock import (
    TaskMeter,
    VirtualClock,
    active_meter,
    current_meter,
    spend,
)

__all__ = [
    "ChaosEngine",
    "ChaosSpec",
    "CircuitBreaker",
    "FAULT_KINDS",
    "TaskMeter",
    "VirtualClock",
    "active_meter",
    "current_meter",
    "degraded_record",
    "spend",
    "tear_trailing_line",
]


def __getattr__(name):
    # ``degraded_record`` builds measurement record types; importing it
    # eagerly would close an import cycle (netsim -> resilience ->
    # measure -> browser -> netsim), so it resolves lazily (PEP 562).
    if name == "degraded_record":
        from repro.resilience.degrade import degraded_record
        return degraded_record
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
