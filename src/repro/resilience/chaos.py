"""The deterministic chaos plane.

A :class:`ChaosSpec` describes a fault regime — per-kind injection
rates plus a seed — and rides in ``CrawlPlan.context`` so the plan
fingerprint covers it and process workers inherit it verbatim.  A
:class:`ChaosEngine` compiled from the spec hooks into
:meth:`Network.fetch <repro.netsim.network.Network.fetch>` and decides,
for every request, whether to inject a fault.

Every decision is a pure function of ``derive_seed(seed, kind, site,
visit_id)`` — no wall clock, no :mod:`random` module state — so a
chaos run is exactly reproducible.  Two fault classes exist:

* **Recoverable** faults fire *once* per ``(kind, site, visit_id)``
  key and are then consumed: the retry layer re-runs the attempt, the
  fault does not recur, and the task's records come out byte-identical
  to a fault-free run (the differential oracle).
* **Permanent** faults (the same key also rolls under
  ``permanent_rate``) fire on every attempt, exhausting the retry
  budget and producing a deterministic degraded record.

Consumed-fault keys are task-private (visit ids are derived per task
under the engine's per-task id regime), so concurrent shard workers
never race for the same fault and determinism holds across backends,
worker counts, and kill/resume.
"""

from __future__ import annotations

import os
import threading
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Set, Tuple

from repro.errors import (
    DisconnectError,
    DNSFlapError,
    TimeoutError,
    TruncatedResponseError,
)
from repro.rng import derive_seed
from repro.urlkit import registrable_domain

#: Denominator for rate rolls: rates are compared in millionths.
_ROLL_SCALE = 1_000_000

#: Fault kinds rolled per request, in injection order (first match
#: wins).  ``slow`` is handled separately as a latency spike.
FAULT_KINDS: Tuple[str, ...] = ("dns", "disconnect", "timeout", "truncate")

_FAULT_ERRORS = {
    "dns": DNSFlapError,
    "disconnect": DisconnectError,
    "timeout": TimeoutError,
    "truncate": TruncatedResponseError,
}

_FAULT_MESSAGES = {
    "dns": "chaos: resolver flapped for {host}",
    "disconnect": "chaos: connection to {host} dropped mid-transfer",
    "timeout": "chaos: request to {host} hung until the client gave up",
    "truncate": "chaos: response from {host} arrived truncated",
}


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded fault regime (all rates are probabilities in [0, 1])."""

    #: Root seed for every fault decision; ``None`` disables chaos.
    seed: Optional[int] = None
    #: Per-request fault rates by kind.
    timeout_rate: float = 0.0
    dns_rate: float = 0.0
    disconnect_rate: float = 0.0
    truncate_rate: float = 0.0
    #: Slow-loris latency spikes: rate plus the spike size in virtual
    #: seconds (only fatal when an attempt deadline is set).
    slow_rate: float = 0.0
    slow_latency: float = 5.0
    #: Probability that a rolled fault is *permanent* (recurs on every
    #: attempt) rather than flaky-then-recovered.
    permanent_rate: float = 0.0
    #: Restrict injection to these registrable domains (None = all).
    domains: Optional[Tuple[str, ...]] = None

    def validate(self) -> None:
        for field in fields(self):
            if field.name.endswith("_rate"):
                rate = getattr(self, field.name)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"chaos {field.name} must be in [0, 1], "
                        f"got {rate!r}"
                    )
        if self.slow_latency < 0.0:
            raise ValueError("chaos slow_latency must be >= 0")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError("chaos seed must be an integer or None")

    @property
    def enabled(self) -> bool:
        """True when the spec can inject anything at all."""
        if self.seed is None:
            return False
        return any(
            getattr(self, field.name) > 0.0
            for field in fields(self)
            if field.name.endswith("_rate") and field.name != "permanent_rate"
        )

    def to_context(self) -> Dict[str, object]:
        """Serialize for ``CrawlPlan.context`` (plain JSON-safe dict)."""
        data = asdict(self)
        if self.domains is not None:
            data["domains"] = list(self.domains)
        return data

    @classmethod
    def from_context(cls, data: Dict[str, object]) -> "ChaosSpec":
        known = {field.name for field in fields(cls)}
        kwargs = {name: value for name, value in data.items() if name in known}
        if kwargs.get("domains") is not None:
            kwargs["domains"] = tuple(kwargs["domains"])
        return cls(**kwargs)


class ChaosEngine:
    """Compiled fault injector for one engine run.

    The consumed-fault set is fresh per run: a resumed run replays
    checkpointed outcomes and re-crawls only unfinished tasks, whose
    faults then fire (and recover) exactly as they would have in the
    uninterrupted run.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        spec.validate()
        self.spec = spec
        #: Zero-rate specs short-circuit per request (idle-overhead
        #: ceiling: an installed-but-quiet chaos plane must cost ~0).
        self.idle = not spec.enabled
        self._domains = set(spec.domains) if spec.domains else None
        self._consumed: Set[Tuple[str, str, int]] = set()
        self._lock = threading.Lock()
        #: Faults injected so far, by kind (stats for tests/reports).
        self.injected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Deterministic rolls
    # ------------------------------------------------------------------
    def _roll(self, kind: str, rate: float, site: str, visit_id: int) -> bool:
        if rate <= 0.0:
            return False
        roll = derive_seed(self.spec.seed, kind, site, visit_id) % _ROLL_SCALE
        return roll < int(rate * _ROLL_SCALE)

    def _targets(self, site: str) -> bool:
        return self._domains is None or site in self._domains

    def _fires(self, kind: str, rate: float, site: str, visit_id: int) -> bool:
        """Roll *kind*; consume recoverable faults after the first hit."""
        if not self._roll(kind, rate, site, visit_id):
            return False
        if self._roll("permanent", self.spec.permanent_rate, site, visit_id):
            self._count(kind)
            return True
        key = (kind, site, visit_id)
        with self._lock:
            if key in self._consumed:
                return False
            self._consumed.add(key)
        self._count(kind)
        return True

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Injection hooks (called by Network.fetch)
    # ------------------------------------------------------------------
    def latency_spike(self, host: str, visit_id: int) -> float:
        """Extra virtual latency for this request (slow-loris spikes)."""
        if self.idle:
            return 0.0
        site = registrable_domain(host) or host.lower()
        if not self._targets(site):
            return 0.0
        if self._fires("slow", self.spec.slow_rate, site, visit_id):
            return self.spec.slow_latency
        return 0.0

    def inject(self, host: str, visit_id: int) -> None:
        """Raise the fault (if any) rolled for this request."""
        if self.idle:
            return
        site = registrable_domain(host) or host.lower()
        if not self._targets(site):
            return
        rates = {
            "dns": self.spec.dns_rate,
            "disconnect": self.spec.disconnect_rate,
            "timeout": self.spec.timeout_rate,
            "truncate": self.spec.truncate_rate,
        }
        for kind in FAULT_KINDS:
            if self._fires(kind, rates[kind], site, visit_id):
                message = _FAULT_MESSAGES[kind].format(host=host)
                raise _FAULT_ERRORS[kind](message)


# ---------------------------------------------------------------------------
# Storage-layer chaos
# ---------------------------------------------------------------------------

def tear_trailing_line(path, seed: int) -> int:
    """Simulate a torn write: truncate *path* mid-way into its last line.

    Deterministically (via ``derive_seed``) picks how many bytes of the
    final line survive — at least one, and at least one byte is cut —
    modelling a crash between ``write`` and ``flush``.  Returns the
    number of bytes cut.  Used by chaos tests to exercise the
    ``TornRecordWarning`` tolerance of checkpoint and spool readers.
    """
    blob = path.read_bytes()
    body = blob[:-1] if blob.endswith(b"\n") else blob
    start = body.rfind(b"\n") + 1
    last = body[start:]
    if len(last) < 2:
        raise ValueError(f"{path} has no tearable trailing line")
    keep = 1 + derive_seed(seed, "tear", len(blob)) % (len(last) - 1)
    torn = body[: start + keep]
    tmp = path.with_suffix(path.suffix + ".tear")
    tmp.write_bytes(torn)
    os.replace(tmp, path)
    return len(blob) - len(torn)
