"""Per-domain circuit breakers for the crawl engine.

A breaker counts *consecutive* failed tasks for one registrable
domain.  Once the count reaches the policy threshold the breaker
opens: the next ``quarantine`` tasks for that domain are
short-circuited into deterministic ``BreakerOpenError`` degraded
records without touching the network.  The task after the quarantine
runs as a half-open probe — success closes the breaker, failure
re-opens it for another quarantine.

Determinism: the engine shards tasks by domain (CRC-32), so every
task of a domain runs serially, in plan order, inside one shard
worker.  Counting tasks (not wall time) therefore gives the same
open/close trace for every backend and worker count — and because the
breaker's counters are plain integers, the state snapshots into a
checkpoint line and restores across ``--resume`` without loss.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Breaker states (stringly-typed so snapshots stay JSON-native).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Count-based breaker for one domain (owned by one shard worker)."""

    __slots__ = ("domain", "threshold", "quarantine", "state",
                 "consecutive", "skipped")

    def __init__(
        self,
        domain: str,
        threshold: int,
        quarantine: int,
        snapshot: Optional[Dict[str, object]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if quarantine < 1:
            raise ValueError("breaker quarantine must be >= 1")
        self.domain = domain
        self.threshold = threshold
        self.quarantine = quarantine
        self.state = CLOSED
        #: Consecutive failed tasks (successes reset it).
        self.consecutive = 0
        #: Tasks short-circuited since the breaker last opened.
        self.skipped = 0
        if snapshot:
            self.adopt(snapshot)

    # ------------------------------------------------------------------
    # The two engine-facing operations
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the next task for this domain may run.

        Returns False while the breaker is open and quarantining; the
        call that exhausts the quarantine flips to half-open and lets
        the probe task through.
        """
        if self.state != OPEN:
            return True
        if self.skipped >= self.quarantine:
            self.state = HALF_OPEN
            return True
        self.skipped += 1
        return False

    def record(self, ok: bool) -> Optional[str]:
        """Account one executed task; return a transition event or None.

        ``"open"`` when the breaker (re-)opens, ``"close"`` when a
        half-open probe succeeds.
        """
        if ok:
            transition = "close" if self.state != CLOSED else None
            self.state = CLOSED
            self.consecutive = 0
            self.skipped = 0
            return transition
        self.consecutive += 1
        if self.state == HALF_OPEN or self.consecutive >= self.threshold:
            self.state = OPEN
            self.skipped = 0
            return "open"
        return None

    # ------------------------------------------------------------------
    # Checkpoint snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-native state for a ``{"kind": "breaker"}`` line."""
        return {
            "state": self.state,
            "consecutive": self.consecutive,
            "skipped": self.skipped,
        }

    def adopt(self, snapshot: Dict[str, object]) -> None:
        """Restore state from a checkpointed :meth:`snapshot`."""
        state = snapshot.get("state", CLOSED)
        if state not in (CLOSED, OPEN, HALF_OPEN):
            raise ValueError(f"unknown breaker state {state!r}")
        self.state = state
        self.consecutive = int(snapshot.get("consecutive", 0))
        self.skipped = int(snapshot.get("skipped", 0))
