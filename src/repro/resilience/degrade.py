"""Graceful degradation: deterministic partial records for dead tasks.

When a task exhausts its retry budget (or a circuit breaker
short-circuits it), the engine must not silently drop it: the merged
output would drift from the plan size and downstream per-domain
analysis would mistake "failed" for "absent".  Instead the engine
emits a *degraded* record — the mode-appropriate record type with the
structured error name from :mod:`repro.errors` — so record counts
always match the plan and failure modes stay countable per VP, mode,
and wave.

Degraded records are pure functions of ``(task, error)``: no
timestamps, no attempt-local state — the same fault regime yields the
same bytes on every backend and across kill/resume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.measure.engine import CrawlTask

#: Cookie-measurement modes (share one record shape).
_COOKIE_MODES = ("accept", "reject", "subscription")


def degraded_record(task: "CrawlTask", error: str):
    """Build the deterministic partial record for a failed *task*."""
    if task.mode == "detect":
        record = VisitRecord(
            vp=task.vp, domain=task.domain, reachable=False, error=error,
        )
        record.flags["degraded"] = True
        return record
    if task.mode in _COOKIE_MODES:
        return CookieMeasurement(
            vp=task.vp, domain=task.domain, mode=task.mode,
            repeats=0, error=error,
        )
    if task.mode == "ublock":
        return UBlockRecord(domain=task.domain, error=error)
    raise ValueError(f"cannot degrade unknown task mode {task.mode!r}")
