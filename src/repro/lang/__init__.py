"""Language identification (the paper uses CLD3; we train our own).

A character-trigram Naive Bayes classifier over embedded seed corpora
for the languages relevant to the measurement: the vantage-point
languages (German, Swedish, English, Portuguese, Zulu) and the site
languages observed among cookiewalls (German, English, Italian,
French, Spanish, Dutch, Danish).
"""

from repro.lang.corpus import CORPORA, LANGUAGES, sample_sentences
from repro.lang.detector import LanguageDetector, LanguageResult, detect_language

__all__ = [
    "LANGUAGES",
    "CORPORA",
    "sample_sentences",
    "LanguageDetector",
    "LanguageResult",
    "detect_language",
]
