"""Seed corpora for language identification and site text generation.

Each corpus is a list of natural sentences.  The synthetic web samples
page copy from these (plus template phrases); the detector trains its
trigram profiles on the same distributions — the same relationship a
production model like CLD3 has to the text of the live web.
"""

from __future__ import annotations

import random
from typing import Dict, List

CORPORA: Dict[str, List[str]] = {
    "de": [
        "Die Bundesregierung hat am Mittwoch neue Maßnahmen beschlossen.",
        "Der Verein sucht noch ehrenamtliche Helfer für das Sommerfest.",
        "Nach Angaben der Polizei wurden zwei Personen leicht verletzt.",
        "Die Preise für Strom und Gas sind im vergangenen Jahr deutlich gestiegen.",
        "Unsere Redaktion berichtet täglich über Politik, Wirtschaft und Kultur.",
        "Viele Leserinnen und Leser nutzen unser Angebot bereits seit Jahren.",
        "Der Zug fährt wegen Bauarbeiten nur bis zum Hauptbahnhof.",
        "Im Stadtrat wurde lange über den neuen Haushalt diskutiert.",
        "Das Wetter bleibt am Wochenende wechselhaft mit einzelnen Schauern.",
        "Die Mannschaft gewann das Auswärtsspiel mit zwei Toren Vorsprung.",
        "Forscher der Universität stellten ihre Ergebnisse gestern vor.",
        "Mit unserem Newsletter verpassen Sie keine wichtigen Nachrichten mehr.",
        "Bitte beachten Sie unsere Hinweise zum Datenschutz und zur Nutzung.",
        "Der Artikel wurde zuletzt am Dienstag aktualisiert und ergänzt.",
        "Wir verwenden Cookies, um Inhalte und Anzeigen zu personalisieren.",
        "Die Feuerwehr rückte in der Nacht zu einem Einsatz im Stadtzentrum aus.",
    ],
    "en": [
        "The government announced a new package of measures on Wednesday.",
        "Our newsroom covers politics, business, sport and culture every day.",
        "Police said two people suffered minor injuries in the incident.",
        "Energy prices have risen sharply over the past twelve months.",
        "Readers can sign up for our newsletter to receive daily updates.",
        "The team secured an away win with two goals in the second half.",
        "Researchers at the university presented their findings yesterday.",
        "The weather will remain changeable over the weekend with showers.",
        "The council debated the new budget late into the evening.",
        "This article was last updated on Tuesday with additional details.",
        "We use cookies to personalise content and to analyse our traffic.",
        "Subscribe today for unlimited access to all premium articles.",
        "Firefighters responded to a call in the city centre overnight.",
        "The company reported strong quarterly earnings despite headwinds.",
        "Travel disruption is expected because of planned engineering works.",
    ],
    "it": [
        "Il governo ha annunciato mercoledì un nuovo pacchetto di misure.",
        "La nostra redazione racconta ogni giorno politica, economia e cultura.",
        "La polizia ha riferito che due persone sono rimaste lievemente ferite.",
        "I prezzi dell'energia sono aumentati sensibilmente nell'ultimo anno.",
        "I lettori possono iscriversi alla newsletter per ricevere aggiornamenti.",
        "La squadra ha vinto in trasferta con due gol nel secondo tempo.",
        "I ricercatori dell'università hanno presentato ieri i loro risultati.",
        "Il tempo resterà variabile nel fine settimana con qualche pioggia.",
        "Il consiglio comunale ha discusso a lungo il nuovo bilancio.",
        "Questo articolo è stato aggiornato martedì con ulteriori dettagli.",
        "Utilizziamo i cookie per personalizzare contenuti e annunci.",
        "Abbonati oggi per l'accesso illimitato a tutti gli articoli.",
        "I vigili del fuoco sono intervenuti nella notte in centro città.",
    ],
    "sv": [
        "Regeringen presenterade i onsdags ett nytt åtgärdspaket.",
        "Vår redaktion bevakar politik, ekonomi, sport och kultur varje dag.",
        "Polisen uppger att två personer skadades lindrigt i händelsen.",
        "Elpriserna har stigit kraftigt under det senaste året.",
        "Läsare kan anmäla sig till vårt nyhetsbrev för dagliga uppdateringar.",
        "Laget säkrade en bortaseger med två mål i andra halvlek.",
        "Forskare vid universitetet presenterade sina resultat i går.",
        "Vädret förblir ostadigt under helgen med enstaka skurar.",
        "Kommunfullmäktige debatterade den nya budgeten till sent på kvällen.",
        "Artikeln uppdaterades senast i tisdags med nya uppgifter.",
        "Vi använder kakor för att anpassa innehåll och annonser.",
        "Prenumerera i dag för obegränsad tillgång till alla artiklar.",
        "Räddningstjänsten ryckte ut till en insats i centrum under natten.",
    ],
    "fr": [
        "Le gouvernement a annoncé mercredi un nouveau train de mesures.",
        "Notre rédaction couvre chaque jour la politique, l'économie et la culture.",
        "La police indique que deux personnes ont été légèrement blessées.",
        "Les prix de l'énergie ont fortement augmenté au cours de l'année écoulée.",
        "Les lecteurs peuvent s'abonner à notre lettre d'information quotidienne.",
        "L'équipe a décroché une victoire à l'extérieur grâce à deux buts.",
        "Des chercheurs de l'université ont présenté hier leurs résultats.",
        "Le temps restera variable ce week-end avec quelques averses.",
        "Le conseil municipal a longuement débattu du nouveau budget.",
        "Cet article a été mis à jour mardi avec des précisions.",
        "Nous utilisons des cookies pour personnaliser les contenus et les publicités.",
        "Abonnez-vous dès aujourd'hui pour un accès illimité à tous les articles.",
    ],
    "es": [
        "El gobierno anunció el miércoles un nuevo paquete de medidas.",
        "Nuestra redacción cubre cada día la política, la economía y la cultura.",
        "La policía informó de que dos personas resultaron heridas leves.",
        "Los precios de la energía han subido con fuerza en el último año.",
        "Los lectores pueden suscribirse a nuestro boletín de noticias diario.",
        "El equipo logró una victoria a domicilio con dos goles en la segunda parte.",
        "Investigadores de la universidad presentaron ayer sus resultados.",
        "El tiempo seguirá variable durante el fin de semana con algunos chubascos.",
        "El pleno municipal debatió el nuevo presupuesto hasta bien entrada la noche.",
        "Este artículo se actualizó el martes con más detalles.",
        "Utilizamos cookies para personalizar el contenido y los anuncios.",
        "Suscríbete hoy para disfrutar de acceso ilimitado a todos los artículos.",
    ],
    "pt": [
        "O governo anunciou na quarta-feira um novo pacote de medidas.",
        "A nossa redação cobre todos os dias política, economia e cultura.",
        "A polícia informou que duas pessoas ficaram levemente feridas.",
        "Os preços da energia subiram fortemente no último ano.",
        "Os leitores podem assinar a nossa newsletter para receber novidades.",
        "A equipe garantiu uma vitória fora de casa com dois gols no segundo tempo.",
        "Pesquisadores da universidade apresentaram ontem seus resultados.",
        "O tempo continuará instável no fim de semana com algumas pancadas de chuva.",
        "A câmara municipal debateu o novo orçamento até tarde da noite.",
        "Este artigo foi atualizado na terça-feira com mais detalhes.",
        "Usamos cookies para personalizar conteúdo e anúncios.",
        "Assine hoje para ter acesso ilimitado a todos os artigos.",
    ],
    "nl": [
        "De regering kondigde woensdag een nieuw pakket maatregelen aan.",
        "Onze redactie bericht dagelijks over politiek, economie en cultuur.",
        "De politie meldt dat twee personen lichtgewond raakten.",
        "De energieprijzen zijn het afgelopen jaar fors gestegen.",
        "Lezers kunnen zich aanmelden voor onze dagelijkse nieuwsbrief.",
        "Het elftal boekte een uitoverwinning met twee doelpunten na rust.",
        "Onderzoekers van de universiteit presenteerden gisteren hun resultaten.",
        "Het weer blijft in het weekend wisselvallig met enkele buien.",
        "De gemeenteraad debatteerde tot laat over de nieuwe begroting.",
        "Dit artikel werd dinsdag bijgewerkt met extra informatie.",
        "Wij gebruiken cookies om inhoud en advertenties te personaliseren.",
        "Neem vandaag een abonnement voor onbeperkte toegang tot alle artikelen.",
    ],
    "da": [
        "Regeringen præsenterede onsdag en ny pakke af tiltag.",
        "Vores redaktion dækker hver dag politik, økonomi og kultur.",
        "Politiet oplyser, at to personer kom lettere til skade.",
        "Energipriserne er steget kraftigt i løbet af det seneste år.",
        "Læsere kan tilmelde sig vores daglige nyhedsbrev.",
        "Holdet sikrede sig en udebanesejr med to mål efter pausen.",
        "Forskere fra universitetet fremlagde deres resultater i går.",
        "Vejret forbliver ustadigt i weekenden med enkelte byger.",
        "Byrådet debatterede det nye budget til langt ud på aftenen.",
        "Denne artikel blev opdateret tirsdag med flere oplysninger.",
        "Vi bruger cookies til at tilpasse indhold og annoncer.",
        "Tegn et abonnement i dag og få ubegrænset adgang til alle artikler.",
    ],
    "zu": [
        "Uhulumeni umemezele ngoLwesithathu uhlelo olusha lwezinyathelo.",
        "Abezindaba bethu babika nsuku zonke ngezepolitiki nezomnotho.",
        "Amaphoyisa athi abantu ababili balimala kancane esigamekweni.",
        "Amanani kagesi akhuphuke kakhulu onyakeni odlule.",
        "Abafundi bangabhalisela incwadi yethu yezindaba yansuku zonke.",
        "Iqembu linqobe umdlalo wasekhaya ngamagoli amabili.",
        "Abacwaningi basenyuvesi bethule imiphumela yabo izolo.",
        "Isimo sezulu sizohlala singaguquguquki ngempelasonto.",
        "Umkhandlu wedolobha uxoxe isikhathi eside ngesabelomali esisha.",
        "Lesi sihloko sibuyekezwe ngoLwesibili saneziwa eminye imininingwane.",
    ],
}

#: Stable language ordering.
LANGUAGES = tuple(sorted(CORPORA))


def sample_sentences(language: str, count: int, rng: random.Random) -> List[str]:
    """Draw *count* sentences (with replacement) from a language corpus."""
    corpus = CORPORA[language]
    return [rng.choice(corpus) for _ in range(count)]
