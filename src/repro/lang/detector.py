"""Character-trigram Naive Bayes language identification."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lang.corpus import CORPORA

_PAD = "\x02"


def _normalize(text: str) -> str:
    """Lowercase and keep letters/spaces only (collapse the rest)."""
    out = []
    last_space = True
    for ch in text.lower():
        if ch.isalpha():
            out.append(ch)
            last_space = False
        elif not last_space:
            out.append(" ")
            last_space = True
    return "".join(out).strip()


def _trigrams(text: str) -> Iterable[str]:
    for word in text.split():
        padded = f"{_PAD}{word}{_PAD}"
        if len(padded) < 3:
            continue
        for i in range(len(padded) - 2):
            yield padded[i:i + 3]


@dataclass(frozen=True)
class LanguageResult:
    """The detector's verdict for one text."""

    language: str
    confidence: float      # posterior probability of the best language
    is_reliable: bool      # mirrors CLD3's reliability flag

    def __str__(self) -> str:
        return f"{self.language} ({self.confidence:.2f})"


class LanguageDetector:
    """A multinomial Naive Bayes classifier over character trigrams."""

    def __init__(self, corpora: Optional[Dict[str, List[str]]] = None,
                 *, min_confidence: float = 0.5) -> None:
        self.min_confidence = min_confidence
        self._log_probs: Dict[str, Dict[str, float]] = {}
        self._fallback: Dict[str, float] = {}
        self._train(corpora or CORPORA)

    def _train(self, corpora: Dict[str, List[str]]) -> None:
        vocabulary = set()
        counts: Dict[str, Counter] = {}
        for language, sentences in corpora.items():
            counter: Counter = Counter()
            for sentence in sentences:
                counter.update(_trigrams(_normalize(sentence)))
            counts[language] = counter
            vocabulary.update(counter)
        vocab_size = max(len(vocabulary), 1)
        for language, counter in counts.items():
            total = sum(counter.values())
            denominator = total + vocab_size
            self._log_probs[language] = {
                gram: math.log((count + 1) / denominator)
                for gram, count in counter.items()
            }
            self._fallback[language] = math.log(1 / denominator)

    @property
    def languages(self) -> Tuple[str, ...]:
        return tuple(sorted(self._log_probs))

    # ------------------------------------------------------------------
    def scores(self, text: str) -> Dict[str, float]:
        """Log-likelihood per language for *text*."""
        grams = list(_trigrams(_normalize(text)))
        result: Dict[str, float] = {}
        for language, table in self._log_probs.items():
            fallback = self._fallback[language]
            result[language] = sum(table.get(g, fallback) for g in grams)
        return result

    def detect(self, text: str) -> LanguageResult:
        """Classify *text*; unreliable for empty/ambiguous input."""
        grams = list(_trigrams(_normalize(text)))
        if not grams:
            return LanguageResult("und", 0.0, is_reliable=False)
        scores = self.scores(text)
        # Convert log-likelihoods to a posterior via the log-sum-exp trick.
        best_language = max(scores, key=lambda k: scores[k])
        max_score = scores[best_language]
        total = sum(math.exp(s - max_score) for s in scores.values())
        confidence = 1.0 / total
        return LanguageResult(
            language=best_language,
            confidence=confidence,
            is_reliable=confidence >= self.min_confidence,
        )


_DEFAULT: Optional[LanguageDetector] = None


def detect_language(text: str) -> LanguageResult:
    """Detect with a lazily constructed shared default detector."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = LanguageDetector()
    return _DEFAULT.detect(text)
