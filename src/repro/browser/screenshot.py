"""Text "screenshots" of loaded pages.

The paper's accuracy check worked from screenshots ("we manually check
their screenshots", §3) and Appendix B shows wall/banner screenshots.
This module renders a page's visible structure as text art: headings,
paragraphs, and — boxed — any consent dialog, with its buttons.  The
random-audit tooling saves these for human inspection.
"""

from __future__ import annotations

from typing import List, Optional

from repro.browser.page import Page
from repro.dom import Element, Node, Text

_WIDTH = 64
_BUTTON_TAGS = frozenset({"button", "a"})


def _wrap(text: str, width: int) -> List[str]:
    words = text.split()
    lines: List[str] = []
    current: List[str] = []
    length = 0
    for word in words:
        extra = len(word) + (1 if current else 0)
        if length + extra > width and current:
            lines.append(" ".join(current))
            current = [word]
            length = len(word)
        else:
            current.append(word)
            length += extra
    if current:
        lines.append(" ".join(current))
    return lines or [""]


def _boxed(lines: List[str], width: int) -> List[str]:
    out = ["+" + "-" * (width + 2) + "+"]
    for line in lines:
        out.append(f"| {line:<{width}} |")
    out.append("+" + "-" * (width + 2) + "+")
    return out


class _Renderer:
    def __init__(self, width: int = _WIDTH) -> None:
        self.width = width
        self.lines: List[str] = []

    def render_page(self, page: Page) -> str:
        self.lines.append(f"URL: {page.url}")
        self.lines.append(f"TITLE: {page.document.title}")
        self.lines.append("=" * (self.width + 4))
        body = page.document.body
        if body is not None:
            self._walk(body)
        if page.scroll_locked:
            self.lines.append("[page scrolling is locked]")
        return "\n".join(self.lines)

    # ------------------------------------------------------------------
    def _walk(self, node: Node) -> None:
        for child in node.children:
            if isinstance(child, Text):
                continue  # text is emitted by its block container
            if not isinstance(child, Element):
                continue
            self._element(child)

    def _element(self, element: Element) -> None:
        if not element.is_visible():
            return
        tag = element.tag
        if tag in ("script", "style", "link", "meta"):
            return
        if self._is_dialog(element):
            self._dialog(element)
            return
        if tag == "iframe":
            if element.content_document is not None:
                self._frame(element)
            return
        if tag in ("h1", "h2", "h3"):
            text = element.text_content()
            if text:
                self.lines.append(text.upper())
                self.lines.append("-" * min(len(text), self.width))
            return
        if tag == "p":
            text = element.text_content()
            if text:
                self.lines.extend(_wrap(text, self.width))
            return
        if tag in _BUTTON_TAGS:
            label = element.text_content()
            if label:
                self.lines.append(f"  [ {label} ]")
            return
        shadow = element.attached_shadow_root
        if shadow is not None:
            self._walk(shadow)
        self._walk(element)

    def _is_dialog(self, element: Element) -> bool:
        if element.has_attribute("data-banner"):
            return True
        return element.get_attribute("role") == "dialog"

    def _dialog(self, element: Element) -> None:
        inner = _Renderer(self.width - 4)
        if element.tag == "iframe" and element.content_document is not None:
            body = element.content_document.body
            if body is not None:
                inner._walk(body)
        else:
            shadow = element.attached_shadow_root
            if shadow is not None:
                inner._walk(shadow)
            inner._walk(element)
        self.lines.extend(_boxed(inner.lines, self.width - 4))

    def _frame(self, element: Element) -> None:
        body = (
            element.content_document.body
            if element.content_document is not None
            else None
        )
        if body is not None:
            self._walk(body)


def screenshot(page: Page, *, width: int = _WIDTH) -> str:
    """Render *page* as a text screenshot."""
    return _Renderer(width=width).render_page(page)


def screenshot_banner_only(page: Page, *, width: int = _WIDTH) -> Optional[str]:
    """Just the consent dialog's box, or None when no dialog is shown."""
    full = screenshot(page, width=width)
    lines = full.splitlines()
    try:
        start = next(i for i, l in enumerate(lines) if l.startswith("+--"))
    except StopIteration:
        return None
    end = max(i for i, l in enumerate(lines) if l.startswith("+--"))
    return "\n".join(lines[start:end + 1])
