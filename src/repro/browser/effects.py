"""DOM effects: the browser-side model of third-party JavaScript.

Real cookiewalls are usually *injected* by a script loaded from a CMP /
SMP domain; blocking that script (as uBlock does) prevents the wall
from ever appearing.  We model script behaviour as a JSON list of
declarative effects that the browser applies to the page.  Supported
operations:

``append-html``      parse an HTML fragment and append it to a target
                     element (may contain declarative shadow DOM and
                     ``srcdoc`` iframes — i.e. entire cookiewalls).
``set-page-cookie``  set a first-party cookie in the page's context
                     (what CMP scripts do after consent handshakes).
``load-resources``   request further URLs (ad cascades, pixels).
``if-blocked``       run nested effects only when a previous request
                     matching a pattern was blocked (anti-adblock).
``lock-scroll``      set ``overflow:hidden`` on the body (modal walls).
``remove``           remove elements matching a CSS selector.
``set-flag``         set a diagnostic flag on the page object.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.dom import Element, Node
from repro.dom.selector import query_selector
from repro.errors import ParseError
from repro.soup import parse_fragment

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.page import Page

#: Content type marking a response body as an effect list.
EFFECTS_CONTENT_TYPE = "application/x-dom-effects"


def encode_effects(effects: List[Dict]) -> str:
    """Serialise an effect list for an HTTP response body."""
    return json.dumps(effects, separators=(",", ":"))


def decode_effects(body: str) -> List[Dict]:
    """Parse an effect list, validating the overall shape."""
    try:
        data = json.loads(body) if body.strip() else []
    except json.JSONDecodeError as exc:
        raise ParseError(f"malformed effect payload: {exc}") from exc
    if not isinstance(data, list):
        raise ParseError("effect payload must be a JSON list")
    for item in data:
        if not isinstance(item, dict) or "op" not in item:
            raise ParseError(f"malformed effect entry: {item!r}")
    return data


class EffectRuntime:
    """Applies effect lists to a page; returns newly created nodes."""

    def __init__(self, page: "Page") -> None:
        self.page = page

    def apply(self, effects: List[Dict]) -> List[Node]:
        """Apply *effects* in order; returns nodes added to the DOM."""
        added: List[Node] = []
        for effect in effects:
            added.extend(self._apply_one(effect))
        return added

    # ------------------------------------------------------------------
    def _apply_one(self, effect: Dict) -> List[Node]:
        op = effect.get("op")
        if op == "append-html":
            return self._append_html(
                effect.get("target", "body"), effect.get("html", "")
            )
        if op == "set-page-cookie":
            self._set_page_cookie(effect)
            return []
        if op == "load-resources":
            self._load_resources(effect)
            return []
        if op == "if-blocked":
            if self._any_blocked(effect.get("pattern", "")):
                return self.apply(effect.get("then", []))
            return self.apply(effect.get("else", []))
        if op == "lock-scroll":
            self.page.scroll_locked = True
            body = self.page.document.body
            if body is not None:
                style = body.get_attribute("style") or ""
                body.set_attribute("style", (style + ";overflow:hidden").lstrip(";"))
            return []
        if op == "remove":
            return self._remove(effect.get("target", ""))
        if op == "set-flag":
            self.page.flags[str(effect.get("key"))] = effect.get("value", True)
            return []
        raise ParseError(f"unknown effect op {op!r}")

    # ------------------------------------------------------------------
    def _resolve_target(self, selector: str) -> Optional[Element]:
        if selector in ("", "body"):
            return self.page.document.body
        return query_selector(self.page.document, selector)

    def _append_html(self, target_selector: str, html: str) -> List[Node]:
        target = self._resolve_target(target_selector)
        if target is None:
            return []
        nodes = parse_fragment(html)
        for node in nodes:
            target.append_child(node)
        return nodes

    def _set_page_cookie(self, effect: Dict) -> None:
        name = effect.get("name")
        if not name:
            raise ParseError("set-page-cookie requires a name")
        header = f"{name}={effect.get('value', '')}"
        site = self.page.url.site
        if effect.get("scope") == "site" and site:
            header += f"; Domain={site}"
        max_age = effect.get("max_age")
        if max_age is not None:
            header += f"; Max-Age={int(max_age)}"
        self.page.browser.jar.set_from_header(header, self.page.url)

    def _load_resources(self, effect: Dict) -> None:
        resource_type = effect.get("type", "image")
        for url in effect.get("urls", []):
            self.page.browser.fetch_subresource(
                self.page, url, resource_type=resource_type
            )

    def _any_blocked(self, pattern: str) -> bool:
        if not pattern:
            return False
        return any(pattern in str(req.url) for req in self.page.blocked_requests)

    def _remove(self, selector: str) -> List[Node]:
        if not selector:
            return []
        removed = []
        element = query_selector(self.page.document, selector)
        while element is not None:
            element.detach()
            removed.append(element)
            element = query_selector(self.page.document, selector)
        return []
