"""Browser profile persistence (OpenWPM stateful-crawl support).

OpenWPM can run *stateful* crawls where the browser profile (cookies,
storage) persists across visits and restarts.  This module serialises
a cookie jar to JSON and back, giving the reproduction the same
capability — used e.g. to carry an SMP login across crawler sessions.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.errors import ParseError
from repro.httpkit import Cookie, CookieJar

_FORMAT_VERSION = 1


def save_profile(jar: CookieJar, path: Union[str, Path]) -> int:
    """Write the jar to *path*; returns the number of cookies saved."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cookies = [asdict(cookie) for cookie in jar.all_cookies()]
    payload = {"version": _FORMAT_VERSION, "cookies": cookies}
    path.write_text(
        json.dumps(payload, ensure_ascii=False, indent=1), encoding="utf-8"
    )
    return len(cookies)


def load_profile(path: Union[str, Path]) -> CookieJar:
    """Read a jar back from *path*."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ParseError(f"{path}: not a profile file: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ParseError(f"{path}: unsupported profile format")
    jar = CookieJar()
    for entry in payload.get("cookies", []):
        try:
            jar.set_cookie(Cookie(**entry))
        except TypeError as exc:
            raise ParseError(f"{path}: malformed cookie entry: {exc}") from exc
    return jar
