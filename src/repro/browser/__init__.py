"""A headless browser simulator with the quirks the paper fights.

The browser fetches documents over :mod:`repro.netsim`, parses them
with :mod:`repro.soup`, loads subresources (scripts, images, iframes),
executes *DOM effects* returned by script responses (the stand-in for
third-party JavaScript such as CMP/SMP loaders and ad scripts), applies
extension hooks (ad blocking), and maintains an RFC 6265 cookie jar.

Key fidelity points:

- CSS/XPath lookups through :class:`WebDriver` cannot see into shadow
  roots or iframes; ``element.shadow_root`` is None for closed roots —
  forcing the BannerClick clone-into-body workaround from paper §3.
- Consent and subscription state are ordinary cookies; servers render
  differently on subsequent requests, so cookie counts *emerge* from
  actually reloading pages after interaction.
"""

from repro.browser.core import Browser, ClickOutcome
from repro.browser.extensions import Extension
from repro.browser.page import Page
from repro.browser.webdriver import By, WebDriver, WebElement

__all__ = [
    "Browser",
    "ClickOutcome",
    "Page",
    "Extension",
    "WebDriver",
    "WebElement",
    "By",
]
