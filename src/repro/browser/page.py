"""The Page object: one loaded top-level document plus its frames."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro import perf
from repro.dom import Document, Element
from repro.httpkit import Request
from repro.urlkit import URL

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.core import Browser


class Page:
    """A loaded page: DOM, frames, request log, and diagnostic flags."""

    def __init__(self, browser: "Browser", url: URL, document: Document) -> None:
        self.browser = browser
        self.url = url
        self.document = document
        #: Every request issued on behalf of this page (incl. blocked).
        self.requests: List[Request] = []
        #: Requests an extension blocked before they hit the network.
        self.blocked_requests: List[Request] = []
        #: Requests that failed (DNS error etc.).
        self.failed_requests: List[Request] = []
        #: Diagnostic flags set by effects (anti-adblock walls etc.).
        self.flags: Dict[str, object] = {}
        #: True when a script locked body scrolling.
        self.scroll_locked = False
        self.status: int = 200
        #: Resource elements already handled by the load pipeline.
        self.processed_elements: set = set()
        #: One-walk frame cache: (iframes, documents, [(doc, revision)]).
        #: Validated against every involved document's mutation revision,
        #: so results stay identical to a fresh walk.
        self._frame_walk: Optional[
            Tuple[List[Element], List[Document], List[Tuple[Document, int]]]
        ] = None

    # ------------------------------------------------------------------
    # Frame access
    # ------------------------------------------------------------------
    def _walk_frames(
        self,
    ) -> Tuple[List[Element], List[Document], List[Tuple[Document, int]]]:
        """One pierced walk computing iframes and the document tree.

        ``iframes()`` and ``all_documents()`` used to re-walk
        ``elements(include_shadow=True)`` on every call; within one load
        the walk runs once and is reused until any involved document's
        revision changes.
        """
        cached = self._frame_walk if perf.config.frame_cache else None
        if cached is not None and all(
            doc.revision == revision for doc, revision in cached[2]
        ):
            return cached
        iframes: List[Element] = []
        documents: List[Document] = [self.document]
        revisions: List[Tuple[Document, int]] = [
            (self.document, self.document.revision)
        ]
        stack = [self.document]
        while stack:
            doc = stack.pop()
            for el in doc.elements(include_shadow=True):
                if el.tag != "iframe":
                    continue
                if doc is self.document:
                    iframes.append(el)
                inner = el.content_document
                if inner is not None:
                    documents.append(inner)
                    revisions.append((inner, inner.revision))
                    stack.append(inner)
        walked = (iframes, documents, revisions)
        self._frame_walk = walked
        return walked

    def iframes(self) -> List[Element]:
        """All iframe elements in the top-level document (pierces shadow)."""
        return list(self._walk_frames()[0])

    def all_documents(self) -> Iterator[Document]:
        """The main document plus every loaded frame document (recursive)."""
        yield from self._walk_frames()[1]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def site(self) -> Optional[str]:
        return self.url.site

    def visible_text(self) -> str:
        """All human-visible text, piercing shadow roots and frames."""
        body = self.document.body
        if body is None:
            return ""
        return body.text_content(pierce=True)

    def is_scrollable(self) -> bool:
        return not self.scroll_locked

    def __repr__(self) -> str:
        return f"<Page {self.url} requests={len(self.requests)}>"
