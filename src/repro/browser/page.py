"""The Page object: one loaded top-level document plus its frames."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.dom import Document, Element
from repro.httpkit import Request
from repro.urlkit import URL

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.core import Browser


class Page:
    """A loaded page: DOM, frames, request log, and diagnostic flags."""

    def __init__(self, browser: "Browser", url: URL, document: Document) -> None:
        self.browser = browser
        self.url = url
        self.document = document
        #: Every request issued on behalf of this page (incl. blocked).
        self.requests: List[Request] = []
        #: Requests an extension blocked before they hit the network.
        self.blocked_requests: List[Request] = []
        #: Requests that failed (DNS error etc.).
        self.failed_requests: List[Request] = []
        #: Diagnostic flags set by effects (anti-adblock walls etc.).
        self.flags: Dict[str, object] = {}
        #: True when a script locked body scrolling.
        self.scroll_locked = False
        self.status: int = 200
        #: Resource elements already handled by the load pipeline.
        self.processed_elements: set = set()

    # ------------------------------------------------------------------
    # Frame access
    # ------------------------------------------------------------------
    def iframes(self) -> List[Element]:
        """All iframe elements in the top-level document (pierces shadow)."""
        return [
            el
            for el in self.document.elements(include_shadow=True)
            if el.tag == "iframe"
        ]

    def all_documents(self) -> Iterator[Document]:
        """The main document plus every loaded frame document (recursive)."""
        yield self.document
        stack = [self.document]
        while stack:
            doc = stack.pop()
            for el in doc.elements(include_shadow=True):
                if el.tag == "iframe" and el.content_document is not None:
                    yield el.content_document
                    stack.append(el.content_document)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def site(self) -> Optional[str]:
        return self.url.site

    def visible_text(self) -> str:
        """All human-visible text, piercing shadow roots and frames."""
        body = self.document.body
        if body is None:
            return ""
        return body.text_content(pierce=True)

    def is_scrollable(self) -> bool:
        return not self.scroll_locked

    def __repr__(self) -> str:
        return f"<Page {self.url} requests={len(self.requests)}>"
