"""Browser extension hooks (the uBlock Origin attachment point)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.httpkit import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.page import Page


class Extension:
    """Base class for browser extensions.

    Extensions see every subresource request before it is sent
    (:meth:`should_block`) and the finished DOM afterwards
    (:meth:`on_document_ready`, used for cosmetic filtering).
    """

    name = "extension"

    def should_block(self, request: Request, page: "Page") -> bool:
        """Return True to cancel the request (network filtering)."""
        return False

    def on_document_ready(self, page: "Page") -> None:
        """Inspect/modify the DOM after loading (cosmetic filtering)."""
