"""Browser core: navigation, subresource loading, and interaction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.browser.effects import EFFECTS_CONTENT_TYPE, EffectRuntime, decode_effects
from repro.browser.extensions import Extension
from repro.browser.page import Page
from repro.dom import Document, Element, Node, ShadowRoot
from repro.errors import (
    ElementNotInteractableError,
    NavigationError,
    NetworkError,
    is_transient,
)
from repro import perf
from repro.httpkit import CookieJar, Headers, Request, Response
from repro.netsim import Network, VisitorContext
from repro.soup import parse_document
from repro.soup.cache import DocumentCache, shared_document_cache
from repro.urlkit import URL, parse
from repro.vantage import VantagePoint

_DEFAULT_UA = "Mozilla/5.0 (X11; Linux x86_64) repro-openwpm/1.0"
_MAX_FRAME_DEPTH = 3


@dataclass
class ClickOutcome:
    """What happened when an element was clicked."""

    action: str
    cookie: Optional[Tuple[str, str]] = None
    removed_banner: bool = False
    navigate_to: Optional[str] = None


class Browser:
    """A headless measurement browser bound to one vantage point."""

    def __init__(
        self,
        network: Network,
        vp: VantagePoint,
        *,
        jar: Optional[CookieJar] = None,
        extensions: Iterable[Extension] = (),
        instruments: Iterable = (),
        stealth: bool = True,
        user_agent: str = _DEFAULT_UA,
        visit_ids: Optional[Callable[[], int]] = None,
        parse_cache: Optional[DocumentCache] = shared_document_cache,
    ) -> None:
        self.network = network
        self.vp = vp
        self.jar = jar if jar is not None else CookieJar()
        self.extensions: List[Extension] = list(extensions)
        #: OpenWPM-style instruments (see repro.measure.instrumentation).
        self.instruments: List = list(instruments)
        self.stealth = stealth
        self.user_agent = user_agent
        #: Optional private visit-id allocator.  By default navigations
        #: draw from the network's shared monotonic counter; the crawl
        #: engine's parallel mode supplies a deterministic per-task
        #: stream instead so measurements don't depend on thread
        #: scheduling.
        self._visit_ids = visit_ids
        #: Parsed-document cache (None disables).  Identical response
        #: bodies across visits/VPs/repeats are parsed once and cloned.
        self._parse_cache = parse_cache
        self._visitor: Optional[VisitorContext] = None

    def _parse(self, body: str, url: str) -> Document:
        """Parse an HTML body, via the document cache when enabled."""
        if self._parse_cache is not None and perf.config.parse_cache:
            return self._parse_cache.parse(body, url)
        return parse_document(body, url=url)

    def _emit(self, hook: str, *args) -> None:
        for instrument in self.instruments:
            getattr(instrument, hook)(*args)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def visit(self, target: Union[str, URL]) -> Page:
        """Navigate to *target* (domain or URL) and fully load the page."""
        url = self._coerce_url(target)
        self._visitor = VisitorContext(
            vp=self.vp,
            user_agent=self.user_agent,
            stealth=self.stealth,
            visit_id=(
                self._visit_ids()
                if self._visit_ids is not None
                else self.network.next_visit_id()
            ),
        )
        visit_id = self._visitor.visit_id
        self._emit("on_navigation", visit_id, str(url))
        request = self._build_request(url, None, "document")
        self._emit("on_request", visit_id, request)
        try:
            response = self.network.fetch(request, self._visitor)
        except NetworkError as exc:
            self._emit("on_failed", visit_id, request)
            if is_transient(exc):
                # Transient faults (timeouts, disconnects, DNS flaps)
                # must surface unwrapped so the engine's retry layer
                # can classify and re-attempt the visit.
                raise
            raise NavigationError(f"cannot load {url}: {exc}") from exc
        self._emit("on_response", visit_id, response)
        self._store_cookies(response)
        if response.status >= 500:
            raise NavigationError(f"{url} answered {response.status}")
        document = self._parse(response.body, str(url))
        page = Page(self, url, document)
        page.status = response.status
        page.requests.append(request)
        self._process_tree(page, document, depth=0)
        for extension in self.extensions:
            extension.on_document_ready(page)
        return page

    def reload(self, page: Page) -> Page:
        """Re-navigate to the page's URL with the current cookie jar."""
        return self.visit(page.url)

    def clear_site_data(self, site: str) -> int:
        """Delete cookies for *site* (the §5 'revoke acceptance' flow)."""
        return self.jar.clear(site=site)

    def _coerce_url(self, target: Union[str, URL]) -> URL:
        if isinstance(target, URL):
            return target
        if "://" not in target:
            return parse(f"https://{target}/")
        return parse(target)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _build_request(
        self, url: URL, initiator: Optional[URL], resource_type: str
    ) -> Request:
        headers = Headers([("user-agent", self.user_agent)])
        first_party = initiator.site if initiator is not None else url.site
        cookies = self.jar.cookies_for(url, first_party_site=first_party)
        if cookies:
            headers.add(
                "cookie", "; ".join(f"{c.name}={c.value}" for c in cookies)
            )
        return Request(
            url=url,
            headers=headers,
            initiator=initiator,
            resource_type=resource_type,
        )

    def _store_cookies(self, response: Response) -> None:
        for header in response.set_cookie_headers:
            self.jar.set_from_header(header, response.request.url)

    def fetch_subresource(
        self, page: Page, target: Union[str, URL], *, resource_type: str = "script"
    ) -> Optional[Response]:
        """Fetch a subresource for *page*; None when blocked or failed.

        Script responses carrying DOM effects are executed against the
        page, and any nodes they add are scanned for further resources.
        """
        url = page.url.join(target) if isinstance(target, str) else target
        request = self._build_request(url, page.url, resource_type)
        page.requests.append(request)
        assert self._visitor is not None, "fetch outside a navigation"
        visit_id = self._visitor.visit_id
        self._emit("on_request", visit_id, request)
        for extension in self.extensions:
            if extension.should_block(request, page):
                page.blocked_requests.append(request)
                self._emit("on_blocked", visit_id, request)
                return None
        try:
            response = self.network.fetch(request, self._visitor)
        except NetworkError as exc:
            if is_transient(exc):
                # A mid-visit disconnect/timeout invalidates the whole
                # page load; swallowing it here would let chaos faults
                # silently alter records and break the differential
                # oracle.  Abort the visit and let the retry layer
                # replay it from the top.
                self._emit("on_failed", visit_id, request)
                raise
            page.failed_requests.append(request)
            self._emit("on_failed", visit_id, request)
            return None
        self._emit("on_response", visit_id, response)
        self._store_cookies(response)
        if response.content_type.startswith(EFFECTS_CONTENT_TYPE):
            runtime = EffectRuntime(page)
            added = runtime.apply(decode_effects(response.body))
            for node in added:
                self._process_tree(page, node, depth=0)
        return response

    # ------------------------------------------------------------------
    # Subresource pipeline
    # ------------------------------------------------------------------
    def _process_tree(self, page: Page, root: Node, depth: int) -> None:
        """Load every resource reachable from *root* (scripts, images,
        stylesheets, iframes), entering shadow roots and frames."""
        if depth > _MAX_FRAME_DEPTH:
            return
        candidates = []
        if isinstance(root, Element):
            candidates.append(root)
        candidates.extend(
            el for el in root.elements(include_shadow=True)
        )
        for element in candidates:
            self._handle_element(page, element, depth)

    def _handle_element(self, page: Page, element: Element, depth: int) -> None:
        if id(element) in page.processed_elements:
            return
        page.processed_elements.add(id(element))
        tag = element.tag
        if tag == "script" and element.get_attribute("src"):
            self.fetch_subresource(
                page, element.get_attribute("src"), resource_type="script"
            )
        elif tag == "img" and element.get_attribute("src"):
            self.fetch_subresource(
                page, element.get_attribute("src"), resource_type="image"
            )
        elif tag == "link" and element.get_attribute("rel") == "stylesheet":
            href = element.get_attribute("href")
            if href:
                self.fetch_subresource(page, href, resource_type="stylesheet")
        elif tag == "iframe":
            self._handle_iframe(page, element, depth)

    def _handle_iframe(self, page: Page, element: Element, depth: int) -> None:
        if element.content_document is not None:
            # Inline (srcdoc) frame: content came with the page.
            self._process_tree(page, element.content_document, depth + 1)
            return
        src = element.get_attribute("src")
        if not src:
            return
        response = self.fetch_subresource(page, src, resource_type="subdocument")
        if response is None or not response.ok:
            return
        if response.content_type.startswith(EFFECTS_CONTENT_TYPE):
            return
        frame_url = page.url.join(src)
        element.content_document = self._parse(response.body, str(frame_url))
        self._process_tree(page, element.content_document, depth + 1)

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------
    def click(self, page: Page, element: Element) -> ClickOutcome:
        """Click *element* on *page*, interpreting declarative actions.

        Buttons in the synthetic web carry ``data-action`` attributes
        (``accept`` / ``reject`` / ``subscribe`` / ``dismiss``) plus the
        consent cookie name, just like real CMP buttons ultimately
        resolve to a consent-cookie write.
        """
        if not element.is_visible():
            raise ElementNotInteractableError(f"{element!r} is not visible")
        if element.owner_document is None:
            raise ElementNotInteractableError(f"{element!r} is detached")
        if element.on_click is not None:
            element.on_click(element)
        action = element.get_attribute("data-action") or "none"
        outcome = ClickOutcome(action=action)
        if action in ("accept", "reject"):
            name = element.get_attribute("data-cookie") or "cmp_consent"
            value = "accept" if action == "accept" else "reject"
            cmp_id = element.get_attribute("data-cmp-id")
            if cmp_id and cmp_id.isdigit():
                # CMP-backed buttons persist an IAB-TCF-style string.
                from repro.consent.tcf import accept_all_string, reject_all_string

                value = (
                    accept_all_string(int(cmp_id))
                    if action == "accept"
                    else reject_all_string(int(cmp_id))
                )
            site = page.url.site
            header = f"{name}={value}; Max-Age=31536000"
            if site:
                header += f"; Domain={site}"
            self.jar.set_from_header(header, page.url)
            outcome.cookie = (name, "accept" if action == "accept" else "reject")
            outcome.removed_banner = self._remove_banner_for(page, element)
        elif action in ("dismiss", "close"):
            outcome.removed_banner = self._remove_banner_for(page, element)
        elif action == "subscribe":
            outcome.navigate_to = element.get_attribute("data-href")
            page.flags["subscribe_clicked"] = True
        return outcome

    def _remove_banner_for(self, page: Page, element: Element) -> bool:
        """Remove the banner container enclosing *element*.

        Handles all three embedding styles the paper catalogues: main
        DOM, shadow DOM (detaches the shadow host) and iframes (detaches
        the iframe element).
        """
        node: Optional[Node] = element
        while node is not None:
            if isinstance(node, Element) and node.has_attribute("data-banner"):
                node.detach()
                return True
            if isinstance(node, ShadowRoot):
                node = node.host
                continue
            if node.parent is None and isinstance(node, Document):
                frame = self._find_frame_element(page, node)
                if frame is None:
                    return False
                node = frame
                continue
            node = node.parent
        return False

    def _find_frame_element(self, page: Page, doc: Document) -> Optional[Element]:
        for candidate_doc in page.all_documents():
            for el in candidate_doc.elements(include_shadow=True):
                if el.tag == "iframe" and el.content_document is doc:
                    return el
        return None
