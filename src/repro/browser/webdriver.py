"""A Selenium-like facade over :class:`~repro.browser.core.Browser`.

BannerClick is built on Selenium; this facade reproduces the API subset
it uses — including Selenium's *limitations*:

- ``find_elements`` (CSS/XPath) only sees the current browsing context:
  no shadow-root content, no iframe content.
- ``switch_to_frame`` changes the context to an iframe's document.
- ``WebElement.shadow_root`` works for **open** roots only; accessing a
  closed root raises — the crawler must fall back to the privileged
  devtools-style :meth:`WebDriver.pierce_shadow_root` (modelling the
  paper's closed-shadow-DOM handling, §3 / [52]).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.browser.core import Browser, ClickOutcome
from repro.browser.page import Page
from repro.dom import Document, Element, Node, ShadowRoot
from repro.dom.selector import query_selector_all
from repro.dom.xpath import xpath_all
from repro.errors import (
    ClosedShadowRootError,
    NoSuchElementError,
)


class By:
    """Locator strategies (Selenium naming)."""

    CSS_SELECTOR = "css selector"
    XPATH = "xpath"
    TAG_NAME = "tag name"
    ID = "id"


class WebElement:
    """A handle on a DOM element, bound to its driver."""

    def __init__(self, driver: "WebDriver", element: Element) -> None:
        self._driver = driver
        self.element = element

    # -- inspection -----------------------------------------------------
    @property
    def tag_name(self) -> str:
        return self.element.tag

    @property
    def text(self) -> str:
        """Visible text of the element (no shadow/frame piercing)."""
        return self.element.text_content()

    def get_attribute(self, name: str) -> Optional[str]:
        return self.element.get_attribute(name)

    def is_displayed(self) -> bool:
        return self.element.is_visible()

    # -- shadow DOM -----------------------------------------------------
    @property
    def shadow_root(self) -> "ShadowContext":
        """The element's shadow root — open roots only (Selenium parity)."""
        root = self.element.shadow_root
        if root is None:
            if self.element.attached_shadow_root is not None:
                raise ClosedShadowRootError(
                    f"<{self.element.tag}> hosts a closed shadow root"
                )
            raise NoSuchElementError(f"<{self.element.tag}> has no shadow root")
        return ShadowContext(self._driver, root)

    def has_shadow_root(self) -> bool:
        """True when an *open* shadow root is script-visible."""
        return self.element.shadow_root is not None

    # -- interaction ------------------------------------------------------
    def click(self) -> ClickOutcome:
        return self._driver.browser.click(self._driver.page, self.element)

    def __repr__(self) -> str:
        return f"<WebElement {self.element!r}>"


class ShadowContext:
    """Query context rooted at an (open) shadow root."""

    def __init__(self, driver: "WebDriver", root: ShadowRoot) -> None:
        self._driver = driver
        self.root = root

    def find_elements(self, by: str, value: str) -> List[WebElement]:
        return self._driver._find_in(self.root, by, value)


class WebDriver:
    """Drives one loaded page with Selenium-flavoured lookups."""

    def __init__(self, browser: Browser, page: Page) -> None:
        self.browser = browser
        self.page = page
        #: The current browsing context (main document or a frame doc).
        self._context: Document = page.document

    # ------------------------------------------------------------------
    # Context switching
    # ------------------------------------------------------------------
    def switch_to_default_content(self) -> None:
        self._context = self.page.document

    def switch_to_frame(self, frame: Union[WebElement, Element]) -> None:
        element = frame.element if isinstance(frame, WebElement) else frame
        if element.tag != "iframe" or element.content_document is None:
            raise NoSuchElementError("element is not a loaded iframe")
        self._context = element.content_document

    @property
    def current_context(self) -> Document:
        return self._context

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_elements(self, by: str, value: str) -> List[WebElement]:
        """All matches in the current context (no shadow/frame pierce)."""
        return self._find_in(self._context, by, value)

    def find_element(self, by: str, value: str) -> WebElement:
        found = self.find_elements(by, value)
        if not found:
            raise NoSuchElementError(f"no element for {by}={value!r}")
        return found[0]

    def _find_in(self, root: Node, by: str, value: str) -> List[WebElement]:
        if by == By.CSS_SELECTOR:
            elements = query_selector_all(root, value)
        elif by == By.XPATH:
            elements = xpath_all(root, value)
        elif by == By.TAG_NAME:
            elements = [el for el in root.elements() if el.tag == value.lower()]
        elif by == By.ID:
            elements = [el for el in root.elements() if el.id == value]
        else:
            raise ValueError(f"unknown locator strategy {by!r}")
        return [WebElement(self, el) for el in elements]

    # ------------------------------------------------------------------
    # Shadow DOM discovery helpers
    # ------------------------------------------------------------------
    def elements_with_shadow_root(self) -> List[WebElement]:
        """Elements in the current context that host an *open* root.

        This mirrors BannerClick's scripted scan for elements with a
        ``shadow_root`` property (paper §3).
        """
        return [
            WebElement(self, el)
            for el in self._context.elements()
            if el.shadow_root is not None
        ]

    def pierce_shadow_root(self, element: Union[WebElement, Element]) -> ShadowContext:
        """Privileged (devtools-level) access to any shadow root.

        Real BannerClick reaches closed shadow roots through injected
        page scripts that capture ``attachShadow`` [52]; we model that
        capability as a devtools pierce.
        """
        el = element.element if isinstance(element, WebElement) else element
        root = el.attached_shadow_root
        if root is None:
            raise NoSuchElementError(f"<{el.tag}> has no shadow root")
        return ShadowContext(self, root)

    def elements_with_any_shadow_root(self) -> List[WebElement]:
        """Privileged scan that also reveals closed shadow hosts."""
        return [
            WebElement(self, el)
            for el in self._context.elements()
            if el.attached_shadow_root is not None
        ]

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def iframe_elements(self) -> List[WebElement]:
        """All loaded iframes in the current context."""
        return [
            WebElement(self, el)
            for el in self._context.elements(include_shadow=True)
            if el.tag == "iframe" and el.content_document is not None
        ]

    @property
    def page_source(self) -> str:
        from repro.dom import to_html

        return to_html(self.page.document)

    def execute_append_clone(self, source: Node, target_parent: Element) -> Node:
        """Clone *source* and append the clone to *target_parent*.

        The primitive behind the paper's shadow-DOM workaround: clone
        shadow children into the main document body so that ordinary
        XPath/CSS lookups can run over them.
        """
        clone = source.clone(deep=True)
        target_parent.append_child(clone)
        return clone
