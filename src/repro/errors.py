"""Exception hierarchy for the :mod:`repro` library.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch a single base class.  Subsystems define narrower
exceptions here (rather than in their own modules) to avoid circular
imports between substrates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class URLError(ReproError):
    """An URL could not be parsed or is structurally invalid."""


class DOMError(ReproError):
    """An illegal DOM operation was attempted (e.g. cycle creation)."""


class SelectorError(DOMError):
    """A CSS selector or XPath expression could not be parsed."""


class ClosedShadowRootError(DOMError):
    """Script-level access to a closed shadow root was attempted.

    Mirrors the behaviour of real browsers where ``element.shadowRoot``
    returns ``null`` for closed shadow roots.
    """


class ParseError(ReproError):
    """Input (HTML, filter list, cookie header, ...) could not be parsed."""


class CookieError(ReproError):
    """A cookie is malformed or violates RFC 6265 constraints."""


class NetworkError(ReproError):
    """Base class for simulated network failures."""


class DNSError(NetworkError):
    """The simulated resolver has no record for a host."""


class ConnectionRefused(NetworkError):
    """The target host exists but refuses connections (unreachable site)."""


class NavigationError(ReproError):
    """The browser failed to navigate to a page."""


class NoSuchElementError(ReproError):
    """A WebDriver lookup matched no element (Selenium parity)."""


class ElementNotInteractableError(ReproError):
    """The element exists but cannot be clicked (hidden / detached)."""


class BotDetectedError(NavigationError):
    """The site identified the crawler as a bot and blocked the visit."""


class FilterSyntaxError(ParseError):
    """An ad-block filter line could not be parsed."""


class AuthenticationError(ReproError):
    """SMP login failed (wrong credentials or no subscription)."""


class WorldGenerationError(ReproError):
    """The synthetic web generator was misconfigured."""


class MeasurementError(ReproError):
    """A crawl/measurement could not be carried out."""


class AnalysisError(ReproError):
    """An analysis step received inconsistent or empty input."""
