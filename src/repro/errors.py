"""Exception hierarchy for the :mod:`repro` library.

Every exception raised by this library derives from :class:`ReproError`,
so callers can catch a single base class.  Subsystems define narrower
exceptions here (rather than in their own modules) to avoid circular
imports between substrates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Every subclass carries a :attr:`transient` flag classifying the
    failure for the resilience layer: transient errors (timeouts,
    disconnects, DNS flaps, ...) are worth retrying; permanent errors
    (parse failures, missing DNS records, refused connections) are not.
    """

    #: Whether retrying the failed operation can plausibly succeed.
    transient = False


class URLError(ReproError):
    """An URL could not be parsed or is structurally invalid."""


class DOMError(ReproError):
    """An illegal DOM operation was attempted (e.g. cycle creation)."""


class SelectorError(DOMError):
    """A CSS selector or XPath expression could not be parsed."""


class ClosedShadowRootError(DOMError):
    """Script-level access to a closed shadow root was attempted.

    Mirrors the behaviour of real browsers where ``element.shadowRoot``
    returns ``null`` for closed shadow roots.
    """


class ParseError(ReproError):
    """Input (HTML, filter list, cookie header, ...) could not be parsed."""


class CookieError(ReproError):
    """A cookie is malformed or violates RFC 6265 constraints."""


class NetworkError(ReproError):
    """Base class for simulated network failures."""


class DNSError(NetworkError):
    """The simulated resolver has no record for a host."""


class ConnectionRefused(NetworkError):
    """The target host exists but refuses connections (unreachable site)."""


class TimeoutError(NetworkError):  # noqa: A001 - mirrors the stdlib name
    """A request exceeded its (virtual) time budget before completing."""

    transient = True


class TruncatedResponseError(NetworkError):
    """The response body arrived truncated or garbled (integrity check)."""

    transient = True


class DisconnectError(NetworkError):
    """The connection dropped mid-transfer (e.g. during a page visit)."""

    transient = True


class DNSFlapError(DNSError):
    """A transient resolver failure for a host that normally resolves."""

    transient = True


class DeadlineExceeded(ReproError):
    """A task's total (virtual) time budget ran out across attempts."""


class BreakerOpenError(ReproError):
    """A per-domain circuit breaker short-circuited the task."""


class NavigationError(ReproError):
    """The browser failed to navigate to a page."""


class NoSuchElementError(ReproError):
    """A WebDriver lookup matched no element (Selenium parity)."""


class ElementNotInteractableError(ReproError):
    """The element exists but cannot be clicked (hidden / detached)."""


class BotDetectedError(NavigationError):
    """The site identified the crawler as a bot and blocked the visit."""


class FilterSyntaxError(ParseError):
    """An ad-block filter line could not be parsed."""


class AuthenticationError(ReproError):
    """SMP login failed (wrong credentials or no subscription)."""


class WorldGenerationError(ReproError):
    """The synthetic web generator was misconfigured."""


class MeasurementError(ReproError):
    """A crawl/measurement could not be carried out."""


class AnalysisError(ReproError):
    """An analysis step received inconsistent or empty input."""


class TransportError(ReproError):
    """A shard bundle or worker reply failed to cross the wire.

    Distinct from :class:`NetworkError` (which models the *simulated*
    web): transport errors are faults of the harness's own distributed
    plane — a worker connection dropping mid-shard, a reply frame that
    is not valid JSON, or a reply whose outcomes do not cover the
    bundle.  The coordinator degrades the affected tasks to structured
    records instead of dropping them, so record counts always match
    the plan; :func:`error_category` classifies the whole family as
    ``"transport"``.
    """


class WorkerLostError(TransportError):
    """A distributed worker died (or its lease expired) mid-shard."""


class WireProtocolError(TransportError):
    """A wire frame could not be decoded or violated the protocol."""


# ---------------------------------------------------------------------------
# Taxonomy helpers
# ---------------------------------------------------------------------------

def is_transient(exc: BaseException) -> bool:
    """True when *exc* (or any exception in its cause chain) is transient.

    Walking ``__cause__``/``__context__`` matters because the browser
    wraps network failures (``NavigationError(...) from exc``): the
    wrapper itself is permanent, but a wrapped timeout still is a
    retryable fault.
    """
    seen = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, ReproError) and current.transient:
            return True
        current = current.__cause__ or current.__context__
    return False


def _taxonomy() -> dict:
    """Map every :class:`ReproError` subclass name to its class."""
    by_name = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        by_name[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return by_name


def error_category(name: str) -> str:
    """Classify an error *name* (as recorded in outcomes/records).

    Returns ``"transient"`` or ``"permanent"`` for names in the
    :class:`ReproError` taxonomy, ``"transport"`` for the
    :class:`TransportError` family (harness-plane faults: lost
    workers, malformed wire replies), and ``"unknown"`` for anything
    else — analysis code must not crash on error strings minted by
    future versions (or by custom crawlers).
    """
    cls = _taxonomy().get(name)
    if cls is None:
        return "unknown"
    if issubclass(cls, TransportError):
        return "transport"
    return "transient" if cls.transient else "permanent"
