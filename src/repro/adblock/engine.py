"""The filter engine: network blocking decisions + cosmetic selectors.

Two implementations share one behaviour contract:

- :class:`FilterEngine` — the indexed engine the crawler uses.  Host
  anchors (``||domain^``) live in a reversed-label hostname trie,
  substring/wildcard filters in URL token buckets (uBlock's trick:
  index each filter under a literal token every matching URL must
  contain), both partitioned by resource type; cosmetic filters sit in
  a host-keyed domain index behind a small LRU.  A request only ever
  touches the few filters its host labels and URL tokens select.
- :class:`NaiveFilterEngine` — the original O(filters) linear scan,
  kept as the differential-testing oracle.  The randomized suite in
  ``tests/test_hotpaths_differential.py`` holds both engines to
  identical answers.

Shared semantics (both engines, verified differentially):

- exception (``@@``) filters always win over block filters;
- among several matching filters, the earliest-added one decides;
- ``hit_counts`` (the uBlock logger) is incremented **once per
  decision** — only :meth:`should_block` counts, the introspection
  helpers :meth:`matching_filter` / :meth:`explain` never do, so a
  caller logging the decisive filter after a block does not inflate
  the ranking — and increments are lock-protected so a shared engine
  under the parallel executor cannot drop counts.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adblock.filters import (
    TOKEN_RE,
    CosmeticFilter,
    NetworkFilter,
    good_filter_tokens,
    parse_filter_list,
)
from repro.httpkit import Request
from repro.lru import LockedLRU

#: Entries are (sequence, filter) — sequence is the add order, which is
#: also the precedence order among multiple matches.
_Entry = Tuple[int, NetworkFilter]

#: LRU size for the per-host cosmetic selector cache.
_COSMETIC_CACHE_SIZE = 512

#: Bounds for the module-level parsed-list / compiled-index caches.
_PARSE_CACHE_SIZE = 64
_COMPILED_CACHE_SIZE = 32


_parse_cache: LockedLRU = LockedLRU(_PARSE_CACHE_SIZE)


def _parse_list_cached(text: str) -> Tuple[str, List[NetworkFilter], List[CosmeticFilter]]:
    """Parse a filter list once per distinct text (shared across engines).

    The crawler builds a fresh uBlock instance per visit — with a
    full-scale list that made list *parsing* the dominant per-visit
    cost for every engine.  Parsed filters are immutable after
    construction, so engines can share them; callers must not mutate
    the returned lists.  Returns (digest, network, cosmetic); the
    digest keys the compiled-index cache.
    """
    digest = hashlib.sha1(text.encode("utf-8")).hexdigest()
    hit = _parse_cache.get(digest)
    if hit is not None:
        return hit
    network, cosmetic = parse_filter_list(text)
    entry = (digest, network, cosmetic)
    _parse_cache.put(digest, entry)
    return entry


class _EngineCore:
    """Loading, hit accounting, and the decision API both engines share."""

    def __init__(self) -> None:
        self._block: List[NetworkFilter] = []
        self._allow: List[NetworkFilter] = []
        self._hide: List[CosmeticFilter] = []
        self._unhide: List[CosmeticFilter] = []
        #: Per-filter hit counts (the uBlock logger), raw line -> hits.
        #: Mutated only under ``_hits_lock``.
        self.hit_counts: Counter = Counter()
        self._hits_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_list(self, text: str) -> None:
        """Parse and add one filter list (parses are shared and cached)."""
        digest, network, cosmetic = _parse_list_cached(text)
        for nf in network:
            (self._allow if nf.is_exception else self._block).append(nf)
        for cf in cosmetic:
            (self._unhide if cf.is_exception else self._hide).append(cf)
        self._lists_changed(digest, network, cosmetic)

    def add_lists(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.add_list(text)

    @property
    def filter_count(self) -> int:
        return (
            len(self._block) + len(self._allow)
            + len(self._hide) + len(self._unhide)
        )

    # Indexed subclass hook (no-op for the naive engine).
    def _lists_changed(
        self,
        digest: str,
        network: List[NetworkFilter],
        cosmetic: List[CosmeticFilter],
    ) -> None:
        pass

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self, request: Request) -> Optional[NetworkFilter]:
        """The decisive filter: a matching exception, else a matching
        block filter, else None.  Implemented by each engine."""
        raise NotImplementedError

    def should_block(self, request: Request) -> bool:
        """True when a block filter matches and no exception overrides.

        This is the decision entry point: the decisive filter's hit
        count is incremented here, exactly once.
        """
        decisive = self._decide(request)
        if decisive is None:
            return False
        with self._hits_lock:
            self.hit_counts[decisive.raw] += 1
        return not decisive.is_exception

    def matching_filter(self, request: Request) -> Optional[NetworkFilter]:
        """The block filter responsible for blocking, or None.

        Pure introspection: does not touch ``hit_counts`` (so callers
        combining it with :meth:`should_block` don't double-count).
        """
        decisive = self._decide(request)
        if decisive is None or decisive.is_exception:
            return None
        return decisive

    def explain(self, request: Request) -> Optional[str]:
        """The raw filter line that would block this request, or None.

        Pure introspection, like :meth:`matching_filter`.
        """
        matched = self.matching_filter(request)
        return matched.raw if matched is not None else None

    def top_filters(self, limit: int = 10) -> List[tuple]:
        """Most-hit filters (the uBlock logger's ranking view)."""
        with self._hits_lock:
            items = list(self.hit_counts.items())
        ranked = sorted(items, key=lambda item: -item[1])
        return ranked[:limit]

    def cosmetic_selectors(self, host: str) -> List[str]:
        """CSS selectors to hide on *host* (minus exceptions)."""
        raise NotImplementedError


class NaiveFilterEngine(_EngineCore):
    """The original linear-scan matcher — the differential-test oracle."""

    def _decide(self, request: Request) -> Optional[NetworkFilter]:
        for allow in self._allow:
            if allow.matches(request):
                return allow
        for block in self._block:
            if block.matches(request):
                return block
        return None

    def cosmetic_selectors(self, host: str) -> List[str]:
        excluded = {
            cf.selector for cf in self._unhide if cf.applies_to(host)
        }
        out: List[str] = []
        for cf in self._hide:
            if cf.applies_to(host) and cf.selector not in excluded:
                out.append(cf.selector)
        return out


# ---------------------------------------------------------------------------
# The indexed engine
# ---------------------------------------------------------------------------

class _TypedEntries:
    """Entries partitioned by resource type ('' = applies to any type)."""

    __slots__ = ("by_type",)

    def __init__(self) -> None:
        self.by_type: Dict[str, List[_Entry]] = {}

    def add(self, entry: _Entry) -> None:
        nf = entry[1]
        for key in (nf.resource_types or ("",)):
            self.by_type.setdefault(key, []).append(entry)

    def lists_for(self, resource_type: str):
        typed = self.by_type.get(resource_type)
        if typed:
            yield typed
        generic = self.by_type.get("")
        if generic:
            yield generic


class _NetworkIndex:
    """One partition (allow or block) of the indexed network filters."""

    __slots__ = ("_trie", "_token_buckets", "_catchall")

    def __init__(self) -> None:
        #: Reversed-label hostname trie; the ``None`` key of a node
        #: holds the entries anchored at that exact domain.
        self._trie: Dict = {}
        self._token_buckets: Dict[str, _TypedEntries] = {}
        self._catchall = _TypedEntries()

    def add(self, entry: _Entry) -> None:
        nf = entry[1]
        if nf.anchor_domain is not None:
            node = self._trie
            for label in reversed(nf.anchor_domain.rstrip(".").split(".")):
                node = node.setdefault(label, {})
            terminal = node.get(None)
            if terminal is None:
                terminal = node[None] = _TypedEntries()
            terminal.add(entry)
            return
        tokens = good_filter_tokens(nf.pattern or "")
        if tokens:
            # The longest good token is the most selective bucket key.
            self._token_buckets.setdefault(
                max(tokens, key=len), _TypedEntries()
            ).add(entry)
        else:
            self._catchall.add(entry)

    def first_match(
        self, request: Request, url_text: str, host_labels: List[str]
    ) -> Optional[NetworkFilter]:
        """The earliest-added filter in this partition matching *request*.

        Candidate lists are add-ordered, so the first match within each
        list is that list's minimum; the overall winner is the minimum
        across the trie path, the URL's token buckets, and the
        catch-all bucket.
        """
        best: Optional[NetworkFilter] = None
        best_seq = -1
        rtype = request.resource_type
        third_party = request.is_third_party

        def consider(entries: _TypedEntries) -> None:
            nonlocal best, best_seq
            for candidates in entries.lists_for(rtype):
                for seq, nf in candidates:
                    if best is not None and seq >= best_seq:
                        break
                    if (
                        nf.third_party is not None
                        and third_party != nf.third_party
                    ):
                        continue
                    if nf.matches(request):
                        best, best_seq = nf, seq
                        break

        node = self._trie
        for label in reversed(host_labels):
            node = node.get(label)
            if node is None:
                break
            terminal = node.get(None)
            if terminal is not None:
                consider(terminal)
        seen = set()
        for token in TOKEN_RE.findall(url_text):
            if token in seen:
                continue
            seen.add(token)
            bucket = self._token_buckets.get(token)
            if bucket is not None:
                consider(bucket)
        consider(self._catchall)
        return best


class _CompiledFilters:
    """Immutable compiled form of a *sequence* of filter lists.

    Holds the network trie/token indexes and the cosmetic domain index
    plus its per-host LRU.  Compiled sets are pure functions of the
    list texts, so they are cached module-wide and shared by every
    engine loading the same lists — the crawler builds a fresh uBlock
    per visit, and without this sharing each construction would
    re-index (and before that re-parse) tens of thousands of rules.
    Mutable per-engine state (``hit_counts``) stays on the engine.
    """

    __slots__ = (
        "allow_index", "block_index",
        "_generic_hide", "_generic_unhide",
        "_hide_by_domain", "_unhide_by_domain",
        "_cosmetic_cache",
    )

    def __init__(
        self,
        network_lists: List[List[NetworkFilter]],
        cosmetic_lists: List[List[CosmeticFilter]],
    ) -> None:
        self.allow_index = _NetworkIndex()
        self.block_index = _NetworkIndex()
        # Cosmetic index: generic filters apply everywhere; domain-
        # bound filters are keyed under each of their domains and found
        # by enumerating the host's label-aligned suffixes.
        self._generic_hide: List[Tuple[int, CosmeticFilter]] = []
        self._generic_unhide: List[Tuple[int, CosmeticFilter]] = []
        self._hide_by_domain: Dict[str, List[Tuple[int, CosmeticFilter]]] = {}
        self._unhide_by_domain: Dict[str, List[Tuple[int, CosmeticFilter]]] = {}
        self._cosmetic_cache: LockedLRU = LockedLRU(_COSMETIC_CACHE_SIZE)
        seq = 0
        for network in network_lists:
            for nf in network:
                seq += 1
                (self.allow_index if nf.is_exception else self.block_index).add(
                    (seq, nf)
                )
        for cosmetic in cosmetic_lists:
            for cf in cosmetic:
                seq += 1
                self._add_cosmetic((seq, cf))

    def _add_cosmetic(self, entry: Tuple[int, CosmeticFilter]) -> None:
        cf = entry[1]
        if cf.is_exception:
            generic, by_domain = self._generic_unhide, self._unhide_by_domain
        else:
            generic, by_domain = self._generic_hide, self._hide_by_domain
        if not cf.domains:
            generic.append(entry)
        else:
            for domain in cf.domains:
                by_domain.setdefault(domain.rstrip("."), []).append(entry)

    # ------------------------------------------------------------------
    @staticmethod
    def _candidates(
        suffixes: List[str],
        generic: List[Tuple[int, CosmeticFilter]],
        by_domain: Dict[str, List[Tuple[int, CosmeticFilter]]],
    ) -> Dict[int, CosmeticFilter]:
        # Every candidate found this way *applies* to the host: generic
        # filters always do, and a domain-keyed hit means the key is a
        # label-aligned suffix of the host (= is_subdomain_of).
        found = dict(generic)
        for suffix in suffixes:
            for seq, cf in by_domain.get(suffix, ()):
                found[seq] = cf
        return found

    def cosmetic_selectors(self, host: str) -> List[str]:
        norm = host.lower().rstrip(".")
        cached = self._cosmetic_cache.get(norm)
        if cached is not None:
            return list(cached)
        labels = norm.split(".")
        suffixes = [".".join(labels[i:]) for i in range(len(labels))]
        excluded = {
            cf.selector
            for cf in self._candidates(
                suffixes, self._generic_unhide, self._unhide_by_domain
            ).values()
        }
        hide = self._candidates(
            suffixes, self._generic_hide, self._hide_by_domain
        )
        out = tuple(
            cf.selector
            for _, cf in sorted(hide.items())
            if cf.selector not in excluded
        )
        self._cosmetic_cache.put(norm, out)
        return list(out)


_compiled_cache: LockedLRU = LockedLRU(_COMPILED_CACHE_SIZE)


class FilterEngine(_EngineCore):
    """The indexed engine: trie + token buckets + cosmetic host index.

    Behaviourally identical to :class:`NaiveFilterEngine` (the
    randomized differential suite enforces it); asymptotically a
    request touches O(host labels + URL tokens) buckets instead of
    every filter.  Compilation is lazy and shared: the first decision
    after loading lists compiles (or fetches from the module cache) the
    indexes for that exact list sequence.
    """

    def __init__(self) -> None:
        super().__init__()
        self._digests: List[str] = []
        self._network_lists: List[List[NetworkFilter]] = []
        self._cosmetic_lists: List[List[CosmeticFilter]] = []
        self._compiled: Optional[_CompiledFilters] = None

    def _lists_changed(
        self,
        digest: str,
        network: List[NetworkFilter],
        cosmetic: List[CosmeticFilter],
    ) -> None:
        # These hold the same filter objects the base class just
        # appended to _block/_allow/_hide/_unhide, grouped per list so
        # the digest tuple can key the compiled-index cache.  Any
        # change to the base partitioning must keep the two views in
        # step (the differential suite compares against the naive
        # engine, which reads only the base lists).
        self._digests.append(digest)
        self._network_lists.append(network)
        self._cosmetic_lists.append(cosmetic)
        self._compiled = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _ensure_compiled(self) -> _CompiledFilters:
        compiled = self._compiled
        if compiled is None:
            key = tuple(self._digests)
            compiled = _compiled_cache.get(key)
            if compiled is None:
                compiled = _CompiledFilters(
                    self._network_lists, self._cosmetic_lists
                )
                _compiled_cache.put(key, compiled)
            self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self, request: Request) -> Optional[NetworkFilter]:
        compiled = self._ensure_compiled()
        url_text = str(request.url)
        host_labels = request.url.host.rstrip(".").split(".")
        allow = compiled.allow_index.first_match(request, url_text, host_labels)
        if allow is not None:
            return allow
        return compiled.block_index.first_match(request, url_text, host_labels)

    def cosmetic_selectors(self, host: str) -> List[str]:
        return self._ensure_compiled().cosmetic_selectors(host)
