"""The filter engine: network blocking decisions + cosmetic selectors."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.adblock.filters import (
    CosmeticFilter,
    NetworkFilter,
    parse_filter_list,
)
from repro.httpkit import Request


class FilterEngine:
    """Evaluates requests and hosts against a set of filter lists."""

    def __init__(self) -> None:
        self._block: List[NetworkFilter] = []
        self._allow: List[NetworkFilter] = []
        self._hide: List[CosmeticFilter] = []
        self._unhide: List[CosmeticFilter] = []
        #: Per-filter hit counts (the uBlock logger), raw line -> hits.
        self.hit_counts: dict = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_list(self, text: str) -> None:
        """Parse and add one filter list."""
        network, cosmetic = parse_filter_list(text)
        for nf in network:
            (self._allow if nf.is_exception else self._block).append(nf)
        for cf in cosmetic:
            (self._unhide if cf.is_exception else self._hide).append(cf)

    def add_lists(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.add_list(text)

    @property
    def filter_count(self) -> int:
        return (
            len(self._block) + len(self._allow)
            + len(self._hide) + len(self._unhide)
        )

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def should_block(self, request: Request) -> bool:
        """True when a block filter matches and no exception overrides."""
        matched = self.matching_filter(request)
        return matched is not None

    def matching_filter(self, request: Request) -> Optional[NetworkFilter]:
        """The block filter responsible for blocking, or None."""
        for allow in self._allow:
            if allow.matches(request):
                self.hit_counts[allow.raw] = self.hit_counts.get(allow.raw, 0) + 1
                return None
        for block in self._block:
            if block.matches(request):
                self.hit_counts[block.raw] = self.hit_counts.get(block.raw, 0) + 1
                return block
        return None

    def explain(self, request: Request) -> Optional[str]:
        """The raw filter line that decides this request, or None."""
        matched = self.matching_filter(request)
        return matched.raw if matched is not None else None

    def top_filters(self, limit: int = 10) -> List[tuple]:
        """Most-hit filters (the uBlock logger's ranking view)."""
        ranked = sorted(
            self.hit_counts.items(), key=lambda item: -item[1]
        )
        return ranked[:limit]

    def cosmetic_selectors(self, host: str) -> List[str]:
        """CSS selectors to hide on *host* (minus exceptions)."""
        excluded = {
            cf.selector for cf in self._unhide if cf.applies_to(host)
        }
        out: List[str] = []
        for cf in self._hide:
            if cf.applies_to(host) and cf.selector not in excluded:
                out.append(cf.selector)
        return out
