"""uBlock Origin stand-in: a browser extension wired to the engine."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Type

from repro import perf
from repro.adblock.engine import FilterEngine, NaiveFilterEngine, _EngineCore
from repro.adblock.lists import annoyances_list, easylist
from repro.browser.extensions import Extension
from repro.dom.selector import query_selector_all
from repro.errors import SelectorError
from repro.httpkit import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.page import Page


class UBlockOrigin(Extension):
    """Network + cosmetic filtering extension.

    By default only the EasyList-style core list is enabled; pass
    ``annoyances=True`` to also enable the Annoyances lists — the
    configuration the paper uses to block cookiewalls (§4.5).
    """

    name = "uBlock Origin"

    def __init__(
        self,
        *,
        annoyances: bool = False,
        extra_lists: Optional[Iterable[str]] = None,
        engine_cls: Optional[Type[_EngineCore]] = None,
    ) -> None:
        if engine_cls is None:
            # The hot-path switch lets benchmarks and differential
            # tests run the whole uBlock arm on the naive matcher.
            engine_cls = (
                FilterEngine if perf.config.filter_index else NaiveFilterEngine
            )
        self.engine = engine_cls()
        self.engine.add_list(easylist())
        self.annoyances_enabled = annoyances
        if annoyances:
            self.engine.add_list(annoyances_list())
        for text in extra_lists or ():
            self.engine.add_list(text)
        #: Count of blocked requests (like the extension's badge).
        self.blocked_count = 0

    # ------------------------------------------------------------------
    # Extension hooks
    # ------------------------------------------------------------------
    def should_block(self, request: Request, page: "Page") -> bool:
        if request.resource_type == "document":
            return False  # uBlock never blocks top-level documents
        blocked = self.engine.should_block(request)
        if blocked:
            self.blocked_count += 1
        return blocked

    def on_document_ready(self, page: "Page") -> None:
        """Apply cosmetic filters: detach matching elements."""
        host = page.url.host
        for selector in self.engine.cosmetic_selectors(host):
            try:
                matches = query_selector_all(page.document, selector)
            except SelectorError:
                continue  # lists may carry syntax we do not support
            for element in matches:
                element.detach()
