"""Embedded filter lists (EasyList-style core + Annoyances).

The lists reference the canonical third-party ecosystem of
:mod:`repro.thirdparty`, exactly as real lists reference real tracker
and CMP domains.  The Annoyances list carries the CMP/SMP blocking
rules the paper's footnote 7 quotes (``*cdn.opencmp.net/*``,
``*consentmanager.net/*``, ``*usercentrics.eu/*``) — the rules that
suppress ~70% of cookiewalls (§4.5).
"""

from __future__ import annotations

import random

from repro import thirdparty


def easylist() -> str:
    """The default-enabled ad/tracker blocking list."""
    lines = ["! Title: repro EasyList (core ad servers)"]
    for domain in thirdparty.easylist_domains():
        lines.append(f"||{domain}^")
    lines.extend(
        [
            "! Generic URL patterns",
            "/adframe.",
            "/pixel?id=",
            "*&banner_slot=*",
            "! Cosmetic rules for leftover ad containers",
            "##.ad-banner-top",
            "##div[data-ad-slot]",
            "! Exception: self-served ads on an allow-listed site",
            "@@||selfads.acceptable-ads.net^",
        ]
    )
    return "\n".join(lines) + "\n"


def annoyances_list() -> str:
    """The (by default disabled) Annoyances lists, merged.

    The paper explicitly enables these to block cookiewalls (§4.5,
    footnote 6).  They block the serving domains of listed CMPs and of
    both SMPs; walls injected from these domains never appear.
    """
    lines = ["! Title: repro Annoyances (cookie notices & cookiewalls)"]
    for domain in thirdparty.annoyances_domains():
        lines.append(f"*cdn.{domain}/*")
        lines.append(f"||{domain}^$third-party")
    lines.extend(
        [
            "! Cosmetic rules for common notice containers",
            "##.cmp-overlay-backdrop",
            '##div[id^="sp_message_container"]',
            "##.cookie-notice-slide-in",
        ]
    )
    return "\n".join(lines) + "\n"


def synthetic_full_list(n_rules: int = 20000, seed: int = 2023) -> str:
    """A deterministic filter list at real-EasyList scale.

    The embedded lists above only cover the synthetic web's ~40 third
    parties, but the paper's uBlock arm runs the *real* EasyList +
    Annoyances stack (tens of thousands of rules), and it's that list
    size the linear-scan matcher chokes on.  This generates plausible
    filler — host anchors, tokenized URL patterns, type/party options,
    a sprinkle of exceptions and cosmetics over never-matching
    domains — so benchmarks and stress tests can measure engines at
    full-list size without shipping a real list.
    """
    rng = random.Random(seed)
    words = (
        "ads", "track", "pixel", "beacon", "metric", "sync", "banner",
        "promo", "sponsor", "click", "pop", "tag", "stat", "affil",
        "count", "log", "roll", "serve", "media", "match",
    )
    tlds = ("com", "net", "io", "biz", "info")
    types = ("script", "image", "xhr", "stylesheet", "subdocument")
    lines = [f"! Title: synthetic full-scale list ({n_rules} rules)"]
    for i in range(n_rules):
        kind = rng.random()
        w1, w2 = rng.choice(words), rng.choice(words)
        if kind < 0.55:
            domain = f"{w1}{i}.{w2}-cdn.{rng.choice(tlds)}"
            rule = f"||{domain}^"
            if rng.random() < 0.3:
                rule += f"${rng.choice(types)}"
            elif rng.random() < 0.15:
                rule += "$third-party"
        elif kind < 0.9:
            rule = f"/{w1}{i}/{w2}."
            if rng.random() < 0.25:
                rule = f"*{rule}*"
        elif kind < 0.95:
            rule = f"@@||allowed{i}.{w1}-site.{rng.choice(tlds)}^"
        else:
            rule = f"never{i}.example.{rng.choice(tlds)}##.{w1}-{w2}-{i}"
        lines.append(rule)
    return "\n".join(lines) + "\n"
