"""Embedded filter lists (EasyList-style core + Annoyances).

The lists reference the canonical third-party ecosystem of
:mod:`repro.thirdparty`, exactly as real lists reference real tracker
and CMP domains.  The Annoyances list carries the CMP/SMP blocking
rules the paper's footnote 7 quotes (``*cdn.opencmp.net/*``,
``*consentmanager.net/*``, ``*usercentrics.eu/*``) — the rules that
suppress ~70% of cookiewalls (§4.5).
"""

from __future__ import annotations

from repro import thirdparty


def easylist() -> str:
    """The default-enabled ad/tracker blocking list."""
    lines = ["! Title: repro EasyList (core ad servers)"]
    for domain in thirdparty.easylist_domains():
        lines.append(f"||{domain}^")
    lines.extend(
        [
            "! Generic URL patterns",
            "/adframe.",
            "/pixel?id=",
            "*&banner_slot=*",
            "! Cosmetic rules for leftover ad containers",
            "##.ad-banner-top",
            "##div[data-ad-slot]",
            "! Exception: self-served ads on an allow-listed site",
            "@@||selfads.acceptable-ads.net^",
        ]
    )
    return "\n".join(lines) + "\n"


def annoyances_list() -> str:
    """The (by default disabled) Annoyances lists, merged.

    The paper explicitly enables these to block cookiewalls (§4.5,
    footnote 6).  They block the serving domains of listed CMPs and of
    both SMPs; walls injected from these domains never appear.
    """
    lines = ["! Title: repro Annoyances (cookie notices & cookiewalls)"]
    for domain in thirdparty.annoyances_domains():
        lines.append(f"*cdn.{domain}/*")
        lines.append(f"||{domain}^$third-party")
    lines.extend(
        [
            "! Cosmetic rules for common notice containers",
            "##.cmp-overlay-backdrop",
            '##div[id^="sp_message_container"]',
            "##.cookie-notice-slide-in",
        ]
    )
    return "\n".join(lines) + "\n"
