"""An ad-blocker: ABP-syntax filters, matching engine, uBlock stand-in.

Used to reproduce paper §4.5 (Bypassing Cookiewalls): with the
Annoyances lists enabled, uBlock Origin suppressed the cookiewall on
~70% of sites by blocking the CMP/SMP scripts that inject the wall.
"""

from repro.adblock.engine import FilterEngine, NaiveFilterEngine
from repro.adblock.filters import CosmeticFilter, NetworkFilter, parse_filter_list
from repro.adblock.lists import annoyances_list, easylist
from repro.adblock.ublock import UBlockOrigin

__all__ = [
    "NetworkFilter",
    "CosmeticFilter",
    "parse_filter_list",
    "FilterEngine",
    "NaiveFilterEngine",
    "easylist",
    "annoyances_list",
    "UBlockOrigin",
]
