"""Adblock Plus filter syntax (the subset uBlock lists rely on).

Network filters::

    ||ads.example.com^                      host anchor
    ||tracker.net^$script,third-party       with type/party options
    /pixel?id=                              substring
    *cdn.opencmp.net/*                      wildcard substring
    @@||cdn.goodsite.com^                   exception

Cosmetic filters::

    ##.ad-banner                            generic element hide
    example.de##div[data-promo]             domain-specific hide
    example.de#@#.ad-banner                 hide exception
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import FilterSyntaxError
from repro.httpkit import Request
from repro.urlkit import is_subdomain_of

_TYPE_OPTIONS = frozenset(
    {"script", "image", "stylesheet", "subdocument", "xhr", "other", "document"}
)


@dataclass
class NetworkFilter:
    """One parsed network filter line."""

    raw: str
    is_exception: bool = False
    anchor_domain: Optional[str] = None          # for ||domain^ filters
    substring_regex: Optional["re.Pattern"] = None
    #: The literal pattern body a substring regex was compiled from
    #: (kept so the engine can token-index the filter).
    pattern: Optional[str] = None
    resource_types: Set[str] = field(default_factory=set)
    third_party: Optional[bool] = None           # None = either
    include_domains: Set[str] = field(default_factory=set)
    exclude_domains: Set[str] = field(default_factory=set)

    def matches(self, request: Request) -> bool:
        if not self._pattern_matches(request):
            return False
        if self.resource_types and request.resource_type not in self.resource_types:
            return False
        if self.third_party is not None and request.is_third_party != self.third_party:
            return False
        initiator_host = request.initiator.host if request.initiator else ""
        if self.include_domains and not any(
            is_subdomain_of(initiator_host, d) for d in self.include_domains
        ):
            return False
        if any(is_subdomain_of(initiator_host, d) for d in self.exclude_domains):
            return False
        return True

    def _pattern_matches(self, request: Request) -> bool:
        if self.anchor_domain is not None:
            return is_subdomain_of(request.url.host, self.anchor_domain)
        if self.substring_regex is not None:
            return self.substring_regex.search(str(request.url)) is not None
        return False


@dataclass
class CosmeticFilter:
    """One parsed cosmetic (element hiding) filter line."""

    raw: str
    selector: str
    domains: Set[str] = field(default_factory=set)  # empty = generic
    is_exception: bool = False

    def applies_to(self, host: str) -> bool:
        if not self.domains:
            return True
        return any(is_subdomain_of(host, d) for d in self.domains)


def parse_filter_line(line: str) -> Optional[object]:
    """Parse a single filter-list line; None for comments/blank lines."""
    line = line.strip()
    if not line or line.startswith("!") or line.startswith("["):
        return None
    if "#@#" in line:
        domains_part, _, selector = line.partition("#@#")
        return _cosmetic(line, domains_part, selector, is_exception=True)
    if "##" in line:
        domains_part, _, selector = line.partition("##")
        return _cosmetic(line, domains_part, selector, is_exception=False)
    return _network(line)


def _cosmetic(raw: str, domains_part: str, selector: str, is_exception: bool) -> CosmeticFilter:
    selector = selector.strip()
    if not selector:
        raise FilterSyntaxError(f"cosmetic filter without selector: {raw!r}")
    domains = {
        d.strip().lower()
        for d in domains_part.split(",")
        if d.strip() and not d.strip().startswith("~")
    }
    return CosmeticFilter(raw=raw, selector=selector, domains=domains,
                          is_exception=is_exception)


def _network(raw: str) -> NetworkFilter:
    line = raw
    is_exception = line.startswith("@@")
    if is_exception:
        line = line[2:]
    options_text = ""
    # Options follow the last "$" that is not part of the pattern body.
    if "$" in line:
        pattern, _, options_text = line.rpartition("$")
        if not pattern:
            raise FilterSyntaxError(f"options without a pattern: {raw!r}")
        line = pattern
    nf = NetworkFilter(raw=raw, is_exception=is_exception)
    _parse_options(nf, options_text, raw)
    if line.startswith("||"):
        body = line[2:]
        if body.endswith("^"):
            body = body[:-1]
        if not body or "/" in body or "^" in body:
            raise FilterSyntaxError(f"unsupported host anchor: {raw!r}")
        nf.anchor_domain = body.lower()
        return nf
    if not line or line in ("*", "|"):
        raise FilterSyntaxError(f"empty filter pattern: {raw!r}")
    nf.substring_regex = _pattern_to_regex(line)
    nf.pattern = line
    return nf


def _parse_options(nf: NetworkFilter, options_text: str, raw: str) -> None:
    if not options_text:
        return
    for option in options_text.split(","):
        option = option.strip().lower()
        if not option:
            continue
        if option in _TYPE_OPTIONS:
            nf.resource_types.add(option)
        elif option == "third-party":
            nf.third_party = True
        elif option == "~third-party":
            nf.third_party = False
        elif option.startswith("domain="):
            for domain in option[len("domain="):].split("|"):
                domain = domain.strip().lower()
                if domain.startswith("~"):
                    nf.exclude_domains.add(domain[1:])
                elif domain:
                    nf.include_domains.add(domain)
        else:
            raise FilterSyntaxError(f"unsupported option {option!r} in {raw!r}")


def _pattern_to_regex(pattern: str) -> "re.Pattern":
    """Convert an ABP substring pattern to a compiled regex."""
    pattern = pattern.strip("|")
    parts = [re.escape(chunk) for chunk in pattern.split("*")]
    body = ".*".join(parts)
    # "^" is ABP's separator character: anything that is not alphanumeric
    # or one of -._% (or end of string).
    body = body.replace(r"\^", r"(?:[^\w\-.%]|$)")
    return re.compile(body)


#: Maximal alphanumeric runs — the unit of the engine's token index.
TOKEN_RE = re.compile(r"[0-9A-Za-z]+")


def good_filter_tokens(pattern: str) -> List[str]:
    """Tokens of *pattern* guaranteed to appear in every matching URL.

    A token is "good" (uBlock's term) when it is bounded on both sides
    by a literal non-alphanumeric character inside the pattern — then
    any URL the pattern matches must contain it as a *maximal*
    alphanumeric run, so the engine may index the filter under it.
    Runs touching the pattern edges or a ``*`` wildcard could be mere
    fragments of a longer URL token and are excluded; a ``^`` separator
    (which only matches non-word characters or the string end) is a
    valid boundary.
    """
    pattern = pattern.strip("|")
    out: List[str] = []
    for match in TOKEN_RE.finditer(pattern):
        start, end = match.start(), match.end()
        if start == 0 or pattern[start - 1] == "*":
            continue
        if end == len(pattern) or pattern[end] == "*":
            continue
        out.append(match.group())
    return out


def parse_filter_list(text: str) -> Tuple[List[NetworkFilter], List[CosmeticFilter]]:
    """Parse a full filter list into (network, cosmetic) filters."""
    network: List[NetworkFilter] = []
    cosmetic: List[CosmeticFilter] = []
    for line in text.splitlines():
        parsed = parse_filter_line(line)
        if parsed is None:
            continue
        if isinstance(parsed, NetworkFilter):
            network.append(parsed)
        else:
            cosmetic.append(parsed)
    return network, cosmetic
