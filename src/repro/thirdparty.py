"""The canonical third-party ecosystem of the synthetic web.

Real measurement studies, blocklists, and filter lists all reference
the same universe of third-party domains (ad networks, analytics,
CDNs, consent platforms).  This module is that shared universe for the
simulation: the web generator wires sites to these parties, the
justdomains-style blocklist classifies their cookies as tracking, and
the uBlock-style filter lists block them.

Kinds
-----
``ad``         advertising/tracking networks — set (many) cookies,
               listed in justdomains and EasyList.
``analytics``  measurement scripts — some tracking-listed.
``cdn``        content delivery — set benign cookies, never listed.
``social``     social widgets — tracking-listed.
``cmp``        Consent Management Platforms — serve banner scripts;
               a subset is on the Annoyances filter list (paper §4.5
               footnote: ``*cdn.opencmp.net/*`` etc.).
``smp``        Subscription Management Platforms (paper §4.4):
               contentpass and freechoice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ThirdParty:
    """One third-party service with its list memberships."""

    domain: str
    kind: str
    sets_cookies: bool = True
    #: Cookie domains classified as tracking by the justdomains list.
    in_justdomains: bool = False
    #: Blocked by uBlock's default (EasyList-style) lists.
    in_easylist: bool = False
    #: Blocked only when the Annoyances lists are enabled (paper §4.5).
    in_annoyances: bool = False


# ---------------------------------------------------------------------------
# Advertising networks (tracking).  A few real-world names plus a
# synthetic long tail, all classified as tracking and ad-blocked.
# ---------------------------------------------------------------------------
_REAL_AD_DOMAINS = [
    "doubleclick.net",
    "adnxs.com",
    "criteo.com",
    "pubmatic.com",
    "rubiconproject.com",
    "taboola.com",
    "outbrain.com",
    "amazon-adsystem.com",
    "openx.net",
    "smartadserver.com",
    "adform.net",
    "yieldlab.net",
    "indexexchange.com",
    "teads.tv",
    "sovrn.com",
]

_SYNTH_AD_STEMS = [
    "trackmax", "advault", "pixelgrid", "bidstreamr", "clickhive",
    "audiencely", "retargo", "admastery", "yieldora", "bannerbeam",
    "impressly", "syncpixel", "datahoover", "profilery", "admatcher",
    "bidfloor", "popreach", "viewlytics", "tagspinner", "cookiecast",
    "adfunnelr", "reachmatic", "monetizly", "trackline", "audimetry",
    "pixelforge", "admixdepot", "bannerwerk", "werbenetz", "anzeigenmax",
    "adkontor", "reklamehub", "spotwechsel", "klickprofi", "zielgruppe24",
    "mediavermarkt", "adleitung", "datenspur", "nutzerprofil", "werbeturm",
]

_SYNTH_AD_TLDS = ("com", "net", "io")


def _synthetic_ad_domains() -> List[str]:
    domains = []
    for index, stem in enumerate(_SYNTH_AD_STEMS):
        tld = _SYNTH_AD_TLDS[index % len(_SYNTH_AD_TLDS)]
        domains.append(f"{stem}.{tld}")
    return domains


# ---------------------------------------------------------------------------
# Analytics, CDNs, social widgets.
# ---------------------------------------------------------------------------
_ANALYTICS = [
    # (domain, tracking-listed)
    ("google-analytics.com", True),
    ("scorecardresearch.com", True),
    ("quantserve.com", True),
    ("hotjar.com", True),
    ("chartbeat.com", False),
    ("newrelic-metrics.com", False),
    ("statspulse.io", False),
    ("webmetrik.de", False),
    ("besucherzahl.de", False),
    ("matomo-cloud.net", False),
]

_CDN = [
    "cdnedge.net", "fastassets.com", "staticfarm.net", "webcachepro.com",
    "globalcdn.io", "assetsky.net", "speedyfiles.com", "mirrorgrid.net",
    "contentrelay.com", "edgevault.io", "bildercdn.de", "schnellcdn.de",
    "fontstatic.com", "scriptlib.net", "stylesheetcdn.com",
]

_SOCIAL = [
    ("facebook.net", True),
    ("twitter-widgets.com", True),
    ("linkedin-insights.com", True),
    ("sharebuttons.io", False),
    ("socialembed.net", False),
]

# ---------------------------------------------------------------------------
# Consent Management Platforms.  The first group is on the Annoyances
# filter lists (as in the paper's footnote 7); the "lesser-known" group
# evades blocking (paper §4.5: some cookiewalls use unlisted domains).
# ---------------------------------------------------------------------------
_CMP_LISTED = [
    "opencmp.net",
    "consentmanager.net",
    "usercentrics.eu",
    "sourcepoint-cmp.com",
    "consentframework.com",
]

_CMP_UNLISTED = [
    "privacyhub-cdn.com",
    "einwilligung-service.de",
    "consentloader.net",
]

# ---------------------------------------------------------------------------
# Subscription Management Platforms (paper §4.4).
# ---------------------------------------------------------------------------
SMP_CONTENTPASS = "contentpass.net"
SMP_FREECHOICE = "freechoice.club"
_SMP = [SMP_CONTENTPASS, SMP_FREECHOICE]


def _build_registry() -> Dict[str, ThirdParty]:
    registry: Dict[str, ThirdParty] = {}

    def add(party: ThirdParty) -> None:
        registry[party.domain] = party

    for domain in _REAL_AD_DOMAINS + _synthetic_ad_domains():
        add(ThirdParty(domain, "ad", sets_cookies=True,
                       in_justdomains=True, in_easylist=True))
    for domain, tracked in _ANALYTICS:
        add(ThirdParty(domain, "analytics", sets_cookies=True,
                       in_justdomains=tracked, in_easylist=tracked))
    for domain in _CDN:
        add(ThirdParty(domain, "cdn", sets_cookies=True))
    for domain, tracked in _SOCIAL:
        add(ThirdParty(domain, "social", sets_cookies=True,
                       in_justdomains=tracked, in_easylist=False))
    for domain in _CMP_LISTED:
        add(ThirdParty(domain, "cmp", sets_cookies=False,
                       in_annoyances=True))
    for domain in _CMP_UNLISTED:
        add(ThirdParty(domain, "cmp", sets_cookies=False))
    for domain in _SMP:
        add(ThirdParty(domain, "smp", sets_cookies=True,
                       in_annoyances=True))
    return registry


REGISTRY: Dict[str, ThirdParty] = _build_registry()


def all_parties() -> List[ThirdParty]:
    """Every third party, in a stable order."""
    return [REGISTRY[d] for d in sorted(REGISTRY)]


def by_kind(kind: str) -> List[ThirdParty]:
    """All parties of one kind, in a stable order."""
    return [p for p in all_parties() if p.kind == kind]


def ad_domains() -> List[str]:
    return [p.domain for p in by_kind("ad")]


def cdn_domains() -> List[str]:
    return [p.domain for p in by_kind("cdn")]


def tracking_domains() -> List[str]:
    """Domains the justdomains-style list marks as tracking."""
    return [p.domain for p in all_parties() if p.in_justdomains]


def easylist_domains() -> List[str]:
    return [p.domain for p in all_parties() if p.in_easylist]


def annoyances_domains() -> List[str]:
    return [p.domain for p in all_parties() if p.in_annoyances]


def cmp_domains(listed: bool = True) -> List[str]:
    return [
        p.domain for p in by_kind("cmp") if p.in_annoyances == listed
    ]


def serving_host(domain: str) -> str:
    """The host third parties serve scripts from (``cdn.`` prefix)."""
    return f"cdn.{domain}"
