"""Request routing between the browser and simulated origin servers."""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConnectionRefused, DNSError
from repro.httpkit import Request, Response
from repro.netsim.server import OriginServer
from repro.resilience.chaos import ChaosEngine
from repro.resilience.clock import VirtualClock, spend
from repro.urlkit import registrable_domain
from repro.vantage import VantagePoint


@dataclass
class VisitorContext:
    """What an origin server can observe about the visiting client."""

    vp: VantagePoint
    user_agent: str = "Mozilla/5.0 (X11; Linux x86_64) repro-openwpm/1.0"
    #: OpenWPM-style bot mitigation: when True the client is hard to
    #: distinguish from a regular browser.
    stealth: bool = True
    #: Monotonic visit sequence number, lets servers rotate ads between
    #: repeated visits the way real ad auctions do.
    visit_id: int = 0

    @property
    def looks_like_bot(self) -> bool:
        """True when naive server-side bot detection would flag us."""
        return (not self.stealth) or "HeadlessCrawler" in self.user_agent


class Network:
    """Routes requests by registrable domain to origin servers."""

    def __init__(self) -> None:
        self._servers: Dict[str, OriginServer] = {}
        self._exact_hosts: Dict[str, OriginServer] = {}
        self._unreachable: set = set()
        self._visit_counter = itertools.count(1)
        #: Total number of requests served (for stats/benchmarks).
        #: Updated under a lock: parallel crawl-engine workers fetch
        #: concurrently and a bare ``+=`` would lose increments.
        self.request_count = 0
        self._stats_lock = threading.Lock()
        #: Simulated per-request network round-trip time in seconds.
        #: Zero (the default) keeps the simulation purely compute-bound;
        #: benchmarks set it to model the network-bound regime of real
        #: crawls, where the parallel crawl engine's thread workers
        #: overlap the waiting.
        self.latency = 0.0
        #: How latency is paid: ``"virtual"`` (default) advances the
        #: virtual clock — deterministic, finishes in microseconds —
        #: while ``"real"`` blocks in ``time.sleep`` for benchmarks
        #: that measure genuine wall-clock overlap.
        self.latency_mode = "virtual"
        #: Virtual time spent on this network (latency, chaos spikes,
        #: retry backoff all accrue here instead of sleeping).
        self.clock = VirtualClock()
        #: Installed chaos plane, or None (the fault-free default).
        self.chaos: Optional[ChaosEngine] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, domain: str, server: OriginServer) -> None:
        """Register *server* for a registrable domain (and subdomains)."""
        site = registrable_domain(domain) or domain.lower()
        self._servers[site] = server

    def register_host(self, host: str, server: OriginServer) -> None:
        """Register *server* for one exact host (overrides domain route)."""
        self._exact_hosts[host.lower()] = server

    def mark_unreachable(self, domain: str) -> None:
        """Make a domain refuse connections (dead site in the toplist)."""
        site = registrable_domain(domain) or domain.lower()
        self._unreachable.add(site)

    def knows(self, host: str) -> bool:
        """True when DNS would resolve *host*."""
        if host.lower() in self._exact_hosts:
            return True
        site = registrable_domain(host) or host.lower()
        return site in self._servers or site in self._unreachable

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def next_visit_id(self) -> int:
        """Allocate a fresh visit id (used by browsers per navigation)."""
        return next(self._visit_counter)

    def resolve(self, host: str) -> OriginServer:
        """Resolve *host* to a server, raising DNS/connection errors."""
        host = host.lower()
        if host in self._exact_hosts:
            return self._exact_hosts[host]
        site = registrable_domain(host) or host
        if site in self._unreachable:
            raise ConnectionRefused(f"{host} refused the connection")
        server = self._servers.get(site)
        if server is None:
            raise DNSError(f"no DNS record for {host}")
        return server

    def fetch(self, request: Request, visitor: VisitorContext) -> Response:
        """Route *request* to its origin server and return the response.

        Pays the configured latency (plus any chaos latency spike) on
        the virtual clock — which also enforces the active task's
        attempt deadline — then gives the chaos plane its chance to
        inject a fault before the request reaches an origin server.
        """
        host = request.url.host
        chaos = self.chaos
        cost = self.latency
        if cost > 0.0 and self.latency_mode == "real":
            time.sleep(cost)
            cost = 0.0
        if chaos is not None:
            cost += chaos.latency_spike(host, visitor.visit_id)
        spend(self.clock, cost)
        if chaos is not None:
            chaos.inject(host, visitor.visit_id)
        server = self.resolve(host)
        with self._stats_lock:
            self.request_count += 1
        return server.handle(request, visitor)
