"""The simulated network: DNS resolution and origin-server routing.

The :class:`Network` plays the role of the Internet between the
measurement browser and the websites: it resolves hostnames, routes
:class:`~repro.httpkit.Request` objects to registered
:class:`OriginServer` instances, and passes along the visitor context
(vantage point) that real servers would derive from geo-IP.
"""

from repro.netsim.network import Network, VisitorContext
from repro.netsim.server import OriginServer, StaticServer

__all__ = ["Network", "VisitorContext", "OriginServer", "StaticServer"]
