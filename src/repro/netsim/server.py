"""Origin server abstractions for the simulated network."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import DisconnectError
from repro.httpkit import Headers, Request, Response

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.network import VisitorContext


class OriginServer:
    """Base class: anything that answers HTTP requests for some site."""

    def handle(self, request: Request, visitor: "VisitorContext") -> Response:
        """Produce a response for *request* from *visitor*'s location."""
        raise NotImplementedError

    # Convenience response builders -------------------------------------
    @staticmethod
    def html(request: Request, body: str, status: int = 200) -> Response:
        headers = Headers([("content-type", "text/html; charset=utf-8")])
        return Response(request=request, status=status, headers=headers, body=body)

    @staticmethod
    def effects(request: Request, payload: str) -> Response:
        """A "script" response whose body is a JSON effect list.

        The browser executes these effects against the embedding page,
        modelling what third-party JavaScript (CMP/SMP scripts, ad
        loaders) does on real sites.
        """
        headers = Headers([("content-type", "application/x-dom-effects")])
        return Response(request=request, status=200, headers=headers, body=payload)

    @staticmethod
    def pixel(request: Request) -> Response:
        headers = Headers([("content-type", "image/gif")])
        return Response(request=request, status=200, headers=headers, body="GIF89a")

    @staticmethod
    def not_found(request: Request) -> Response:
        return Response(request=request, status=404, body="not found")


class StaticServer(OriginServer):
    """Serves one fixed HTML body for every path (useful in tests)."""

    def __init__(self, body: str, status: int = 200,
                 set_cookies: Optional[list] = None) -> None:
        self.body = body
        self.status = status
        self.set_cookies = list(set_cookies or [])

    def handle(self, request: Request, visitor: "VisitorContext") -> Response:
        response = self.html(request, self.body, self.status)
        for header in self.set_cookies:
            response.add_cookie(header)
        return response


class FlakyServer(OriginServer):
    """Wraps an origin server with a deterministic failure budget.

    The first *failures* requests raise *error* (a transient
    :class:`~repro.errors.NetworkError` by default) and every later
    request is delegated to the wrapped server — the flaky-then-
    recovering host the resilience layer's retry/backoff loop must
    ride out.  The budget is counted under a lock so concurrent shard
    workers see one consistent recovery point.
    """

    def __init__(self, inner: OriginServer, failures: int = 1,
                 error: Optional[type] = None) -> None:
        self.inner = inner
        self.error = error or DisconnectError
        self._remaining = failures
        self._lock = threading.Lock()

    def handle(self, request: Request, visitor: "VisitorContext") -> Response:
        with self._lock:
            failing = self._remaining > 0
            if failing:
                self._remaining -= 1
        if failing:
            raise self.error(
                f"{request.url.host} dropped the connection (flaky host)"
            )
        return self.inner.handle(request, visitor)
