"""Data model for generated websites (the world's ground truth)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple


class BannerKind(enum.Enum):
    """What kind of consent UI a site presents."""

    NONE = "none"
    REGULAR = "regular"          # accept (+ usually reject) banner
    COOKIEWALL = "cookiewall"    # accept-or-pay (the paper's subject)
    BAIT = "bait"                # regular banner whose text mentions a
                                 # subscription price (false-positive bait)


#: Wall embedding styles (paper §3: 76 shadow, 132 iframe, 72 main).
PLACEMENTS = ("main", "iframe", "shadow-open", "shadow-closed")

#: How the wall is delivered to the page.
SERVINGS = ("inline", "cmp", "smp")


@dataclass(frozen=True)
class WallSpec:
    """Cookiewall parameters for one site."""

    placement: str                   # one of PLACEMENTS
    serving: str                     # one of SERVINGS
    provider: Optional[str]          # CMP domain or SMP name (None=inline)
    monthly_price_cents: int         # normalised price in € cents
    display_currency: str            # EUR / USD / GBP / CHF / AUD
    billing_period: str              # "month" or "year"
    regions: FrozenSet[str]          # VP codes where the wall shows
    anti_adblock: bool = False       # shows 'disable your ad blocker'
    fp_scroll_lock: bool = False     # first-party scroll lock script

    @property
    def blocked_by_annoyances(self) -> bool:
        """Whether uBlock's Annoyances lists suppress this wall.

        Derived, not measured: the measured equivalent comes from the
        §4.5 experiment.  Used only for test invariants.
        """
        if self.serving == "inline":
            return False
        if self.serving == "smp":
            return True
        from repro import thirdparty

        return self.provider in thirdparty.annoyances_domains()


@dataclass
class SiteSpec:
    """Everything the origin server needs to render one website."""

    domain: str
    tld: str
    language: str
    category: str
    reachable: bool = True
    #: country code -> "top1k" | "top10k" for each toplist listing.
    listings: Dict[str, str] = field(default_factory=dict)
    banner: BannerKind = BannerKind.NONE
    #: For regular banners: "eu" (GDPR visitors only) or "all".
    banner_audience: str = "eu"
    reject_button: bool = True
    #: CMP serving the (regular) banner, if any.
    cmp: Optional[str] = None
    wall: Optional[WallSpec] = None
    #: SMP membership (also set for partners outside the toplists).
    smp: Optional[str] = None
    #: Site deploys naive bot detection (paper §3, Limitations): when a
    #: non-stealth crawler visits, it serves a challenge page instead.
    bot_sensitive: bool = False

    # -- cookie/tracker wiring ------------------------------------------
    fp_plain: int = 3                # first-party cookies pre-consent
    fp_consented: int = 12           # first-party cookies post-consent
    ad_partners: Tuple[str, ...] = ()
    cookies_per_ad: int = 1
    sync_rate: float = 0.3
    extra_ads_max: int = 1
    cdn_partners: Tuple[str, ...] = ()
    analytics_partners: Tuple[str, ...] = ()

    # -- page copy --------------------------------------------------------
    #: Indexes into the language corpus for the article paragraphs.
    sentence_indexes: Tuple[int, ...] = (0, 1, 2)
    site_name: str = ""

    # ------------------------------------------------------------------
    @property
    def is_wall(self) -> bool:
        return self.banner is BannerKind.COOKIEWALL

    @property
    def has_banner(self) -> bool:
        return self.banner is not BannerKind.NONE

    @property
    def consent_cookie(self) -> str:
        """The first-party cookie that stores the visitor's choice."""
        return "cw_consent" if self.is_wall else "cmp_consent"

    def on_list(self, country: str, bucket: Optional[str] = None) -> bool:
        got = self.listings.get(country)
        if got is None:
            return False
        return bucket is None or got == bucket

    def wall_shows_for(self, vp_code: str, in_eu: bool) -> bool:
        """Ground truth: does the wall show for this vantage point?"""
        if self.wall is None:
            return False
        return vp_code in self.wall.regions

    def __repr__(self) -> str:
        return f"<SiteSpec {self.domain} {self.banner.value}>"
