"""Deterministic, language-flavoured domain name generation."""

from __future__ import annotations

import random
from typing import Dict, List, Set

_STEMS: Dict[str, List[str]] = {
    "de": [
        "nachrichten", "zeitung", "stadtanzeiger", "sportwelt", "wetter",
        "boerse", "autohaus", "reisefieber", "kochstube", "technikblick",
        "spielehalle", "gesundleben", "immowelt", "modetrend", "musikbox",
        "heimwerker", "gartenzeit", "finanztipp", "lokalblatt", "kinowelt",
        "buchecke", "familienzeit", "studienwahl", "jobboerse", "tierfreund",
    ],
    "en": [
        "dailynews", "sportsline", "weatherhub", "marketwatcher", "autozone",
        "travelnest", "cookbook", "technews", "gamerden", "healthline",
        "homefinder", "fashionfeed", "musicbay", "moviegeek", "bookworm",
        "jobsearch", "petcorner", "gardenlife", "financetips", "localvoice",
        "campusdaily", "foodcritic", "streetstyle", "cityguide", "nightowl",
    ],
    "it": [
        "giornale", "notizie", "sportivo", "meteoitalia", "borsaoggi",
        "automondo", "viaggiare", "cucinare", "tecnologia", "saluteviva",
    ],
    "sv": [
        "nyheter", "sportbladet", "vaderkollen", "borsliv", "bilvarlden",
        "reselust", "matglad", "teknikkollen", "halsoliv", "bostadsnytt",
    ],
    "fr": [
        "journal", "actualites", "sportif", "meteofrance", "boursier",
        "automoto", "voyageur", "cuisinier", "technologie", "santevie",
    ],
    "es": [
        "diario", "noticias", "deportivo", "tiempohoy", "bolsaviva",
        "automundo", "viajero", "cocinar", "tecnologia", "saludhoy",
    ],
    "pt": [
        "jornal", "noticias", "esportivo", "tempoagora", "bolsaviva",
        "automundo", "viajante", "cozinhar", "tecnologia", "saudeviva",
    ],
    "nl": [
        "nieuwsblad", "sportwereld", "weerbericht", "beurskoers",
        "autowereld", "reislust", "kookplezier", "techniek", "gezondleven",
        "woonnieuws",
    ],
    "da": [
        "nyhederne", "sportsliv", "vejrudsigt", "borsnyt", "bilverden",
        "rejselyst", "madglad", "teknikfokus", "sundliv", "boligny",
    ],
    "zu": [
        "izindaba", "ezemidlalo", "isimozulu", "imakethe", "izimoto",
        "uhambo", "ukupheka", "ubuchwepheshe", "impilo", "ikhaya",
    ],
}

_SUFFIXES = [
    "", "24", "-online", "portal", "aktuell", "plus", "direct", "zone",
    "base", "point", "spot", "live", "now", "pro", "hq", "city", "land",
]


def make_domain(
    rng: random.Random, language: str, tld: str, used: Set[str]
) -> str:
    """Generate a unique registrable domain for a language/TLD."""
    stems = _STEMS.get(language, _STEMS["en"])
    for _ in range(200):
        stem = rng.choice(stems)
        suffix = rng.choice(_SUFFIXES)
        candidate = f"{stem}{suffix}.{tld}"
        if candidate not in used:
            used.add(candidate)
            return candidate
    # Dense namespace: fall back to numbered names (always unique).
    counter = 1
    stem = rng.choice(stems)
    while f"{stem}{counter}.{tld}" in used:
        counter += 1
    candidate = f"{stem}{counter}.{tld}"
    used.add(candidate)
    return candidate


def site_title(domain: str) -> str:
    """A human-readable site name derived from the domain."""
    label = domain.split(".")[0]
    return label.replace("-", " ").title()
