"""World assembly: build the complete synthetic web.

:func:`build_world` deterministically creates the site population, the
toplists, the third-party/CMP/SMP servers, the category database and
the tracking blocklist, and wires everything into one
:class:`~repro.netsim.Network`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import thirdparty
from repro.blocklists import JustDomainsList, builtin_list
from repro.browser import Browser
from repro.categorize import WebFilterDB
from repro.errors import WorldGenerationError
from repro.httpkit import CookieJar
from repro.netsim import Network
from repro.rng import SeedSequence
from repro.smp import SMPPlatform, SMPServer
from repro.vantage import VANTAGE_POINTS, get_vantage_point
from repro.webgen.config import (
    COUNTRIES,
    COUNTRY_LANGUAGES,
    COUNTRY_TLDS,
    GENERIC_CATEGORY_SHARES,
    PLACEMENT_MIX,
    PRICE_MATRIX,
    SERVING_MIX,
    VIS_DE_ONLY,
    VIS_EU_ONLY,
    VP_EXCLUSIONS,
    WALL_CATEGORY_SHARES,
    WALL_COHORTS,
    WorldConfig,
    apportion,
)
from repro.webgen.names import make_domain, site_title
from repro.webgen.sites import SiteServer
from repro.webgen.spec import BannerKind, SiteSpec, WallSpec
from repro.webgen.toplist import BUCKET_TOP10K, Toplist, union_of
from repro.webgen.trackers import AnalyticsServer, CdnServer, CMPServer, TrackerServer
from repro.lang.corpus import CORPORA

_ALL_VPS = frozenset(VANTAGE_POINTS)
_EU_VPS = frozenset({"DE", "SE"})

#: Top-1k wall membership per toplist country (full scale: §4.1 — 8.5%
#: of the German top 1k show walls).
_WALL_TOP1K = {"DE": 85, "SE": 2, "AU": 1, "BR": 0}


@dataclass
class World:
    """The assembled synthetic web plus its ground truth."""

    config: WorldConfig
    network: Network
    sites: Dict[str, SiteSpec]
    toplists: Dict[str, Toplist]
    crawl_targets: List[str]           # reachable union (paper: 45,222)
    category_db: WebFilterDB
    tracking_list: JustDomainsList
    platforms: Dict[str, SMPPlatform]
    wall_domains: Set[str]             # true walls on the toplists (280)
    bait_domains: Set[str]             # false-positive bait sites
    offlist_partner_domains: Dict[str, List[str]]
    #: Months of :func:`~repro.webgen.evolve.evolve_world` drift applied
    #: on top of the seeded build (0 = the baseline snapshot).  Part of
    #: the crawl engine's checkpoint fingerprint: two snapshots share a
    #: seed but not a web, and must never resume each other's runs.
    evolution_months: int = 0

    def browser(
        self,
        vp_code: str,
        *,
        extensions: Sequence = (),
        instruments: Sequence = (),
        jar: Optional[CookieJar] = None,
        stealth: bool = True,
        visit_ids: Optional[Callable[[], int]] = None,
    ) -> Browser:
        """A fresh measurement browser located at a vantage point."""
        vp = get_vantage_point(vp_code)
        return Browser(
            self.network, vp, jar=jar, extensions=extensions,
            instruments=instruments, stealth=stealth, visit_ids=visit_ids,
        )

    def spec(self, domain: str) -> SiteSpec:
        return self.sites[domain]

    def partner_domains(self, platform: str) -> List[str]:
        """All partner domains of an SMP (on- and off-toplist)."""
        return list(self.platforms[platform].partner_domains)

    def stats(self) -> Dict[str, object]:
        """Headline ground-truth statistics (for docs and sanity tests)."""
        return {
            "sites": len(self.sites),
            "crawl_targets": len(self.crawl_targets),
            "toplists": {c: len(t) for c, t in self.toplists.items()},
            "walls": len(self.wall_domains),
            "bait": len(self.bait_domains),
            "contentpass_partners": len(self.platforms["contentpass"].partner_domains),
            "freechoice_partners": len(self.platforms["freechoice"].partner_domains),
        }


# ---------------------------------------------------------------------------
# Build steps
# ---------------------------------------------------------------------------

def build_world(
    config: Optional[WorldConfig] = None,
    *,
    seed: Optional[int] = None,
    scale: Optional[float] = None,
) -> World:
    """Build the synthetic web.

    Either pass a full :class:`WorldConfig` or override ``seed`` /
    ``scale`` of the defaults.  ``scale=1.0`` is the paper-scale world
    (~45k reachable sites); tests typically use ``scale=0.02``.
    """
    if config is None:
        config = WorldConfig(
            seed=seed if seed is not None else 2023,
            scale=scale if scale is not None else 1.0,
        )
    builder = _WorldBuilder(config)
    return builder.build()


class _WorldBuilder:
    def __init__(self, config: WorldConfig) -> None:
        self.cfg = config
        self.root = SeedSequence(config.seed)
        self.used_domains: Set[str] = {
            p.domain for p in thirdparty.all_parties()
        }
        self.sites: Dict[str, SiteSpec] = {}
        self.listed: Dict[str, List[str]] = {c: [] for c in COUNTRIES}

    # ------------------------------------------------------------------
    def build(self) -> World:
        walls = self._build_walls()
        bait = self._build_bait()
        platforms = self._build_platforms(walls)
        self._build_ordinary_sites()
        toplists = self._build_toplists(walls, bait)
        self._mark_unreachable()
        network = self._build_network(platforms)
        category_db = self._build_category_db()
        reachable_union = [
            d for d in union_of(toplists.values()) if self.sites[d].reachable
        ]
        return World(
            config=self.cfg,
            network=network,
            sites=self.sites,
            toplists=toplists,
            crawl_targets=reachable_union,
            category_db=category_db,
            tracking_list=builtin_list(),
            platforms=platforms,
            wall_domains={s.domain for s in walls},
            bait_domains={s.domain for s in bait},
            offlist_partner_domains={
                name: [
                    d for d in platform.partner_domains
                    if not self.sites[d].listings
                ]
                for name, platform in platforms.items()
            },
        )

    # ------------------------------------------------------------------
    # Cookiewall population
    # ------------------------------------------------------------------
    def _build_walls(self) -> List[SiteSpec]:
        cfg = self.cfg
        n_walls = cfg.n_walls
        rng = self.root.stream("walls")

        cohort_counts = apportion([c[0] for c in WALL_COHORTS], n_walls)
        slots: List[Tuple[str, str, str, str]] = []
        for (count, (_, country, tld, lang, vis)) in zip(cohort_counts, WALL_COHORTS):
            slots.extend([(country, tld, lang, vis)] * count)

        serving = self._assign_serving(slots, rng)
        placement = self._assign_placement(n_walls, rng)
        prices = self._assign_prices(slots, serving, rng)
        regions = self._assign_regions(slots, rng)
        categories = self._expand_shares(WALL_CATEGORY_SHARES, n_walls, rng)
        quirks = self._assign_quirks(serving, n_walls)

        specs: List[SiteSpec] = []
        for index, (country, tld, lang, _vis) in enumerate(slots):
            domain = make_domain(rng, lang, tld, self.used_domains)
            serve_kind, provider = serving[index]
            wall = WallSpec(
                placement=placement[index],
                serving=serve_kind,
                provider=provider,
                monthly_price_cents=prices[index],
                display_currency=self._currency_for(tld, country, rng),
                billing_period=self._period_for(serve_kind, rng),
                regions=regions[index],
                anti_adblock=(index == quirks[0]),
                fp_scroll_lock=(index == quirks[1]),
            )
            spec = SiteSpec(
                domain=domain,
                tld=tld,
                language=lang,
                category=categories[index],
                banner=BannerKind.COOKIEWALL,
                reject_button=False,
                wall=wall,
                smp=(provider.split(".")[0] if serve_kind == "smp" else None),
                site_name=site_title(domain),
                bot_sensitive=rng.random() < self.cfg.bot_sensitive_rate,
            )
            self._wire_wall_cookies(spec, rng)
            self._set_sentences(spec, rng)
            self.sites[domain] = spec
            self.listed[country].append(domain)
            specs.append(spec)
        return specs

    def _assign_serving(
        self, slots: List[Tuple[str, str, str, str]], rng: random.Random
    ) -> List[Tuple[str, Optional[str]]]:
        n = len(slots)
        counts = apportion(dict(SERVING_MIX), n)
        de_indices = [i for i, s in enumerate(slots) if s[1] == "de"]
        other_indices = [i for i, s in enumerate(slots) if s[1] != "de"]
        rng.shuffle(de_indices)
        rng.shuffle(other_indices)
        ordered = de_indices + other_indices

        result: List[Optional[Tuple[str, Optional[str]]]] = [None] * n
        cursor = 0
        listed_cmps = thirdparty.cmp_domains(listed=True)
        unlisted_cmps = thirdparty.cmp_domains(listed=False)
        plan: List[Tuple[str, Optional[str], int]] = [
            ("smp", thirdparty.SMP_CONTENTPASS, counts["smp:contentpass"]),
            ("smp", thirdparty.SMP_FREECHOICE, counts["smp:freechoice"]),
            ("cmp", None, counts["cmp-listed"]),
            ("cmp", "unlisted", counts["cmp-unlisted"]),
            ("inline", None, counts["inline"]),
        ]
        for kind, provider, count in plan:
            for k in range(count):
                index = ordered[cursor]
                cursor += 1
                if kind == "cmp":
                    pool = unlisted_cmps if provider == "unlisted" else listed_cmps
                    result[index] = ("cmp", pool[k % len(pool)])
                elif kind == "smp":
                    result[index] = ("smp", provider)
                else:
                    result[index] = ("inline", None)
        assert all(r is not None for r in result)
        return result  # type: ignore[return-value]

    def _assign_placement(self, n: int, rng: random.Random) -> List[str]:
        counts = apportion(dict(PLACEMENT_MIX), n)
        out: List[str] = []
        for placement, count in counts.items():
            out.extend([placement] * count)
        rng.shuffle(out)
        return out

    def _assign_prices(
        self,
        slots: List[Tuple[str, str, str, str]],
        serving: List[Tuple[str, Optional[str]]],
        rng: random.Random,
    ) -> List[int]:
        prices: List[Optional[int]] = [None] * len(slots)
        by_tld: Dict[str, List[int]] = {}
        smp_de = 0
        for index, (_, tld, _, _) in enumerate(slots):
            if serving[index][0] == "smp":
                prices[index] = self.cfg.smp_price_cents
                if tld == "de":
                    smp_de += 1
            else:
                by_tld.setdefault(tld, []).append(index)
        for tld, indices in by_tld.items():
            weights = dict(PRICE_MATRIX.get(tld, {3: 1}))
            if tld == "de":
                weights[3] = max(weights.get(3, 0) - self.cfg.scaled(138), 1)
            buckets = apportion(weights, len(indices))
            bucket_list: List[int] = []
            for bucket, count in buckets.items():
                bucket_list.extend([bucket] * count)
            rng.shuffle(bucket_list)
            for index, bucket in zip(indices, bucket_list):
                offset = rng.choice((1, 1, 1, 5, 10, 50))
                prices[index] = max(bucket * 100 - offset, (bucket - 1) * 100 + 1)
        assert all(p is not None for p in prices)
        return prices  # type: ignore[return-value]

    def _assign_regions(
        self, slots: List[Tuple[str, str, str, str]], rng: random.Random
    ) -> List[FrozenSet[str]]:
        regions: List[FrozenSet[str]] = []
        global_indices: List[int] = []
        for index, (_, _, _, vis) in enumerate(slots):
            if vis == VIS_EU_ONLY:
                regions.append(_EU_VPS)
            elif vis == VIS_DE_ONLY:
                regions.append(frozenset({"DE"}))
            else:
                regions.append(_ALL_VPS)
                global_indices.append(index)
        # Carve out per-VP exclusions from the globally visible walls.
        total_exclusions = self.cfg.scaled(sum(VP_EXCLUSIONS.values()))
        counts = apportion(dict(VP_EXCLUSIONS), total_exclusions)
        news_index = next(
            (i for i in global_indices if slots[i][1] == "news"), None
        )
        # German-language global walls are the exclusion pool.
        pool = [
            i for i in global_indices
            if slots[i][2] == "de" and slots[i][0] == "DE" and i != news_index
        ]
        rng.shuffle(pool)
        cursor = 0
        exclusion_map: Dict[int, Set[str]] = {}
        for vp_code, count in counts.items():
            picks: List[int] = []
            if vp_code in ("USE", "USW") and news_index is not None and count > 0:
                picks.append(news_index)
                count -= 1
            take = pool[cursor:cursor + count]
            cursor += count
            picks.extend(take)
            for index in picks:
                exclusion_map.setdefault(index, set()).add(vp_code)
        for index, excluded in exclusion_map.items():
            regions[index] = frozenset(_ALL_VPS - excluded)
        return regions

    def _assign_quirks(
        self, serving: List[Tuple[str, Optional[str]]], n: int
    ) -> Tuple[int, int]:
        """Indices of the anti-adblock and scroll-lock sites (§4.5)."""
        if n < 50:
            return (-1, -1)
        blocked = [
            i for i, (kind, provider) in enumerate(serving)
            if kind == "cmp" and provider in thirdparty.cmp_domains(listed=True)
        ]
        if len(blocked) < 2:
            return (-1, -1)
        return (blocked[0], blocked[1])

    def _currency_for(self, tld: str, country: str, rng: random.Random) -> str:
        if tld in ("de", "at", "it", "fr", "es"):
            return "EUR"
        if country == "AU":
            return "AUD"
        return rng.choices(
            ["EUR", "USD", "GBP", "CHF"], weights=[0.70, 0.12, 0.09, 0.09]
        )[0]

    def _period_for(self, serving_kind: str, rng: random.Random) -> str:
        if serving_kind == "smp":
            return "month"
        return "year" if rng.random() < 0.15 else "month"

    def _wire_wall_cookies(self, spec: SiteSpec, rng: random.Random) -> None:
        cfg = self.cfg
        # Only contentpass partners are measurably "light" trackers on
        # accept (Figure 5); freechoice partners and independent walls
        # run the heavy ad stacks that dominate Figure 4's medians.
        # A small share of contentpass partners nevertheless runs an
        # extreme stack — the paper's ">100 tracking cookies" outliers.
        light = spec.smp == "contentpass"
        heavy_outlier = light and rng.random() < 0.04
        profile = cfg.profile_smp_partner if light else cfg.profile_wall
        sigma = 0.30 if light else 0.42
        spec.fp_plain = max(profile.fp_plain + rng.choice((-1, 0, 0, 1)), 2)
        fp_low = 6 if light else 14
        spec.fp_consented = _lognorm_int(
            rng, profile.fp_consented, 0.26,
            low=max(spec.fp_plain, fp_low), high=45,
        )
        ads_low, ads_high = (2, 15) if light else (9, 40)
        if heavy_outlier:
            ads_low, ads_high, sigma = (36, 45, 0.1)
        n_ads = _lognorm_int(rng, profile.ad_partners, sigma, low=ads_low, high=ads_high)
        pool = thirdparty.ad_domains()
        spec.ad_partners = tuple(rng.sample(pool, min(n_ads, len(pool))))
        spec.cookies_per_ad = 2
        spec.sync_rate = profile.sync_rate
        spec.extra_ads_max = profile.extra_ads_max
        spec.cdn_partners = tuple(
            rng.sample(thirdparty.cdn_domains(), profile.cdn_partners)
        )
        analytics_pool = [p.domain for p in thirdparty.by_kind("analytics")]
        spec.analytics_partners = tuple(rng.sample(analytics_pool, 2))

    # ------------------------------------------------------------------
    # Bait sites (§3: the 5 false positives, precision 98.2%)
    # ------------------------------------------------------------------
    def _build_bait(self) -> List[SiteSpec]:
        rng = self.root.stream("bait")
        specs = []
        for _ in range(self.cfg.n_bait):
            domain = make_domain(rng, "de", "de", self.used_domains)
            spec = SiteSpec(
                domain=domain,
                tld="de",
                language="de",
                category="News and Media",
                banner=BannerKind.BAIT,
                banner_audience="eu",
                reject_button=True,
                site_name=site_title(domain),
            )
            self._wire_regular_cookies(spec, rng)
            self._set_sentences(spec, rng)
            self.sites[domain] = spec
            self.listed["DE"].append(domain)
            specs.append(spec)
        return specs

    # ------------------------------------------------------------------
    # SMP platforms and their off-toplist partners
    # ------------------------------------------------------------------
    def _build_platforms(self, walls: List[SiteSpec]) -> Dict[str, SMPPlatform]:
        platforms = {
            "contentpass": SMPPlatform(
                "contentpass", thirdparty.SMP_CONTENTPASS,
                self.cfg.smp_price_cents,
            ),
            "freechoice": SMPPlatform(
                "freechoice", thirdparty.SMP_FREECHOICE,
                self.cfg.smp_price_cents,
            ),
        }
        for spec in walls:
            if spec.smp:
                platforms[spec.smp].partner_domains.append(spec.domain)
        rng = self.root.stream("offlist-partners")
        targets = {
            "contentpass": self.cfg.n_contentpass,
            "freechoice": self.cfg.n_freechoice,
        }
        placements = list(PLACEMENT_MIX)
        for name, platform in platforms.items():
            missing = max(targets[name] - len(platform.partner_domains), 0)
            for k in range(missing):
                domain = make_domain(rng, "de", "de", self.used_domains)
                wall = WallSpec(
                    placement=placements[k % len(placements)],
                    serving="smp",
                    provider=platform.domain,
                    monthly_price_cents=self.cfg.smp_price_cents,
                    display_currency="EUR",
                    billing_period="month",
                    regions=_ALL_VPS,
                )
                spec = SiteSpec(
                    domain=domain,
                    tld="de",
                    language="de",
                    category="News and Media",
                    banner=BannerKind.COOKIEWALL,
                    reject_button=False,
                    wall=wall,
                    smp=name,
                    site_name=site_title(domain),
                )
                self._wire_wall_cookies(spec, rng)
                self._set_sentences(spec, rng)
                self.sites[domain] = spec
                platform.partner_domains.append(domain)
        return platforms

    # ------------------------------------------------------------------
    # Ordinary site population
    # ------------------------------------------------------------------
    def _build_ordinary_sites(self) -> None:
        cfg = self.cfg
        rng = self.root.stream("ordinary")
        categories = itertools.cycle(
            self._expand_shares(GENERIC_CATEGORY_SHARES, 500, rng)
        )

        # Global sites: on every toplist.
        for _ in range(cfg.n_global):
            tld = rng.choices(
                ["com", "net", "org", "io"], weights=[0.6, 0.15, 0.15, 0.1]
            )[0]
            spec = self._ordinary_site(rng, "en", tld, next(categories))
            for country in COUNTRIES:
                self.listed[country].append(spec.domain)

        # Bi-regional sites: on exactly two toplists.
        pairs = list(itertools.combinations(COUNTRIES, 2))
        pair_counts = apportion([1.0] * len(pairs), cfg.n_biregional)
        for pair, count in zip(pairs, pair_counts):
            for _ in range(count):
                primary = pair[0]
                language = self._pick(COUNTRY_LANGUAGES[primary], rng)
                tld = self._pick(COUNTRY_TLDS[primary], rng)
                spec = self._ordinary_site(rng, language, tld, next(categories))
                self.listed[pair[0]].append(spec.domain)
                self.listed[pair[1]].append(spec.domain)

        # Local sites: fill each country list up to the exact size.
        for country in COUNTRIES:
            missing = cfg.n_list_size - len(self.listed[country])
            if missing < 0:
                raise WorldGenerationError(
                    f"toplist {country} overfull ({-missing} extra entries); "
                    "increase list_size or scale"
                )
            for _ in range(missing):
                language = self._pick(COUNTRY_LANGUAGES[country], rng)
                tld = self._pick(COUNTRY_TLDS[country], rng)
                spec = self._ordinary_site(rng, language, tld, next(categories))
                self.listed[country].append(spec.domain)

    def _ordinary_site(
        self, rng: random.Random, language: str, tld: str, category: str
    ) -> SiteSpec:
        domain = make_domain(rng, language, tld, self.used_domains)
        spec = SiteSpec(
            domain=domain,
            tld=tld,
            language=language,
            category=category,
            site_name=site_title(domain),
            bot_sensitive=rng.random() < self.cfg.bot_sensitive_rate,
        )
        self._set_sentences(spec, rng)
        self._wire_regular_cookies(spec, rng)
        self.sites[domain] = spec
        return spec

    def _wire_regular_cookies(self, spec: SiteSpec, rng: random.Random) -> None:
        cfg = self.cfg
        profile = cfg.profile_regular
        spec.fp_plain = max(profile.fp_plain + rng.choice((-1, 0, 1)), 1)
        spec.fp_consented = _lognorm_int(
            rng, profile.fp_consented, 0.30, low=max(spec.fp_plain, 4), high=40
        )
        n_ads = rng.choices([0, 1, 2, 3], weights=[0.35, 0.40, 0.17, 0.08])[0]
        pool = thirdparty.ad_domains()
        spec.ad_partners = tuple(rng.sample(pool, n_ads))
        spec.cookies_per_ad = 1
        spec.sync_rate = profile.sync_rate
        spec.extra_ads_max = profile.extra_ads_max
        spec.cdn_partners = tuple(
            rng.sample(thirdparty.cdn_domains(), rng.randint(3, 4))
        )
        # Ordinary sites lean on privacy-friendlier analytics vendors.
        tracked_pool = [
            p.domain for p in thirdparty.by_kind("analytics") if p.in_justdomains
        ]
        untracked_pool = [
            p.domain for p in thirdparty.by_kind("analytics") if not p.in_justdomains
        ]
        analytics = [rng.choice(untracked_pool)]
        if rng.random() < 0.25:
            analytics.append(rng.choice(tracked_pool))
        spec.analytics_partners = tuple(analytics)
        # Banner behaviour (only for non-wall, non-bait sites).
        if spec.banner is BannerKind.NONE:
            self._assign_banner(spec, rng)

    def _assign_banner(self, spec: SiteSpec, rng: random.Random) -> None:
        cfg = self.cfg
        # EU-list membership is not yet known here; approximate with TLD.
        eu_flavoured = spec.tld in ("de", "at", "se") or spec.language in ("de", "sv")
        rate = cfg.banner_rate_eu_list if eu_flavoured else cfg.banner_rate_other
        if rng.random() >= rate:
            return
        spec.banner = BannerKind.REGULAR
        spec.banner_audience = (
            "all" if rng.random() < cfg.banner_everywhere_rate else "eu"
        )
        spec.reject_button = rng.random() < cfg.reject_button_rate
        if rng.random() < 0.25:
            listed = rng.random() < 0.8
            pool = thirdparty.cmp_domains(listed=listed)
            spec.cmp = rng.choice(pool)

    def _set_sentences(self, spec: SiteSpec, rng: random.Random) -> None:
        corpus_size = len(CORPORA[spec.language])
        count = rng.randint(3, 4)
        spec.sentence_indexes = tuple(
            rng.randrange(corpus_size) for _ in range(count)
        )

    @staticmethod
    def _pick(weighted: Tuple[Tuple[str, float], ...], rng: random.Random) -> str:
        values = [v for v, _ in weighted]
        weights = [w for _, w in weighted]
        return rng.choices(values, weights=weights)[0]

    def _expand_shares(
        self,
        shares: Tuple[Tuple[str, float], ...],
        total: int,
        rng: random.Random,
    ) -> List[str]:
        counts = apportion([w for _, w in shares], total)
        out: List[str] = []
        for (value, _), count in zip(shares, counts):
            out.extend([value] * count)
        rng.shuffle(out)
        return out

    # ------------------------------------------------------------------
    # Toplists (ordering, rank buckets)
    # ------------------------------------------------------------------
    def _build_toplists(
        self, walls: List[SiteSpec], bait: List[SiteSpec]
    ) -> Dict[str, Toplist]:
        cfg = self.cfg
        rng = self.root.stream("toplists")
        top1k_counts = apportion(
            dict(_WALL_TOP1K), self.cfg.scaled(sum(_WALL_TOP1K.values()), minimum=1)
        )
        toplists: Dict[str, Toplist] = {}
        for country in COUNTRIES:
            entries = list(self.listed[country])
            rng.shuffle(entries)
            wall_domains = [
                d for d in entries if self.sites[d].banner is BannerKind.COOKIEWALL
            ]
            want_top = min(top1k_counts.get(country, 0), len(wall_domains))
            entries = self._force_bucket_membership(
                entries, wall_domains, want_top, cfg.n_top_bucket, rng
            )
            toplist = Toplist(country, entries, cfg.n_top_bucket)
            toplists[country] = toplist
            for domain in entries:
                bucket = toplist.bucket_of(domain)
                self.sites[domain].listings[country] = bucket or BUCKET_TOP10K
        return toplists

    @staticmethod
    def _force_bucket_membership(
        entries: List[str],
        wall_domains: List[str],
        want_top: int,
        top_bucket: int,
        rng: random.Random,
    ) -> List[str]:
        """Rearrange so exactly *want_top* walls land in the top bucket."""
        entries = list(entries)
        position = {d: i for i, d in enumerate(entries)}
        in_top = [d for d in wall_domains if position[d] < top_bucket]
        out_top = [d for d in wall_domains if position[d] >= top_bucket]
        wall_set = set(wall_domains)

        def swap(a: str, b: str) -> None:
            ia, ib = position[a], position[b]
            entries[ia], entries[ib] = b, a
            position[a], position[b] = ib, ia

        while len(in_top) > want_top:
            mover = in_top.pop()
            candidates = [
                d for d in entries[top_bucket:] if d not in wall_set
            ]
            swap(mover, candidates[rng.randrange(len(candidates))])
            out_top.append(mover)
        while len(in_top) < want_top and out_top:
            mover = out_top.pop()
            candidates = [
                d for d in entries[:top_bucket] if d not in wall_set
            ]
            swap(mover, candidates[rng.randrange(len(candidates))])
            in_top.append(mover)
        return entries

    # ------------------------------------------------------------------
    # Unreachable sites
    # ------------------------------------------------------------------
    def _mark_unreachable(self) -> None:
        rng = self.root.stream("unreachable")
        protected = {
            d for d, s in self.sites.items()
            if s.banner in (BannerKind.COOKIEWALL, BannerKind.BAIT) or s.smp
        }
        candidates = sorted(set(self.sites) - protected)
        count = min(self.cfg.n_unreachable, len(candidates))
        for domain in rng.sample(candidates, count):
            self.sites[domain].reachable = False

    # ------------------------------------------------------------------
    # Servers / network
    # ------------------------------------------------------------------
    def _build_network(self, platforms: Dict[str, SMPPlatform]) -> Network:
        network = Network()
        seed = self.cfg.seed
        site_server = SiteServer(self.sites, seed)
        for domain, spec in self.sites.items():
            if spec.reachable:
                network.register(domain, site_server)
            else:
                network.mark_unreachable(domain)
        for party in thirdparty.all_parties():
            if party.kind in ("ad", "social"):
                network.register(party.domain, TrackerServer(party.domain, seed))
            elif party.kind == "cdn":
                network.register(party.domain, CdnServer(party.domain))
            elif party.kind == "analytics":
                network.register(party.domain, AnalyticsServer(party.domain, seed))
            elif party.kind == "cmp":
                network.register(party.domain, CMPServer(party.domain, self.sites))
        for platform in platforms.values():
            network.register(platform.domain, SMPServer(platform, self.sites))
        return network

    def _build_category_db(self) -> WebFilterDB:
        db = WebFilterDB()
        rng = self.root.stream("categorydb")
        for domain, spec in self.sites.items():
            # FortiGuard has near-complete coverage; keep a small gap.
            if spec.banner is BannerKind.COOKIEWALL or rng.random() < 0.97:
                db.add(domain, spec.category)
        return db


def _lognorm_int(
    rng: random.Random, median: float, sigma: float, *, low: int, high: int
) -> int:
    """A log-normal integer draw with the given median, clamped."""
    value = median * 2.718281828 ** rng.gauss(0.0, sigma)
    return max(low, min(int(round(value)), high))
