"""Cookiewall markup: accept-or-pay dialogs in several languages.

Every template contains (a) a subscription word from the paper's
cookiewall corpus (abo/abonnent/abbonamento/abonne/abonné/ad-free/
subscribe — §3) and/or (b) a currency-amount combination, because that
is what real walls contain and what the detector searches for.  The
Spanish template deliberately carries no corpus subscription word so
the currency-pattern path of the classifier is exercised.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.pricing.currency import convert_from_eur_cents, format_amount

if TYPE_CHECKING:  # pragma: no cover
    from repro.webgen.spec import SiteSpec, WallSpec

#: (intro with {site}/{price}/{period}, accept label, subscribe label).
_TEXTS: Dict[str, Tuple[str, str, str]] = {
    "de": (
        "Weiterlesen mit Werbung und Tracking – oder buchen Sie das "
        "werbefreie {site} Pur-Abo für nur {price} {period}. "
        "Als Abonnent surfen Sie ohne personalisierte Werbung.",
        "Mit Werbung weiterlesen", "Jetzt Abo abschließen",
    ),
    "en": (
        "Keep reading with ads and tracking — or subscribe to the "
        "ad-free {site} pass for just {price} {period}. "
        "Subscribers browse without personalised advertising.",
        "Accept and continue", "Subscribe now",
    ),
    "it": (
        "Continua a leggere con la pubblicità – oppure attiva "
        "l'abbonamento senza pubblicità di {site} a soli {price} "
        "{period}.",
        "Accetta e continua", "Abbonati ora",
    ),
    "fr": (
        "Poursuivez votre lecture avec la publicité – ou devenez "
        "abonné de {site} sans publicité pour {price} {period}.",
        "Accepter et continuer", "S'abonner",
    ),
    # NB: no corpus subscription word — currency matching must catch it.
    "es": (
        "Sigue leyendo con publicidad – o consigue {site} sin "
        "publicidad por {price} {period}.",
        "Aceptar y continuar", "Contratar ahora",
    ),
    "nl": (
        "Lees verder met advertenties – of neem een advertentievrij "
        "abonnement op {site} voor {price} {period}.",
        "Accepteren en verder", "Abonneren",
    ),
    "da": (
        "Læs videre med annoncer – eller tegn et annoncefrit "
        "abonnement på {site} for {price} {period}.",
        "Accepter og fortsæt", "Tegn abonnement",
    ),
}

_PERIOD_WORDS: Dict[str, Dict[str, str]] = {
    "month": {
        "de": "im Monat", "en": "per month", "it": "al mese",
        "fr": "par mois", "es": "al mes", "nl": "per maand",
        "da": "om måneden",
    },
    "year": {
        "de": "im Jahr", "en": "per year", "it": "all'anno",
        "fr": "par an", "es": "al año", "nl": "per jaar",
        "da": "om året",
    },
}


def displayed_price(wall: "WallSpec", language: str) -> str:
    """The price string shown in the wall (currency + period applied)."""
    cents = wall.monthly_price_cents
    if wall.billing_period == "year":
        cents *= 12
    amount = convert_from_eur_cents(cents, wall.display_currency)
    return format_amount(amount, wall.display_currency, locale=language)


def wall_body_html(spec: "SiteSpec") -> str:
    """The inner wall content (text + both buttons)."""
    wall = spec.wall
    assert wall is not None, "wall_body_html() needs a cookiewall site"
    language = spec.language if spec.language in _TEXTS else "en"
    intro, accept_label, subscribe_label = _TEXTS[language]
    period = _PERIOD_WORDS[wall.billing_period].get(
        language, _PERIOD_WORDS[wall.billing_period]["en"]
    )
    price = displayed_price(wall, language)
    text = intro.format(site=spec.site_name, price=price, period=period)
    subscribe_href = (
        f"https://{wall.provider}/checkout?site={spec.domain}"
        if wall.serving == "smp" and wall.provider
        else f"https://{spec.domain}/subscribe"
    )
    return (
        f'<div class="cw-content"><p class="cw-text">{text}</p>'
        f'<button data-action="accept" data-cookie="{spec.consent_cookie}" '
        f'class="cw-accept">{accept_label}</button>'
        f'<button data-action="subscribe" data-href="{subscribe_href}" '
        f'class="cw-subscribe">{subscribe_label}</button></div>'
    )


def _srcdoc_escape(html: str) -> str:
    return html.replace("&", "&amp;").replace('"', "&quot;")


def wall_markup(spec: "SiteSpec") -> str:
    """Full wall markup for the site's placement (inline delivery).

    The same markup is shipped inside ``append-html`` effects when the
    wall is script-injected by a CMP/SMP.
    """
    wall = spec.wall
    assert wall is not None
    inner = wall_body_html(spec)
    if wall.placement == "main":
        return f'<div id="cw-wall" class="cw-overlay" data-banner="1">{inner}</div>'
    if wall.placement == "iframe":
        body = f"<html><body>{inner}</body></html>"
        return (
            f'<iframe id="cw-frame" data-banner="1" title="consent" '
            f'srcdoc="{_srcdoc_escape(body)}"></iframe>'
        )
    mode = "closed" if wall.placement == "shadow-closed" else "open"
    return (
        f'<div id="cw-host" data-banner="1">'
        f'<template shadowrootmode="{mode}">{inner}</template></div>'
    )


def remote_frame_markup(spec: "SiteSpec") -> str:
    """An iframe pointing at the CMP's wall endpoint (remote delivery)."""
    wall = spec.wall
    assert wall is not None and wall.provider is not None
    return (
        f'<iframe id="cw-frame" data-banner="1" title="consent" '
        f'src="https://cdn.{wall.provider}/frame?site={spec.domain}"></iframe>'
    )


def subscription_page_html(spec: "SiteSpec") -> str:
    """The site's /subscribe landing page (used by price verification)."""
    wall = spec.wall
    assert wall is not None
    language = spec.language if spec.language in _TEXTS else "en"
    price = displayed_price(wall, language)
    period = _PERIOD_WORDS[wall.billing_period].get(
        language, _PERIOD_WORDS[wall.billing_period]["en"]
    )
    return (
        f"<html><head><title>{spec.site_name}</title></head><body>"
        f'<h1>{spec.site_name}</h1><p class="offer">{price} {period}</p>'
        f'<button data-action="subscribe">OK</button></body></html>'
    )
