"""Third-party origin servers: ad networks, CDNs, analytics, CMPs.

Ad-network responses *set cookies* and *chain-load sync pixels* to
other networks — the cookie-syncing cascade that makes cookiewall
sites accumulate dozens of tracking cookies (paper §4.3).  All
behaviour is deterministic per (server, visit id).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List

from repro import thirdparty
from repro.browser.effects import encode_effects
from repro.httpkit import Request, Response
from repro.netsim import OriginServer, VisitorContext
from repro.rng import derive_seed
from repro.webgen.banners import regular_banner_html
from repro.webgen.cookiewalls import wall_body_html, wall_markup

if TYPE_CHECKING:  # pragma: no cover
    from repro.webgen.spec import SiteSpec


def _query(request: Request) -> Dict[str, str]:
    return request.url.query_params


class TrackerServer(OriginServer):
    """An advertising network's server (tag scripts + sync pixels)."""

    def __init__(self, domain: str, seed: int) -> None:
        self.domain = domain
        self.seed = seed
        self._peers = [d for d in thirdparty.ad_domains() if d != domain]

    def handle(self, request: Request, visitor: VisitorContext) -> Response:
        path = request.url.path
        if path.startswith("/tag.js"):
            return self._tag(request, visitor)
        if path.startswith("/p.gif"):
            response = self.pixel(request)
            response.add_cookie(
                f"syncid=s{visitor.visit_id}; Domain={self.domain}; Max-Age=31536000"
            )
            return response
        return self.not_found(request)

    def _tag(self, request: Request, visitor: VisitorContext) -> Response:
        params = _query(request)
        n_cookies = max(1, min(int(params.get("n", "1") or 1), 4))
        sync_percent = max(0, min(int(params.get("s", "0") or 0), 100))
        rng = random.Random(
            derive_seed(self.seed, "tag", self.domain, visitor.visit_id)
        )
        effects: List[dict] = []
        if sync_percent and rng.random() * 100 < sync_percent and self._peers:
            partner = rng.choice(self._peers)
            effects.append(
                {"op": "load-resources",
                 "urls": [f"https://{partner}/p.gif?from={self.domain}"],
                 "type": "image"}
            )
        response = self.effects(request, encode_effects(effects))
        names = ("uid", "sid", "tid", "cid")
        for i in range(n_cookies):
            response.add_cookie(
                f"{names[i]}=v{visitor.visit_id}; Domain={self.domain}; "
                f"Max-Age=31536000"
            )
        return response


class CdnServer(OriginServer):
    """A benign CDN: serves assets, sets one non-tracking cookie."""

    def __init__(self, domain: str) -> None:
        self.domain = domain

    def handle(self, request: Request, visitor: VisitorContext) -> Response:
        response = Response(request=request, body="/*asset*/")
        response.headers.set("content-type", "application/javascript")
        response.add_cookie(
            f"cdn_sess=c{visitor.visit_id}; Domain={self.domain}; Max-Age=86400"
        )
        return response


class AnalyticsServer(OriginServer):
    """A measurement script host (1–2 cookies per load)."""

    def __init__(self, domain: str, seed: int) -> None:
        self.domain = domain
        self.seed = seed

    def handle(self, request: Request, visitor: VisitorContext) -> Response:
        response = Response(request=request, body="/*analytics*/")
        response.headers.set("content-type", "application/javascript")
        response.add_cookie(
            f"stats_uid=a{visitor.visit_id}; Domain={self.domain}; Max-Age=31536000"
        )
        rng = random.Random(
            derive_seed(self.seed, "analytics", self.domain, visitor.visit_id)
        )
        if rng.random() < 0.5:
            response.add_cookie(
                f"stats_sess=s{visitor.visit_id}; Domain={self.domain}; Max-Age=1800"
            )
        return response


class CMPServer(OriginServer):
    """A Consent Management Platform: serves banner/wall payloads.

    ``/loader.js?site=X`` returns DOM effects that inject the tenant
    site's banner or cookiewall; ``/frame?site=X`` returns the wall as
    a standalone frame document (for remote-iframe delivery).  Blocking
    this server's host (uBlock Annoyances) suppresses the wall — the
    §4.5 mechanism.
    """

    def __init__(self, domain: str, sites: Dict[str, "SiteSpec"]) -> None:
        self.domain = domain
        self.sites = sites

    def handle(self, request: Request, visitor: VisitorContext) -> Response:
        spec = self.sites.get(_query(request).get("site", ""))
        if spec is None:
            return self.not_found(request)
        path = request.url.path
        if path.startswith("/loader.js"):
            return self.effects(request, encode_effects(self._effects(spec)))
        if path.startswith("/frame"):
            return self.html(
                request, f"<html><body>{wall_body_html(spec)}</body></html>"
            )
        return self.not_found(request)

    def _effects(self, spec: "SiteSpec") -> List[dict]:
        if spec.wall is not None:
            return [
                {"op": "append-html", "html": wall_markup(spec)},
                {"op": "lock-scroll"},
            ]
        if spec.has_banner:
            # derive_seed, not hash(): the per-process hash salt would
            # hand spawned engine workers different banner variants and
            # CMP ids (the id feeds campaign records' TCF strings).
            variant = derive_seed(0, "banner-variant", spec.domain) % 4
            return [
                {
                    "op": "append-html",
                    "html": regular_banner_html(
                        spec.language,
                        consent_cookie=spec.consent_cookie,
                        reject_button=spec.reject_button,
                        variant=variant,
                        cmp_id=(
                            derive_seed(0, "cmp-id", self.domain) % 90
                        ) + 10,
                    ),
                }
            ]
        return []
