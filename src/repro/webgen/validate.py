"""World self-validation: structural checks with a readable report.

``build_world`` is deterministic but heavily configurable; this module
verifies that a built world satisfies every structural invariant the
experiments rely on, and reports violations instead of failing deep
inside an experiment.  Exposed via ``repro-cookiewalls validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.urlkit import public_suffix
from repro.webgen.spec import BannerKind
from repro.webgen.toplist import union_of
from repro.webgen.world import World


@dataclass
class Violation:
    check: str
    message: str

    def __str__(self) -> str:
        return f"{self.check}: {self.message}"


@dataclass
class ValidationReport:
    checks_run: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"World validation: {self.checks_run} checks, "
            f"{len(self.violations)} violations",
        ]
        for violation in self.violations:
            lines.append(f"  FAIL {violation}")
        if self.ok:
            lines.append("  all invariants hold")
        return "\n".join(lines)


def validate_world(world: World) -> ValidationReport:
    """Run every invariant check against *world*."""
    report = ValidationReport()

    def check(name: str, fn: Callable[[], List[str]]) -> None:
        report.checks_run += 1
        for message in fn():
            report.violations.append(Violation(name, message))

    check("toplist-sizes", lambda: _toplist_sizes(world))
    check("crawl-targets-reachable", lambda: _targets_reachable(world))
    check("crawl-targets-unique", lambda: _targets_unique(world))
    check("walls-listed", lambda: _walls_listed(world))
    check("walls-visible-from-de", lambda: _walls_de_visible(world))
    check("wall-tld-consistency", lambda: _wall_tlds(world))
    check("wall-prices-positive", lambda: _wall_prices(world))
    check("smp-partner-wiring", lambda: _smp_wiring(world))
    check("bait-sites-regular", lambda: _bait_regular(world))
    check("network-knows-targets", lambda: _network_routes(world))
    check("category-db-covers-walls", lambda: _categories(world))
    check("languages-have-corpora", lambda: _languages(world))
    return report


def _toplist_sizes(world: World) -> List[str]:
    expected = world.config.n_list_size
    return [
        f"{country} list has {len(toplist)} entries, expected {expected}"
        for country, toplist in world.toplists.items()
        if len(toplist) != expected
    ]


def _targets_reachable(world: World) -> List[str]:
    return [
        f"{domain} is a crawl target but unreachable"
        for domain in world.crawl_targets
        if not world.sites[domain].reachable
    ][:5]


def _targets_unique(world: World) -> List[str]:
    if len(set(world.crawl_targets)) != len(world.crawl_targets):
        return ["crawl target union contains duplicates"]
    union = set(union_of(world.toplists.values()))
    stray = [d for d in world.crawl_targets if d not in union]
    return [f"{d} is a target but on no toplist" for d in stray[:5]]


def _walls_listed(world: World) -> List[str]:
    return [
        f"wall {domain} is on no toplist"
        for domain in world.wall_domains
        if not world.sites[domain].listings
    ]


def _walls_de_visible(world: World) -> List[str]:
    return [
        f"wall {domain} invisible from the German VP"
        for domain in world.wall_domains
        if "DE" not in world.sites[domain].wall.regions
    ]


def _wall_tlds(world: World) -> List[str]:
    out = []
    for domain in world.wall_domains:
        spec = world.sites[domain]
        if public_suffix(domain) != spec.tld:
            out.append(f"{domain}: spec tld {spec.tld!r} mismatches domain")
    return out


def _wall_prices(world: World) -> List[str]:
    out = []
    for domain in world.wall_domains:
        cents = world.sites[domain].wall.monthly_price_cents
        if not 1 <= cents <= 2000:
            out.append(f"{domain}: implausible price {cents} cents")
    return out


def _smp_wiring(world: World) -> List[str]:
    out = []
    for name, platform in world.platforms.items():
        for domain in platform.partner_domains:
            spec = world.sites.get(domain)
            if spec is None:
                out.append(f"{name} partner {domain} has no site spec")
                continue
            if spec.smp != name:
                out.append(f"{name} partner {domain} has smp={spec.smp!r}")
            if spec.wall is None or spec.wall.serving != "smp":
                out.append(f"{name} partner {domain} is not SMP-served")
    return out


def _bait_regular(world: World) -> List[str]:
    return [
        f"bait site {domain} is not a regular-banner site"
        for domain in world.bait_domains
        if world.sites[domain].banner is not BannerKind.BAIT
        or world.sites[domain].wall is not None
    ]


def _network_routes(world: World) -> List[str]:
    out = []
    for domain in list(world.crawl_targets)[:200]:
        if not world.network.knows(domain):
            out.append(f"no route for target {domain}")
    return out


def _categories(world: World) -> List[str]:
    return [
        f"wall {domain} missing from the category DB"
        for domain in world.wall_domains
        if domain not in world.category_db
    ]


def _languages(world: World) -> List[str]:
    from repro.lang.corpus import CORPORA

    bad = {
        spec.language
        for spec in world.sites.values()
        if spec.language not in CORPORA
    }
    return [f"no corpus for language {lang!r}" for lang in sorted(bad)]
