"""The website origin server: renders pages per visitor state.

One :class:`SiteServer` instance serves every generated website (routed
by host).  Rendering is driven by the visitor's vantage point and the
cookies carried on the request:

- GDPR visitors without a consent cookie see the banner/cookiewall;
  trackers are *not* in the page (opt-in).
- After "accept" (consent cookie present) ad/analytics scripts render
  and the tracker cascade sets its cookies.
- Non-EU visitors of sites that only geo-target the EU get no banner
  and immediate tracking (opt-out regimes).
- Subscribed SMP visitors (subscriber cookie) get neither wall nor
  trackers — unless a prior consent cookie exists, which keeps
  tracking alive (the §5 "revoking acceptance" trap).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.browser.effects import encode_effects
from repro.httpkit import Request, Response, parse_cookie_header
from repro.lang.corpus import CORPORA
from repro.netsim import OriginServer, VisitorContext
from repro.rng import derive_seed
from repro.urlkit import registrable_domain
from repro.webgen.banners import regular_banner_html
from repro.webgen.cookiewalls import (
    remote_frame_markup,
    subscription_page_html,
    wall_markup,
)
from repro.webgen.spec import BannerKind, SiteSpec


class SiteServer(OriginServer):
    """Serves every generated website, routed by request host."""

    def __init__(self, sites: Dict[str, SiteSpec], seed: int) -> None:
        self.sites = sites
        self.seed = seed

    # ------------------------------------------------------------------
    def handle(self, request: Request, visitor: VisitorContext) -> Response:
        domain = registrable_domain(request.url.host) or request.url.host
        spec = self.sites.get(domain)
        if spec is None:
            return self.not_found(request)
        path = request.url.path
        if path == "/":
            return self._document(spec, request, visitor)
        if path == "/subscribe" and spec.wall is not None:
            return self.html(request, subscription_page_html(spec))
        if path == "/js/anti-adblock.js":
            return self._anti_adblock(spec, request)
        if path == "/js/lock.js":
            return self.effects(request, encode_effects([{"op": "lock-scroll"}]))
        return self.not_found(request)

    # ------------------------------------------------------------------
    # State derivation
    # ------------------------------------------------------------------
    @staticmethod
    def _consent_value(raw: str) -> str:
        """Interpret a consent cookie: plain marker or TCF-style string."""
        if raw in ("accept", "reject", ""):
            return raw
        from repro.consent.tcf import decode_tc_string
        from repro.errors import ParseError

        try:
            record = decode_tc_string(raw)
        except ParseError:
            return ""
        if record.is_reject:
            return "reject"
        return "accept" if record.purposes else ""

    @classmethod
    def _states(cls, spec: SiteSpec, request: Request, visitor: VisitorContext):
        cookies = parse_cookie_header(request.headers.get("cookie"))
        consent_raw = cls._consent_value(cookies.get(spec.consent_cookie, ""))
        consent = consent_raw == "accept"
        rejected = consent_raw == "reject"
        subscriber = bool(
            spec.smp and cookies.get(f"{spec.smp}_subscriber") == "1"
        )
        wall_shows = (
            spec.wall is not None
            and visitor.vp.code in spec.wall.regions
            and not consent
            and not subscriber
        )
        banner_shows = (
            spec.banner in (BannerKind.REGULAR, BannerKind.BAIT)
            and (spec.banner_audience == "all" or visitor.vp.in_eu)
            and not consent
            and not rejected
        )
        if spec.wall is not None:
            in_target_region = visitor.vp.code in spec.wall.regions
            trackers = (consent and not rejected) or (
                not in_target_region and not visitor.vp.in_eu and not subscriber
            )
        elif spec.banner is BannerKind.NONE:
            trackers = not rejected
        else:
            trackers = consent or (not banner_shows and not rejected and not consent
                                   and not visitor.vp.in_eu
                                   and spec.banner_audience == "eu")
        return consent, rejected, subscriber, wall_shows, banner_shows, trackers

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _document(
        self, spec: SiteSpec, request: Request, visitor: VisitorContext
    ) -> Response:
        if spec.bot_sensitive and visitor.looks_like_bot:
            return self.html(
                request,
                "<html><head><title>Checking your browser</title></head>"
                "<body><h1>Access verification</h1>"
                "<p>Please verify you are human to continue.</p>"
                "</body></html>",
                status=403,
            )
        (consent, rejected, subscriber,
         wall_shows, banner_shows, trackers) = self._states(spec, request, visitor)
        parts: List[str] = [
            "<html><head>",
            f"<title>{spec.site_name}</title>",
            '<meta charset="utf-8">',
            "</head><body>",
            f"<header><h1>{spec.site_name}</h1></header>",
            "<main><article>",
        ]
        corpus = CORPORA[spec.language]
        for index in spec.sentence_indexes:
            parts.append(f"<p>{corpus[index % len(corpus)]}</p>")
        parts.append("</article></main>")

        for cdn in spec.cdn_partners:
            parts.append(f'<script src="https://cdn.{cdn}/lib.js"></script>')

        if wall_shows:
            parts.append(self._wall_fragment(spec))
        elif banner_shows:
            parts.append(self._banner_fragment(spec))
        elif spec.smp and spec.wall is not None and not consent and not subscriber:
            # Out-of-region SMP partner: loader still embedded (it just
            # does nothing visible), matching real partner pages.
            parts.append(self._smp_loader_tag(spec))

        if trackers:
            parts.extend(self._tracker_fragments(spec, visitor))

        parts.append('<footer><a href="/impressum">Impressum</a></footer>')
        parts.append("</body></html>")
        response = self.html(request, "".join(parts))
        self._set_first_party_cookies(response, spec, visitor, trackers)
        return response

    def _wall_fragment(self, spec: SiteSpec) -> str:
        wall = spec.wall
        assert wall is not None
        fragments: List[str] = []
        if wall.serving == "inline":
            fragments.append(wall_markup(spec))
        elif wall.serving == "smp":
            fragments.append(self._smp_loader_tag(spec))
        elif wall.placement == "iframe":
            fragments.append(remote_frame_markup(spec))
        else:
            fragments.append(
                f'<script src="https://cdn.{wall.provider}/loader.js'
                f'?site={spec.domain}"></script>'
            )
        if wall.anti_adblock:
            fragments.append('<script src="/js/anti-adblock.js"></script>')
        if wall.fp_scroll_lock:
            fragments.append('<script src="/js/lock.js"></script>')
        return "".join(fragments)

    def _smp_loader_tag(self, spec: SiteSpec) -> str:
        wall = spec.wall
        assert wall is not None and wall.provider is not None
        return (
            f'<script src="https://cdn.{wall.provider}/loader.js'
            f'?site={spec.domain}"></script>'
        )

    def _banner_fragment(self, spec: SiteSpec) -> str:
        if spec.cmp is not None:
            return (
                f'<script src="https://cdn.{spec.cmp}/loader.js'
                f'?site={spec.domain}"></script>'
            )
        # derive_seed, not hash(): the per-process hash salt would give
        # spawned engine workers a different banner variant.
        variant = derive_seed(0, "banner-variant", spec.domain) % 4
        return regular_banner_html(
            spec.language,
            consent_cookie=spec.consent_cookie,
            reject_button=spec.reject_button,
            bait=spec.banner is BannerKind.BAIT,
            variant=variant,
        )

    def _tracker_fragments(
        self, spec: SiteSpec, visitor: VisitorContext
    ) -> List[str]:
        out: List[str] = []
        for analytics in spec.analytics_partners:
            out.append(
                f'<script src="https://{analytics}/analytics.js"></script>'
            )
        sync_percent = int(spec.sync_rate * 100)
        partners = list(spec.ad_partners)
        if spec.extra_ads_max > 0 and partners:
            rng = random.Random(
                derive_seed(self.seed, "extra-ads", spec.domain, visitor.visit_id)
            )
            extra_count = rng.randint(0, spec.extra_ads_max)
            from repro import thirdparty

            pool = [d for d in thirdparty.ad_domains() if d not in partners]
            partners.extend(rng.sample(pool, min(extra_count, len(pool))))
        for ad in partners:
            out.append(
                f'<script src="https://{ad}/tag.js'
                f'?n={spec.cookies_per_ad}&s={sync_percent}"></script>'
            )
        return out

    def _set_first_party_cookies(
        self,
        response: Response,
        spec: SiteSpec,
        visitor: VisitorContext,
        trackers: bool,
    ) -> None:
        count = spec.fp_plain
        if trackers:
            rng = random.Random(
                derive_seed(self.seed, "fp", spec.domain, visitor.visit_id)
            )
            count = max(spec.fp_plain, spec.fp_consented + rng.choice((-1, 0, 0, 1)))
        for i in range(count):
            response.add_cookie(
                f"fp{i}=v{visitor.visit_id}; Domain={spec.domain}; Max-Age=31536000"
            )

    # ------------------------------------------------------------------
    def _anti_adblock(self, spec: SiteSpec, request: Request) -> Response:
        wall = spec.wall
        pattern = f"cdn.{wall.provider}" if wall and wall.provider else "cdn."
        effects = [
            {
                "op": "if-blocked",
                "pattern": pattern,
                "then": [
                    {
                        "op": "append-html",
                        "html": (
                            '<div id="adblock-wall" class="adblock-overlay">'
                            "<p>Bitte deaktivieren Sie Ihren Adblocker, um "
                            "diese Seite zu nutzen.</p></div>"
                        ),
                    },
                    {"op": "set-flag", "key": "adblock_wall", "value": True},
                ],
            }
        ]
        return self.effects(request, encode_effects(effects))
