"""Temporal drift: evolve a world between measurement rounds.

The paper observed the ecosystem moving while they measured: contentpass
grew from 219 to 270 partners and freechoice from 167 to 184 between
May and September 2023 (§4.4, footnote 5), and the German top-1k wall
rate almost doubled versus 2022 (§4.1).  :func:`evolve_world` models
that drift, producing a *later* snapshot of the same web:

- SMP rosters grow (new partner sites adopt cookiewalls),
- a small share of independent sites newly deploy walls,
- a few walls disappear (sites drop the experiment),
- some sites change their subscription price,
- some previously reachable sites die, some dead ones return.

Returned is a fresh :class:`~repro.webgen.world.World` sharing the
original's identity (same domains, same toplists) so longitudinal
analyses can join on domain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro import thirdparty
from repro.rng import derive_seed
from repro.webgen.spec import BannerKind, WallSpec
from repro.webgen.world import World, build_world

#: Monthly growth observed for SMP rosters (contentpass: 219 -> 270
#: over ~4 months ~= 5.4%/month; freechoice: 167 -> 184 ~= 2.5%/month).
SMP_MONTHLY_GROWTH = {"contentpass": 0.054, "freechoice": 0.025}

#: Monthly churn rates for the independent wall population.
NEW_WALL_RATE = 0.01        # of regular sites adopting a wall, per month
DROPPED_WALL_RATE = 0.005   # of walls giving up, per month
PRICE_CHANGE_RATE = 0.02    # of walls changing price, per month
DEATH_RATE = 0.002          # of reachable sites dying, per month


@dataclass
class EvolutionSummary:
    """What changed between the two snapshots."""

    months: int = 0
    new_smp_partners: Dict[str, int] = field(default_factory=dict)
    new_walls: List[str] = field(default_factory=list)
    dropped_walls: List[str] = field(default_factory=list)
    price_changes: List[str] = field(default_factory=list)
    died: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"Ecosystem drift over {self.months} month(s):"]
        for name, count in sorted(self.new_smp_partners.items()):
            lines.append(f"  {name}: +{count} partner websites")
        lines.append(f"  new independent cookiewalls: {len(self.new_walls)}")
        lines.append(f"  walls dropped:               {len(self.dropped_walls)}")
        lines.append(f"  price changes:               {len(self.price_changes)}")
        lines.append(f"  sites gone dark:             {len(self.died)}")
        return "\n".join(lines)


def evolve_world(world: World, *, months: int = 4) -> "tuple[World, EvolutionSummary]":
    """Produce a later snapshot of *world* plus a change summary.

    The evolved world is rebuilt from the same seed and then mutated in
    place deterministically (seeded from the original seed + months),
    so the original is left untouched.
    """
    if months < 1:
        raise ValueError("months must be >= 1")
    # The drift is re-derived from the *baseline* build (the seed plus
    # "evolve"/months), so the snapshot's identity is just `months`.
    evolved = build_world(config=world.config)
    evolved.evolution_months = months
    rng = random.Random(derive_seed(world.config.seed, "evolve", months))
    summary = EvolutionSummary(months=months)

    _grow_smp_rosters(evolved, rng, months, summary)
    _adopt_new_walls(evolved, rng, months, summary)
    _drop_walls(evolved, rng, months, summary)
    _change_prices(evolved, rng, months, summary)
    _kill_sites(evolved, rng, months, summary)
    return evolved, summary


def _compound(rate: float, months: int) -> float:
    return (1.0 + rate) ** months - 1.0


def _grow_smp_rosters(
    world: World, rng: random.Random, months: int, summary: EvolutionSummary
) -> None:
    from repro.webgen.names import make_domain, site_title
    from repro.webgen.spec import SiteSpec

    used: Set[str] = set(world.sites)
    for name, platform in world.platforms.items():
        growth = _compound(SMP_MONTHLY_GROWTH.get(name, 0.02), months)
        additions = max(int(round(len(platform.partner_domains) * growth)), 0)
        summary.new_smp_partners[name] = additions
        for k in range(additions):
            domain = make_domain(rng, "de", "de", used)
            wall = WallSpec(
                placement=("iframe", "main", "shadow-open")[k % 3],
                serving="smp",
                provider=platform.domain,
                monthly_price_cents=platform.monthly_price_cents,
                display_currency="EUR",
                billing_period="month",
                regions=frozenset(
                    {"DE", "SE", "USE", "USW", "BR", "ZA", "IN", "AU"}
                ),
            )
            spec = SiteSpec(
                domain=domain, tld="de", language="de",
                category="News and Media",
                banner=BannerKind.COOKIEWALL, reject_button=False,
                wall=wall, smp=name, site_name=site_title(domain),
            )
            spec.cdn_partners = tuple(rng.sample(thirdparty.cdn_domains(), 2))
            spec.ad_partners = tuple(rng.sample(thirdparty.ad_domains(), 5))
            spec.cookies_per_ad = 2
            world.sites[domain] = spec
            platform.partner_domains.append(domain)
            # Newly registered partner sites must resolve.
            from repro.webgen.sites import SiteServer

            world.network.register(
                domain, SiteServer(world.sites, world.config.seed)
            )


def _adopt_new_walls(
    world: World, rng: random.Random, months: int, summary: EvolutionSummary
) -> None:
    candidates = [
        d for d, s in world.sites.items()
        if s.banner is BannerKind.REGULAR and s.reachable
        and s.on_list("DE")
    ]
    count = int(len(candidates) * _compound(NEW_WALL_RATE, months))
    listed_cmps = thirdparty.cmp_domains(listed=True)
    for domain in rng.sample(candidates, min(count, len(candidates))):
        spec = world.sites[domain]
        spec.banner = BannerKind.COOKIEWALL
        spec.reject_button = False
        spec.cmp = None
        spec.wall = WallSpec(
            placement=rng.choice(("main", "iframe", "shadow-open")),
            serving=rng.choice(("inline", "cmp")),
            provider=rng.choice(listed_cmps),
            monthly_price_cents=rng.choice((199, 299, 399, 499)),
            display_currency="EUR",
            billing_period="month",
            regions=frozenset(
                {"DE", "SE", "USE", "USW", "BR", "ZA", "IN", "AU"}
            ),
        )
        if spec.wall.serving == "inline":
            spec.wall = WallSpec(
                **{**spec.wall.__dict__, "provider": None}
            )
        world.wall_domains.add(domain)
        summary.new_walls.append(domain)


def _drop_walls(
    world: World, rng: random.Random, months: int, summary: EvolutionSummary
) -> None:
    independents = [
        d for d in world.wall_domains if world.sites[d].smp is None
    ]
    count = int(len(independents) * _compound(DROPPED_WALL_RATE, months))
    for domain in rng.sample(independents, min(count, len(independents))):
        spec = world.sites[domain]
        spec.banner = BannerKind.REGULAR
        spec.wall = None
        spec.reject_button = True
        world.wall_domains.discard(domain)
        summary.dropped_walls.append(domain)


def _change_prices(
    world: World, rng: random.Random, months: int, summary: EvolutionSummary
) -> None:
    independents = [
        d for d in world.wall_domains
        if world.sites[d].smp is None and world.sites[d].wall is not None
    ]
    count = int(len(independents) * _compound(PRICE_CHANGE_RATE, months))
    for domain in rng.sample(independents, min(count, len(independents))):
        spec = world.sites[domain]
        old = spec.wall.monthly_price_cents
        factor = rng.choice((1.25, 1.5, 0.8))
        new = max(int(round(old * factor / 100)) * 100 - 1, 99)
        spec.wall = WallSpec(**{**spec.wall.__dict__,
                                "monthly_price_cents": new})
        summary.price_changes.append(f"{domain}: {old} -> {new}")


def _kill_sites(
    world: World, rng: random.Random, months: int, summary: EvolutionSummary
) -> None:
    candidates = [
        d for d, s in world.sites.items()
        if s.reachable and s.banner is BannerKind.NONE
    ]
    count = int(len(candidates) * _compound(DEATH_RATE, months))
    for domain in rng.sample(candidates, min(count, len(candidates))):
        world.sites[domain].reachable = False
        world.network.mark_unreachable(domain)
        if domain in world.crawl_targets:
            world.crawl_targets.remove(domain)
        summary.died.append(domain)
