"""CrUX-style toplist export/import.

Google's Chrome User Experience Report ships country toplists as CSV
with *rank buckets* instead of exact ranks (paper §3).  This module
writes the generated toplists in that shape and reads them back, so
downstream users can plug the synthetic lists into existing pipelines
(or plug real CrUX CSVs into this one).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import ParseError
from repro.webgen.toplist import BUCKET_TOP1K, BUCKET_TOP10K, Toplist

_HEADER = ("origin", "country", "rank_bucket")
_BUCKET_TO_RANK = {BUCKET_TOP1K: 1000, BUCKET_TOP10K: 10000}
_RANK_TO_BUCKET = {1000: BUCKET_TOP1K, 10000: BUCKET_TOP10K}


def export_toplist(toplist: Toplist, path: Union[str, Path]) -> int:
    """Write one toplist as a CrUX-like CSV; returns rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        count = 0
        for domain in toplist.domains():
            bucket = toplist.bucket_of(domain) or BUCKET_TOP10K
            writer.writerow(
                (f"https://{domain}", toplist.country, _BUCKET_TO_RANK[bucket])
            )
            count += 1
    return count


def export_all(toplists: Dict[str, Toplist], directory: Union[str, Path]) -> List[Path]:
    """Write every country list as ``crux_<CC>.csv``."""
    directory = Path(directory)
    paths = []
    for country, toplist in sorted(toplists.items()):
        path = directory / f"crux_{country.lower()}.csv"
        export_toplist(toplist, path)
        paths.append(path)
    return paths


def import_toplist(path: Union[str, Path]) -> Toplist:
    """Read a CrUX-like CSV back into a :class:`Toplist`.

    Rows must be ordered top bucket first (the export format is); the
    top-bucket size is recovered from the rank_bucket column.
    """
    path = Path(path)
    entries: List[Tuple[str, int]] = []
    country = ""
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _HEADER:
            raise ParseError(f"{path}: not a CrUX-style toplist CSV")
        for line_number, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ParseError(f"{path}:{line_number}: malformed row {row!r}")
            origin, row_country, rank_text = row
            if not origin.startswith("https://"):
                raise ParseError(f"{path}:{line_number}: bad origin {origin!r}")
            try:
                rank = int(rank_text)
            except ValueError:
                raise ParseError(
                    f"{path}:{line_number}: bad rank bucket {rank_text!r}"
                ) from None
            if rank not in _RANK_TO_BUCKET:
                raise ParseError(
                    f"{path}:{line_number}: unknown rank bucket {rank}"
                )
            country = row_country
            entries.append((origin[len("https://"):], rank))
    top_bucket = sum(1 for _, rank in entries if rank == 1000)
    return Toplist(country, [domain for domain, _ in entries], top_bucket or 1)
