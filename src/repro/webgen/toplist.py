"""CrUX-like country toplists with rank buckets (paper §3, §4.1).

Google's CrUX does not expose exact ranks, only buckets (top 1k, top
10k, ...); the paper's popularity analysis (§4.1) relies on exactly
that.  A :class:`Toplist` therefore stores an ordered list of domains
and exposes bucket membership, not ranks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

BUCKET_TOP1K = "top1k"
BUCKET_TOP10K = "top10k"


class Toplist:
    """One country's ranked domain list, bucketed CrUX-style."""

    def __init__(self, country: str, entries: Iterable[str], top_bucket: int) -> None:
        self.country = country
        self._entries: List[str] = list(entries)
        self.top_bucket = top_bucket
        self._index: Dict[str, int] = {
            domain: i for i, domain in enumerate(self._entries)
        }
        if len(self._index) != len(self._entries):
            raise ValueError(f"duplicate entries in {country} toplist")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, domain: object) -> bool:
        return domain in self._index

    def domains(self, bucket: Optional[str] = None) -> List[str]:
        """All domains, optionally restricted to one bucket."""
        if bucket is None:
            return list(self._entries)
        if bucket == BUCKET_TOP1K:
            return self._entries[: self.top_bucket]
        if bucket == BUCKET_TOP10K:
            return list(self._entries)
        raise ValueError(f"unknown bucket {bucket!r}")

    def bucket_of(self, domain: str) -> Optional[str]:
        """The bucket a domain falls in, or None if unlisted.

        Note: like CrUX, the top-10k bucket *contains* the top-1k one;
        this returns the most specific bucket.
        """
        index = self._index.get(domain)
        if index is None:
            return None
        return BUCKET_TOP1K if index < self.top_bucket else BUCKET_TOP10K

    def membership(self) -> Set[str]:
        return set(self._index)


def union_of(toplists: Iterable[Toplist]) -> List[str]:
    """The deduplicated union of several toplists (stable order)."""
    seen: Set[str] = set()
    out: List[str] = []
    for toplist in toplists:
        for domain in toplist.domains():
            if domain not in seen:
                seen.add(domain)
                out.append(domain)
    return out
