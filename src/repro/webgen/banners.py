"""Regular cookie-banner markup in every site language (paper Fig. 8).

The templates intentionally vary wording per language; BannerClick's
multi-language word corpus (:mod:`repro.bannerclick.corpus`) must find
them, exactly as the real tool's corpus finds real-world banners.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: (banner text, accept label, reject label, settings label) per language.
_TEXTS: Dict[str, Tuple[str, str, str, str]] = {
    "de": (
        "Wir verwenden Cookies, um Inhalte und Anzeigen zu personalisieren "
        "und unseren Datenverkehr zu analysieren. Mit Klick auf "
        "„Alle akzeptieren“ stimmen Sie der Verarbeitung zu.",
        "Alle akzeptieren", "Ablehnen", "Einstellungen",
    ),
    "en": (
        "We use cookies to personalise content and ads and to analyse our "
        "traffic. By clicking “Accept all” you consent to the "
        "processing of your data.",
        "Accept all", "Reject all", "Manage settings",
    ),
    "it": (
        "Utilizziamo i cookie per personalizzare contenuti e annunci e per "
        "analizzare il nostro traffico. Cliccando su “Accetta tutto” "
        "acconsenti al trattamento.",
        "Accetta tutto", "Rifiuta", "Impostazioni",
    ),
    "sv": (
        "Vi använder cookies (kakor) för att anpassa innehåll "
        "och annonser och för att analysera vår trafik. Genom att "
        "klicka på ”Godkänn alla” samtycker du.",
        "Godkänn alla", "Avvisa alla", "Inställningar",
    ),
    "fr": (
        "Nous utilisons des cookies pour personnaliser le contenu et les "
        "publicités et pour analyser notre trafic. En cliquant sur "
        "« Tout accepter », vous consentez au traitement.",
        "Tout accepter", "Tout refuser", "Paramètres",
    ),
    "es": (
        "Utilizamos cookies para personalizar el contenido y los anuncios "
        "y para analizar nuestro tráfico. Al hacer clic en "
        "“Aceptar todo” consientes el tratamiento.",
        "Aceptar todo", "Rechazar todo", "Configuración",
    ),
    "pt": (
        "Usamos cookies para personalizar conteúdo e anúncios e "
        "para analisar nosso tráfego. Ao clicar em “Aceitar "
        "tudo”, você consente com o processamento.",
        "Aceitar tudo", "Rejeitar tudo", "Configurações",
    ),
    "nl": (
        "Wij gebruiken cookies om inhoud en advertenties te personaliseren "
        "en ons verkeer te analyseren. Door op „Alles accepteren” "
        "te klikken stemt u in met de verwerking.",
        "Alles accepteren", "Weigeren", "Instellingen",
    ),
    "da": (
        "Vi bruger cookies til at tilpasse indhold og annoncer og til at "
        "analysere vores trafik. Ved at klikke på ”Accepter "
        "alle” giver du dit samtykke.",
        "Accepter alle", "Afvis alle", "Indstillinger",
    ),
    "zu": (
        "Sisebenzisa ama-cookie ukuze senze okuqukethwe nezikhangiso "
        "zibe ngezakho futhi sihlaziye ukuhamba kwethu. Ngokuchofoza "
        "“Vuma konke” uyavuma.",
        "Vuma konke", "Yala konke", "Izilungiselelo",
    ),
}

#: Bait sentences (German): a *regular* banner that mentions a paid
#: subscription — the detector's currency/subscription word search will
#: flag it, producing the paper's 5 false positives (§3, precision 98.2%).
_BAIT_SENTENCE = (
    "Unterstützen Sie unabhängigen Journalismus: "
    "Unser Digital-Abo gibt es schon ab 3,99 € im Monat."
)


def banner_texts(language: str) -> Tuple[str, str, str, str]:
    """(text, accept, reject, settings) for a language (en fallback)."""
    return _TEXTS.get(language, _TEXTS["en"])


def regular_banner_html(
    language: str,
    *,
    consent_cookie: str = "cmp_consent",
    reject_button: bool = True,
    bait: bool = False,
    variant: int = 0,
    cmp_id: int = 0,
) -> str:
    """Markup for a regular consent banner.

    ``variant`` rotates id/class names so the detector cannot key on a
    single fixed attribute (real banners differ per CMP).  A non-zero
    ``cmp_id`` marks the buttons as CMP-backed: clicking them persists
    an IAB-TCF-style consent string instead of a plain marker.
    """
    text, accept, reject, settings = banner_texts(language)
    if bait:
        text = f"{text} {_BAIT_SENTENCE}"
    container_class = ("cookie-banner", "cmp-container", "consent-notice",
                       "privacy-prompt")[variant % 4]
    container_id = ("cmp-banner", "cookie-consent", "gdpr-notice",
                    "consent-box")[variant % 4]
    cmp_attr = f' data-cmp-id="{cmp_id}"' if cmp_id else ""
    parts = [
        f'<div id="{container_id}" class="{container_class}" '
        f'data-banner="1" role="dialog">',
        f"<p>{text}</p>",
        f'<button data-action="accept" data-cookie="{consent_cookie}"'
        f'{cmp_attr} class="btn-accept">{accept}</button>',
    ]
    if reject_button:
        parts.append(
            f'<button data-action="reject" data-cookie="{consent_cookie}"'
            f'{cmp_attr} class="btn-reject">{reject}</button>'
        )
    parts.append(
        f'<button data-action="dismiss" class="btn-settings">{settings}</button>'
    )
    parts.append("</div>")
    return "".join(parts)
