"""World calibration: every constant traces back to a paper number.

The full-scale world reproduces the paper's population marginals
(§4.1–§4.5).  A ``scale`` factor shrinks everything proportionally
(largest-remainder apportionment keeps totals consistent) so tests can
run on a ~1k-site world while benchmarks use the full 45k-site one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorldGenerationError

#: Toplist countries (US contributes one list although two VPs use it).
COUNTRIES: Tuple[str, ...] = ("US", "BR", "DE", "SE", "ZA", "IN", "AU")

#: Visibility classes for cookiewalls.
VIS_EU_ONLY = "eu-only"
VIS_DE_ONLY = "de-only"
VIS_GLOBAL = "global"

#: Wall cohorts: (count, toplist country, tld, language, visibility).
#: Joint allocation whose marginals match Table 1 / §4.1:
#:   toplist:  DE 259, SE 15, AU 5, BR 1
#:   ccTLD:    de 233, com 14, net 14, it 6, at 4, org 4, fr 2,
#:             es/info/news 1 each
#:   language: de 253, en 10, it 6, fr 3, es 1, nl 4, da 3
#:   visibility: 76 EU-only, 4 DE-only, 200 global
WALL_COHORTS: Tuple[Tuple[int, str, str, str, str], ...] = (
    # --- German toplist (259) ---
    (4,   "DE", "de",   "de", VIS_DE_ONLY),
    (71,  "DE", "de",   "de", VIS_EU_ONLY),
    (158, "DE", "de",   "de", VIS_GLOBAL),
    (2,   "DE", "at",   "de", VIS_EU_ONLY),
    (2,   "DE", "at",   "de", VIS_GLOBAL),
    (2,   "DE", "it",   "it", VIS_EU_ONLY),
    (4,   "DE", "it",   "it", VIS_GLOBAL),
    (2,   "DE", "fr",   "fr", VIS_GLOBAL),
    (1,   "DE", "es",   "es", VIS_GLOBAL),
    (1,   "DE", "info", "de", VIS_GLOBAL),
    (1,   "DE", "news", "en", VIS_GLOBAL),   # the US-hidden English wall
    (2,   "DE", "com",  "de", VIS_GLOBAL),
    (2,   "DE", "com",  "nl", VIS_GLOBAL),
    (4,   "DE", "net",  "de", VIS_GLOBAL),
    (2,   "DE", "net",  "nl", VIS_GLOBAL),
    (1,   "DE", "org",  "de", VIS_GLOBAL),
    # --- Swedish toplist (15) ---
    (4,   "SE", "com",  "de", VIS_GLOBAL),
    (2,   "SE", "com",  "en", VIS_GLOBAL),
    (1,   "SE", "com",  "da", VIS_GLOBAL),
    (3,   "SE", "net",  "de", VIS_GLOBAL),
    (2,   "SE", "net",  "da", VIS_GLOBAL),
    (1,   "SE", "net",  "en", VIS_GLOBAL),
    (1,   "SE", "org",  "en", VIS_GLOBAL),
    (1,   "SE", "org",  "fr", VIS_GLOBAL),
    # --- Australian toplist (5) ---
    (3,   "AU", "com",  "en", VIS_GLOBAL),
    (2,   "AU", "net",  "en", VIS_GLOBAL),
    # --- Brazilian toplist (1): the pt.climate-data.org analogue,
    #     German-operated, only walls for EU visitors (§4.1 footnote 2).
    (1,   "BR", "org",  "de", VIS_EU_ONLY),
)

#: Per-VP exclusion counts carving Table 1's non-EU detections out of
#: the 200 globally-visible walls: USE 197, USW 199, BR 196, ZA 199,
#: IN 192, AU 190.  The ".news" English wall is hidden from both US
#: VPs so their language column reads 9 while IN/AU read 10.
VP_EXCLUSIONS: Dict[str, int] = {
    "USE": 3, "USW": 1, "BR": 4, "ZA": 1, "IN": 8, "AU": 10,
}

#: Wall embedding mix (§3): 76 shadow DOM (20 of them closed),
#: 132 iframe, 72 main document.
PLACEMENT_MIX: Dict[str, int] = {
    "shadow-open": 56,
    "shadow-closed": 20,
    "iframe": 132,
    "main": 72,
}

#: How the wall reaches the page (drives §4.5 uBlock results):
#: SMP/listed-CMP-served walls are blocked (196 = 70%), inline and
#: unlisted-CMP walls survive (84).
SERVING_MIX: Dict[str, int] = {
    "smp:contentpass": 76,
    "smp:freechoice": 62,
    "cmp-listed": 58,
    "cmp-unlisted": 20,
    "inline": 64,
}

#: Monthly price buckets (€) per TLD — Figure 2's heatmap.  SMP-served
#: walls are priced 2.99 € by their platform and all sit in the .de
#: bucket-3 cell (155 = 138 SMP partners + 17 independents).
PRICE_MATRIX: Dict[str, Dict[int, int]] = {
    "de":   {1: 4, 2: 23, 3: 155, 4: 23, 5: 22, 6: 1, 7: 1, 8: 1, 9: 3},
    "com":  {2: 1, 3: 9, 4: 1, 5: 2, 9: 1},
    "net":  {2: 8, 3: 5, 4: 1},
    "it":   {1: 3, 2: 2, 3: 1},
    "at":   {2: 1, 3: 1, 4: 1, 5: 1},
    "org":  {3: 4},
    "fr":   {3: 1, 4: 1},
    "es":   {6: 1},
    "info": {9: 1},
    "news": {10: 1},
}

#: Figure 1 category shares for cookiewall sites (must sum to 1).
WALL_CATEGORY_SHARES: Tuple[Tuple[str, float], ...] = (
    ("News and Media", 0.27),
    ("Business", 0.09),
    ("Information Technology", 0.07),
    ("Entertainment", 0.065),
    ("Sports", 0.06),
    ("Reference", 0.055),
    ("Society and Lifestyles", 0.05),
    ("Search Engines and Portals", 0.045),
    ("Health and Wellness", 0.04),
    ("Games", 0.035),
    ("Web-based Email", 0.03),
    ("Travel", 0.03),
    ("Personal Vehicles", 0.025),
    ("Restaurant and Dining", 0.025),
    ("Finance and Banking", 0.02),
    ("Others", 0.085),
)

#: Background category shares for non-wall sites.
GENERIC_CATEGORY_SHARES: Tuple[Tuple[str, float], ...] = (
    ("Business", 0.16),
    ("Shopping", 0.12),
    ("News and Media", 0.10),
    ("Information Technology", 0.09),
    ("Entertainment", 0.08),
    ("Reference", 0.07),
    ("Education", 0.06),
    ("Society and Lifestyles", 0.05),
    ("Sports", 0.05),
    ("Travel", 0.04),
    ("Health and Wellness", 0.04),
    ("Games", 0.04),
    ("Finance and Banking", 0.04),
    ("Government", 0.03),
    ("Streaming Media", 0.03),
    ("Others", 0.10),
)

#: Languages per toplist country for ordinary (non-wall) sites.
COUNTRY_LANGUAGES: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "US": (("en", 1.0),),
    "BR": (("pt", 0.95), ("en", 0.05)),
    "DE": (("de", 0.93), ("en", 0.07)),
    "SE": (("sv", 0.88), ("en", 0.12)),
    "ZA": (("en", 0.7), ("zu", 0.3)),
    "IN": (("en", 1.0),),
    "AU": (("en", 1.0),),
}

#: ccTLD per toplist country for ordinary sites (+ generic spillover).
COUNTRY_TLDS: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "US": (("com", 0.72), ("org", 0.12), ("net", 0.10), ("io", 0.06)),
    "BR": (("com.br", 0.7), ("br", 0.12), ("com", 0.18)),
    "DE": (("de", 0.78), ("com", 0.14), ("net", 0.05), ("org", 0.03)),
    "SE": (("se", 0.74), ("com", 0.18), ("net", 0.05), ("org", 0.03)),
    "ZA": (("co.za", 0.66), ("com", 0.26), ("org", 0.08)),
    "IN": (("in", 0.5), ("com", 0.42), ("org", 0.08)),
    "AU": (("com.au", 0.62), ("au", 0.1), ("com", 0.22), ("net", 0.06)),
}


@dataclass(frozen=True)
class CookieProfile:
    """Parameters for a site's cookie behaviour (medians are targets).

    ``fp_plain``: first-party cookies set before any consent;
    ``fp_consented``: total first-party cookies once consent is given;
    ``ad_partners``: how many ad networks load after consent;
    ``sync_rate``: chance an ad partner chain-loads one sync pixel;
    ``cdn_partners``: benign third parties (cookies not tracking-listed);
    ``extra_ads_max``: per-visit jitter in additional ad partners.
    """

    fp_plain: int
    fp_consented: int
    ad_partners: int
    sync_rate: float
    cdn_partners: int
    extra_ads_max: int


@dataclass(frozen=True)
class WorldConfig:
    """Knobs for :func:`repro.webgen.world.build_world`."""

    seed: int = 2023
    #: 1.0 = the paper-scale world (45k reachable sites).
    scale: float = 1.0

    # -- population structure (full-scale values) ----------------------
    list_size: int = 10_000          # entries per country toplist
    top_bucket: int = 1_000          # CrUX-style "top 1k" bucket size
    global_sites: int = 3_000        # sites on all 7 toplists
    biregional_sites: int = 2_250    # sites on exactly 2 toplists
    unreachable_sites: int = 4_528   # dead sites (reachable union 45,222)

    # -- cookiewall population ------------------------------------------
    total_walls: int = 280
    bait_sites: int = 5              # false-positive bait (banner with €)

    # -- SMP rosters (§4.4): total partners (incl. off-toplist ones) ----
    contentpass_partners: int = 219  # 76 on the toplists
    freechoice_partners: int = 167   # 62 on the toplists
    smp_price_cents: int = 299       # 2.99 € / month

    # -- bot detection (paper §3 Limitations) ---------------------------
    #: Fraction of sites that serve a challenge page to naive crawlers.
    bot_sensitive_rate: float = 0.02

    # -- regular-banner behaviour ---------------------------------------
    banner_rate_eu_list: float = 0.82   # DE/SE-list sites show banners
    banner_rate_other: float = 0.55     # other sites, to EU visitors
    banner_everywhere_rate: float = 0.18  # of banner sites: banner for all
    reject_button_rate: float = 0.74    # banners that also offer reject

    # -- cookie profiles (calibrated to §4.3 / Figure 4+5 medians) ------
    profile_regular: CookieProfile = CookieProfile(
        fp_plain=4, fp_consented=15, ad_partners=1, sync_rate=0.15,
        cdn_partners=3, extra_ads_max=0,
    )
    profile_wall: CookieProfile = CookieProfile(
        fp_plain=5, fp_consented=20, ad_partners=13, sync_rate=0.9,
        cdn_partners=4, extra_ads_max=4,
    )
    profile_smp_partner: CookieProfile = CookieProfile(
        fp_plain=6, fp_consented=13, ad_partners=5, sync_rate=0.5,
        cdn_partners=3, extra_ads_max=2,
    )

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise WorldGenerationError("scale must be in (0, 1]")
        if self.total_walls != sum(c[0] for c in WALL_COHORTS):
            raise WorldGenerationError("wall cohorts do not sum to total_walls")

    # ------------------------------------------------------------------
    # Scaling helpers
    # ------------------------------------------------------------------
    def scaled(self, value: int, minimum: int = 0) -> int:
        """Scale an absolute count, keeping at least *minimum*."""
        return max(int(round(value * self.scale)), minimum)

    @property
    def n_list_size(self) -> int:
        return self.scaled(self.list_size, minimum=30)

    @property
    def n_top_bucket(self) -> int:
        return max(self.n_list_size // 10, 3)

    @property
    def n_global(self) -> int:
        return self.scaled(self.global_sites, minimum=5)

    @property
    def n_biregional(self) -> int:
        return self.scaled(self.biregional_sites, minimum=len(COUNTRIES))

    @property
    def n_walls(self) -> int:
        return self.scaled(self.total_walls, minimum=6)

    @property
    def n_bait(self) -> int:
        return self.scaled(self.bait_sites, minimum=1)

    @property
    def n_unreachable(self) -> int:
        return self.scaled(self.unreachable_sites)

    @property
    def n_contentpass(self) -> int:
        return self.scaled(self.contentpass_partners, minimum=4)

    @property
    def n_freechoice(self) -> int:
        return self.scaled(self.freechoice_partners, minimum=3)


def apportion(weights: "List[float] | Dict", total: int):
    """Largest-remainder apportionment of *total* over *weights*.

    Accepts a list of weights (returns a list of ints) or a dict
    (returns a dict with the same keys).  Guarantees the result sums to
    *total* and each entry is >= 0.
    """
    if isinstance(weights, dict):
        keys = list(weights)
        values = apportion([weights[k] for k in keys], total)
        return dict(zip(keys, values))
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        raise WorldGenerationError("apportion() needs positive weights")
    raw = [w / weight_sum * total for w in weights]
    floors = [int(x) for x in raw]
    remainder = total - sum(floors)
    order = sorted(
        range(len(raw)), key=lambda i: (raw[i] - floors[i]), reverse=True
    )
    for i in order[:remainder]:
        floors[i] += 1
    return floors
