"""The synthetic web: a deterministic population of websites.

This package generates the world the measurement runs against —
toplists, websites with banners/cookiewalls, the tracker ecosystem,
CMP/SMP servers — calibrated so that the *population marginals* match
what the paper reports (prevalence per country/TLD/language, price
distribution, SMP partner counts, tracker fan-out).  Every result is
still measured by running the real detection pipeline against rendered
pages; nothing is read back from ground truth during measurement.
"""

from repro.webgen.config import WorldConfig
from repro.webgen.spec import BannerKind, SiteSpec, WallSpec
from repro.webgen.world import World, build_world

__all__ = [
    "WorldConfig",
    "World",
    "build_world",
    "SiteSpec",
    "WallSpec",
    "BannerKind",
]
