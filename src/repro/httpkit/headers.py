"""Case-insensitive HTTP headers with multi-value support."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Headers:
    """An ordered, case-insensitive multimap of header fields."""

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            if isinstance(items, dict):
                items = items.items()
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header field (keeps existing fields of the same name)."""
        self._items.append((str(name), str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all fields named *name* with a single value."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value for *name*, or *default*."""
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> List[str]:
        """All values for *name*, in insertion order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def to_dict(self) -> Dict[str, str]:
        """Collapse to a plain dict (first value wins)."""
        out: Dict[str, str] = {}
        for name, value in self._items:
            out.setdefault(name.lower(), value)
        return out

    def copy(self) -> "Headers":
        return Headers(list(self._items))

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"
