"""HTTP message and cookie substrate.

Implements just enough of HTTP semantics for the measurement stack:
case-insensitive headers, request/response messages, and an RFC 6265
style cookie model (parsing ``Set-Cookie``, domain matching, a cookie
jar with first/third-party awareness).
"""

from repro.httpkit.cookies import (
    Cookie,
    CookieJar,
    NaiveCookieJar,
    domain_match,
    parse_cookie_header,
    parse_set_cookie,
)
from repro.httpkit.headers import Headers
from repro.httpkit.messages import Request, Response

__all__ = [
    "Headers",
    "Request",
    "Response",
    "Cookie",
    "CookieJar",
    "NaiveCookieJar",
    "parse_set_cookie",
    "parse_cookie_header",
    "domain_match",
]
