"""RFC 6265-style cookies: parsing, domain matching, and a cookie jar.

The measurement pipeline's key metric is the number of first-party,
third-party, and tracking cookies a visit accumulates (paper §4.3), so
the jar records for every cookie which origin set it and classifies
party-ness relative to the *top-level* page site the way OpenWPM does:
a cookie is third-party when its domain's registrable domain differs
from the visited page's registrable domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import CookieError
from repro.urlkit import URL, is_public_suffix, registrable_domain


@dataclass(frozen=True)
class Cookie:
    """A single cookie as stored in the jar."""

    name: str
    value: str
    domain: str              # without leading dot
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    host_only: bool = True   # True when no Domain attribute was given
    max_age: Optional[int] = None
    same_site: str = "lax"

    @property
    def site(self) -> Optional[str]:
        """The registrable domain the cookie belongs to."""
        return registrable_domain(self.domain)

    @property
    def is_session(self) -> bool:
        return self.max_age is None

    @property
    def expired(self) -> bool:
        return self.max_age is not None and self.max_age <= 0

    def key(self) -> Tuple[str, str, str]:
        return (self.name, self.domain, self.path)


@lru_cache(maxsize=16384)
def domain_match(host: str, cookie_domain: str) -> bool:
    """RFC 6265 §5.1.3 domain-match.

    Memoized: the jar evaluates every stored cookie against every
    outgoing request URL, over a small recurring set of string pairs.
    """
    host = host.lower().rstrip(".")
    cookie_domain = cookie_domain.lower().lstrip(".").rstrip(".")
    if host == cookie_domain:
        return True
    return host.endswith("." + cookie_domain)


def path_match(request_path: str, cookie_path: str) -> bool:
    """RFC 6265 §5.1.4 path-match."""
    if request_path == cookie_path:
        return True
    if request_path.startswith(cookie_path):
        if cookie_path.endswith("/"):
            return True
        return request_path[len(cookie_path):].startswith("/")
    return False


def parse_cookie_header(value: Optional[str]) -> Dict[str, str]:
    """Parse a request ``Cookie`` header into a name→value dict."""
    out: Dict[str, str] = {}
    if not value:
        return out
    for pair in value.split(";"):
        name, sep, val = pair.partition("=")
        if sep and name.strip():
            out[name.strip()] = val.strip()
    return out


def parse_set_cookie(header: str, request_url: URL) -> Cookie:
    """Parse a ``Set-Cookie`` header value in the context of a request.

    Raises :class:`CookieError` for cookies a browser would reject
    (empty names, domains that do not domain-match the request host,
    attempts to set cookies for a public suffix).
    """
    parts = header.split(";")
    name, sep, value = parts[0].partition("=")
    name = name.strip()
    value = value.strip().strip('"')
    if not sep or not name:
        raise CookieError(f"malformed cookie pair in {header!r}")

    domain = request_url.host
    host_only = True
    path = "/"
    secure = False
    http_only = False
    max_age: Optional[int] = None
    same_site = "lax"

    for part in parts[1:]:
        attr, _, attr_value = part.partition("=")
        attr = attr.strip().lower()
        attr_value = attr_value.strip()
        if attr == "domain" and attr_value:
            candidate = attr_value.lstrip(".").lower()
            if is_public_suffix(candidate):
                raise CookieError(
                    f"cookie domain {candidate!r} is a public suffix"
                )
            if not domain_match(request_url.host, candidate):
                raise CookieError(
                    f"cookie domain {candidate!r} does not match host "
                    f"{request_url.host!r}"
                )
            domain = candidate
            host_only = False
        elif attr == "path" and attr_value.startswith("/"):
            path = attr_value
        elif attr == "secure":
            secure = True
        elif attr == "httponly":
            http_only = True
        elif attr == "max-age":
            try:
                max_age = int(attr_value)
            except ValueError:
                raise CookieError(f"bad Max-Age in {header!r}") from None
        elif attr == "samesite" and attr_value:
            same_site = attr_value.lower()

    return Cookie(
        name=name,
        value=value,
        domain=domain,
        path=path,
        secure=secure,
        http_only=http_only,
        host_only=host_only,
        max_age=max_age,
        same_site=same_site,
    )


class CookieJar:
    """Stores cookies and answers matching + party-ness queries."""

    def __init__(self) -> None:
        self._cookies: Dict[Tuple[str, str, str], Cookie] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_cookie(self, cookie: Cookie) -> None:
        """Insert or replace a cookie (expired cookies delete)."""
        if cookie.expired:
            self._cookies.pop(cookie.key(), None)
            return
        self._cookies[cookie.key()] = cookie

    def set_from_header(self, header: str, request_url: URL) -> Optional[Cookie]:
        """Parse and store a Set-Cookie header; None when rejected."""
        try:
            cookie = parse_set_cookie(header, request_url)
        except CookieError:
            return None
        self.set_cookie(cookie)
        return cookie

    def clear(self, *, site: Optional[str] = None) -> int:
        """Delete all cookies, or only those belonging to *site*.

        Returns the number of cookies removed.  Clearing a single site
        models the "delete your cookies to re-decide" flow discussed in
        paper §5 (Revoking Cookiewall Acceptance).
        """
        if site is None:
            count = len(self._cookies)
            self._cookies.clear()
            return count
        keys = [k for k, c in self._cookies.items() if c.site == site]
        for key in keys:
            del self._cookies[key]
        return len(keys)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def all_cookies(self) -> List[Cookie]:
        return list(self._cookies.values())

    def __len__(self) -> int:
        return len(self._cookies)

    def __iter__(self):
        return iter(self.all_cookies())

    def cookies_for(self, url: URL, *, first_party_site: Optional[str] = None) -> List[Cookie]:
        """Cookies a request to *url* would carry.

        ``first_party_site`` enables a coarse SameSite check: strict
        cookies are withheld on cross-site requests.
        """
        out = []
        for cookie in self._cookies.values():
            if cookie.host_only:
                if url.host != cookie.domain:
                    continue
            elif not domain_match(url.host, cookie.domain):
                continue
            if not path_match(url.path, cookie.path):
                continue
            if cookie.secure and url.scheme != "https":
                continue
            if (
                first_party_site is not None
                and cookie.same_site == "strict"
                and registrable_domain(url.host) != first_party_site
            ):
                continue
            out.append(cookie)
        return out

    def get(self, name: str, domain: str) -> Optional[Cookie]:
        """Find a cookie by name on *domain* (any path)."""
        for cookie in self._cookies.values():
            if cookie.name == name and cookie.domain == domain.lower():
                return cookie
        return None

    def has(self, name: str, domain: str) -> bool:
        return self.get(name, domain) is not None

    # ------------------------------------------------------------------
    # Party-ness (paper §4.3 accounting)
    # ------------------------------------------------------------------
    def partition_by_party(self, page_site: str) -> Tuple[List[Cookie], List[Cookie]]:
        """Split into (first-party, third-party) relative to *page_site*."""
        first: List[Cookie] = []
        third: List[Cookie] = []
        for cookie in self._cookies.values():
            if cookie.site == page_site:
                first.append(cookie)
            else:
                third.append(cookie)
        return first, third

    def snapshot(self) -> "CookieJar":
        """An independent copy of the jar."""
        copy = CookieJar()
        copy._cookies = dict(self._cookies)
        return copy
