"""RFC 6265-style cookies: parsing, domain matching, and a cookie jar.

The measurement pipeline's key metric is the number of first-party,
third-party, and tracking cookies a visit accumulates (paper §4.3), so
the jar records for every cookie which origin set it and classifies
party-ness relative to the *top-level* page site the way OpenWPM does:
a cookie is third-party when its domain's registrable domain differs
from the visited page's registrable domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import CookieError
from repro.urlkit import URL, is_public_suffix, registrable_domain


@dataclass(frozen=True)
class Cookie:
    """A single cookie as stored in the jar."""

    name: str
    value: str
    domain: str              # without leading dot
    path: str = "/"
    secure: bool = False
    http_only: bool = False
    host_only: bool = True   # True when no Domain attribute was given
    max_age: Optional[int] = None
    same_site: str = "lax"

    @property
    def site(self) -> Optional[str]:
        """The registrable domain the cookie belongs to."""
        return registrable_domain(self.domain)

    @property
    def is_session(self) -> bool:
        return self.max_age is None

    @property
    def expired(self) -> bool:
        return self.max_age is not None and self.max_age <= 0

    def key(self) -> Tuple[str, str, str]:
        return (self.name, self.domain, self.path)


@lru_cache(maxsize=16384)
def domain_match(host: str, cookie_domain: str) -> bool:
    """RFC 6265 §5.1.3 domain-match.

    Memoized: the jar evaluates every stored cookie against every
    outgoing request URL, over a small recurring set of string pairs.
    """
    host = host.lower().rstrip(".")
    cookie_domain = cookie_domain.lower().lstrip(".").rstrip(".")
    if host == cookie_domain:
        return True
    return host.endswith("." + cookie_domain)


def path_match(request_path: str, cookie_path: str) -> bool:
    """RFC 6265 §5.1.4 path-match."""
    if request_path == cookie_path:
        return True
    if request_path.startswith(cookie_path):
        if cookie_path.endswith("/"):
            return True
        return request_path[len(cookie_path):].startswith("/")
    return False


def parse_cookie_header(value: Optional[str]) -> Dict[str, str]:
    """Parse a request ``Cookie`` header into a name→value dict."""
    out: Dict[str, str] = {}
    if not value:
        return out
    for pair in value.split(";"):
        name, sep, val = pair.partition("=")
        if sep and name.strip():
            out[name.strip()] = val.strip()
    return out


def parse_set_cookie(header: str, request_url: URL) -> Cookie:
    """Parse a ``Set-Cookie`` header value in the context of a request.

    Raises :class:`CookieError` for cookies a browser would reject
    (empty names, domains that do not domain-match the request host,
    attempts to set cookies for a public suffix).
    """
    parts = header.split(";")
    name, sep, value = parts[0].partition("=")
    name = name.strip()
    value = value.strip().strip('"')
    if not sep or not name:
        raise CookieError(f"malformed cookie pair in {header!r}")

    domain = request_url.host
    host_only = True
    path = "/"
    secure = False
    http_only = False
    max_age: Optional[int] = None
    same_site = "lax"

    for part in parts[1:]:
        attr, _, attr_value = part.partition("=")
        attr = attr.strip().lower()
        attr_value = attr_value.strip()
        if attr == "domain" and attr_value:
            candidate = attr_value.lstrip(".").lower()
            if is_public_suffix(candidate):
                raise CookieError(
                    f"cookie domain {candidate!r} is a public suffix"
                )
            if not domain_match(request_url.host, candidate):
                raise CookieError(
                    f"cookie domain {candidate!r} does not match host "
                    f"{request_url.host!r}"
                )
            domain = candidate
            host_only = False
        elif attr == "path" and attr_value.startswith("/"):
            path = attr_value
        elif attr == "secure":
            secure = True
        elif attr == "httponly":
            http_only = True
        elif attr == "max-age":
            try:
                max_age = int(attr_value)
            except ValueError:
                raise CookieError(f"bad Max-Age in {header!r}") from None
        elif attr == "samesite" and attr_value:
            same_site = attr_value.lower()

    return Cookie(
        name=name,
        value=value,
        domain=domain,
        path=path,
        secure=secure,
        http_only=http_only,
        host_only=host_only,
        max_age=max_age,
        same_site=same_site,
    )


class CookieJar:
    """Stores cookies and answers matching + party-ness queries.

    :meth:`cookies_for` is the hottest jar query — the browser calls
    it for every outgoing request — so cookies are bucketed by the
    registrable domain of their cookie-domain: a request can only
    carry cookies whose domain the request host domain-matches, and a
    domain-match implies a shared registrable domain, so one bucket
    lookup replaces the scan over every stored cookie.  Cookies whose
    domain has no registrable domain (bare public suffixes, unknown
    TLDs, ``localhost``) land in a small catch-all bucket that is
    always scanned.  Results keep global insertion order (replacing a
    cookie keeps its original position, exactly like the pre-index
    dict scan), so the emitted ``Cookie`` headers are unchanged
    byte-for-byte — :class:`NaiveCookieJar` preserves the linear scan
    as the differential oracle.
    """

    def __init__(self) -> None:
        self._cookies: Dict[Tuple[str, str, str], Cookie] = {}
        #: registrable domain -> key -> cookie (the hot-path index).
        self._site_index: Dict[str, Dict[Tuple[str, str, str], Cookie]] = {}
        #: Cookies whose domain has no registrable domain.
        self._unbucketed: Dict[Tuple[str, str, str], Cookie] = {}
        #: key -> global insertion rank (replacement keeps the rank,
        #: mirroring dict-order semantics of the pre-index jar).
        self._rank: Dict[Tuple[str, str, str], int] = {}
        self._next_rank = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _bucket(self, cookie: Cookie) -> Dict[Tuple[str, str, str], Cookie]:
        site = registrable_domain(cookie.domain)
        if site is None:
            return self._unbucketed
        return self._site_index.setdefault(site, {})

    def _discard(self, key: Tuple[str, str, str]) -> Optional[Cookie]:
        cookie = self._cookies.pop(key, None)
        if cookie is None:
            return None
        self._rank.pop(key, None)
        site = registrable_domain(cookie.domain)
        if site is None:
            self._unbucketed.pop(key, None)
        else:
            bucket = self._site_index.get(site)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del self._site_index[site]
        return cookie

    def set_cookie(self, cookie: Cookie) -> None:
        """Insert or replace a cookie (expired cookies delete)."""
        key = cookie.key()
        if cookie.expired:
            self._discard(key)
            return
        if key not in self._rank:
            self._rank[key] = self._next_rank
            self._next_rank += 1
        # The key embeds the domain, so a replacement lands in the
        # same bucket — overwrite both stores in place.
        self._cookies[key] = cookie
        self._bucket(cookie)[key] = cookie

    def set_from_header(self, header: str, request_url: URL) -> Optional[Cookie]:
        """Parse and store a Set-Cookie header; None when rejected."""
        try:
            cookie = parse_set_cookie(header, request_url)
        except CookieError:
            return None
        self.set_cookie(cookie)
        return cookie

    def clear(self, *, site: Optional[str] = None) -> int:
        """Delete all cookies, or only those belonging to *site*.

        Returns the number of cookies removed.  Clearing a single site
        models the "delete your cookies to re-decide" flow discussed in
        paper §5 (Revoking Cookiewall Acceptance).
        """
        if site is None:
            count = len(self._cookies)
            self._cookies.clear()
            self._site_index.clear()
            self._unbucketed.clear()
            self._rank.clear()
            self._next_rank = 0
            return count
        # ``cookie.site`` *is* the bucket key, so the site's bucket is
        # exactly the set the linear scan would have found.
        keys = list(self._site_index.get(site, ()))
        for key in keys:
            self._discard(key)
        return len(keys)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def all_cookies(self) -> List[Cookie]:
        return list(self._cookies.values())

    def __len__(self) -> int:
        return len(self._cookies)

    def __iter__(self):
        return iter(self.all_cookies())

    def _candidates(self, host: str) -> List[Cookie]:
        """Cookies that could possibly domain-match *host*, in global
        insertion order.

        A domain-match requires the request host to end with the
        cookie domain at a label boundary, which forces both onto the
        same registrable domain — so only *host*'s bucket plus the
        unbucketable catch-all can match.  A host with no registrable
        domain of its own can still exact/suffix-match an unbucketed
        cookie domain, so those always stay in the pool.
        """
        site = registrable_domain(host)
        bucket = self._site_index.get(site) if site is not None else None
        if not self._unbucketed:
            if not bucket:
                return []
            return list(bucket.values())
        if not bucket:
            return list(self._unbucketed.values())
        merged = list(bucket.values()) + list(self._unbucketed.values())
        merged.sort(key=lambda cookie: self._rank[cookie.key()])
        return merged

    def cookies_for(self, url: URL, *, first_party_site: Optional[str] = None) -> List[Cookie]:
        """Cookies a request to *url* would carry.

        ``first_party_site`` enables a coarse SameSite check: strict
        cookies are withheld on cross-site requests.
        """
        out = []
        for cookie in self._candidates(url.host):
            if cookie.host_only:
                if url.host != cookie.domain:
                    continue
            elif not domain_match(url.host, cookie.domain):
                continue
            if not path_match(url.path, cookie.path):
                continue
            if cookie.secure and url.scheme != "https":
                continue
            if (
                first_party_site is not None
                and cookie.same_site == "strict"
                and registrable_domain(url.host) != first_party_site
            ):
                continue
            out.append(cookie)
        return out

    def get(self, name: str, domain: str) -> Optional[Cookie]:
        """Find a cookie by name on *domain* (any path)."""
        for cookie in self._cookies.values():
            if cookie.name == name and cookie.domain == domain.lower():
                return cookie
        return None

    def has(self, name: str, domain: str) -> bool:
        return self.get(name, domain) is not None

    # ------------------------------------------------------------------
    # Party-ness (paper §4.3 accounting)
    # ------------------------------------------------------------------
    def partition_by_party(self, page_site: str) -> Tuple[List[Cookie], List[Cookie]]:
        """Split into (first-party, third-party) relative to *page_site*."""
        first: List[Cookie] = []
        third: List[Cookie] = []
        for cookie in self._cookies.values():
            if cookie.site == page_site:
                first.append(cookie)
            else:
                third.append(cookie)
        return first, third

    def snapshot(self) -> "CookieJar":
        """An independent copy of the jar."""
        copy = type(self)()
        copy._cookies = dict(self._cookies)
        copy._site_index = {
            site: dict(bucket) for site, bucket in self._site_index.items()
        }
        copy._unbucketed = dict(self._unbucketed)
        copy._rank = dict(self._rank)
        copy._next_rank = self._next_rank
        return copy


class NaiveCookieJar(CookieJar):
    """The pre-index jar: :meth:`cookies_for` scans every stored cookie.

    Kept as the differential oracle (mirroring
    :class:`repro.adblock.NaiveFilterEngine`): the indexed jar must
    answer every query exactly like this linear scan, list order
    included — ``tests/test_hotpaths_differential.py`` holds the two
    implementations together under randomized cookie workloads.  Only
    candidate selection is overridden; the matching predicate itself
    is shared, so the oracle diverges on indexing bugs and nothing
    else.
    """

    def _candidates(self, host: str) -> List[Cookie]:
        return list(self._cookies.values())
