"""HTTP request/response message objects used by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.httpkit.headers import Headers
from repro.urlkit import URL, parse

#: Resource types mirroring what browsers and ad-blockers distinguish.
RESOURCE_TYPES = (
    "document",
    "subdocument",   # iframes
    "script",
    "stylesheet",
    "image",
    "xhr",
    "other",
)


@dataclass
class Request:
    """An outgoing HTTP request."""

    url: URL
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    #: The top-level page URL on whose behalf this request is issued.
    initiator: Optional[URL] = None
    resource_type: str = "document"

    def __post_init__(self) -> None:
        if isinstance(self.url, str):  # convenience for tests
            self.url = parse(self.url)
        if isinstance(self.initiator, str):
            self.initiator = parse(self.initiator)
        if self.resource_type not in RESOURCE_TYPES:
            raise ValueError(f"unknown resource type {self.resource_type!r}")

    @property
    def is_third_party(self) -> bool:
        """True when the request crosses the initiator's site boundary."""
        if self.initiator is None:
            return False
        return self.url.site != self.initiator.site

    def __repr__(self) -> str:
        return f"<Request {self.method} {self.url}>"


@dataclass
class Response:
    """An HTTP response produced by a simulated origin server."""

    request: Request
    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "text/html")

    @property
    def set_cookie_headers(self) -> List[str]:
        return self.headers.get_all("set-cookie")

    def add_cookie(self, header_value: str) -> None:
        """Attach a ``Set-Cookie`` header to the response."""
        self.headers.add("set-cookie", header_value)

    def __repr__(self) -> str:
        return f"<Response {self.status} for {self.request.url}>"
