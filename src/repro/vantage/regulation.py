"""Privacy regulation regimes relevant to banner behaviour.

GDPR requires *opt-in* consent before storing personal data, so
GDPR-region visitors are shown consent banners.  CCPA is *opt-out*
(banners optional, often a small notice), LGPD sits in between.
Websites in the synthetic web use these regimes to decide whether to
render a banner/cookiewall for a visitor, mirroring the geo-dependent
behaviour the paper observed (EU vantage points see ~280 cookiewalls,
non-EU ones ~190-200).

Besides the per-vantage-point :class:`Regulation` enum, this module
defines the *scenario* knobs multi-vantage campaigns run under: a
:class:`RegulationScenario` bundles VPN-like relocations (a logical
vantage point whose traffic exits elsewhere, optionally only from a
given wave onward) with geo-blocking (wall sites refusing visitors
from a regulated region outright).  Scenarios serialise to a
JSON-stable mapping via :meth:`RegulationScenario.to_context`, which
is what campaign plans carry in ``CrawlPlan.context`` — so the active
scenario is covered by checkpoint fingerprints and travels unchanged
to process-pool workers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple


class Regulation(enum.Enum):
    """A data protection regime in force at a vantage point."""

    GDPR = "gdpr"
    CCPA = "ccpa"
    LGPD = "lgpd"
    NONE = "none"

    @property
    def requires_opt_in(self) -> bool:
        """True when consent must be collected before tracking."""
        return self is Regulation.GDPR

    @property
    def requires_opt_out(self) -> bool:
        """True when users must merely be able to object."""
        return self in (Regulation.CCPA, Regulation.LGPD)

    @property
    def banner_expected(self) -> bool:
        """True when websites typically render a consent banner."""
        return self is not Regulation.NONE


#: Named regulation regimes a multi-vantage campaign can run under.
#: ``baseline`` is the paper's setup (every VP browses from home);
#: ``eu`` routes all non-EU VPs through a German exit (walls appear
#: everywhere); ``non-eu`` routes the EU VPs through a US exit
#: (EU-only walls vanish); ``geo-blocked`` has wall sites refuse
#: GDPR-region visitors outright.
REGULATION_REGIMES: Tuple[str, ...] = (
    "baseline", "eu", "non-eu", "geo-blocked",
)


@dataclass(frozen=True)
class RegulationScenario:
    """Scenario knobs for a multi-vantage campaign.

    ``relocations`` maps a logical vantage point to the vantage point
    its traffic actually exits from (a VPN-like relocation): the visit
    record keeps the logical VP, the synthetic web sees the exit VP.
    ``relocate_from_month`` delays the relocations — waves before that
    month browse from home, so a mid-campaign relocation changes
    subsequent waves only.  ``geo_blocked`` names vantage points that
    accept-or-pay wall sites refuse to serve at all (the "451:
    unavailable for legal reasons" strategy some publishers chose);
    blocking applies to the *exit* vantage point, so a relocation out
    of a blocked region evades the block — and that is observable in
    the discrepancy report.
    """

    relocations: Tuple[Tuple[str, str], ...] = ()
    relocate_from_month: int = 0
    geo_blocked: FrozenSet[str] = frozenset()

    def validate(self) -> "RegulationScenario":
        """Check every referenced vantage-point code resolves."""
        from repro.vantage.points import get_vantage_point

        if self.relocate_from_month < 0:
            raise ValueError("relocate_from_month must be >= 0")
        for home, exit_code in self.relocations:
            get_vantage_point(home)
            get_vantage_point(exit_code)
        for code in self.geo_blocked:
            get_vantage_point(code)
        return self

    @property
    def is_baseline(self) -> bool:
        """True when the scenario changes nothing about a crawl."""
        return not self.relocations and not self.geo_blocked

    def exit_vp(self, vp_code: str, wave: int = 0) -> str:
        """The vantage point *vp_code*'s traffic exits from in *wave*."""
        if wave >= self.relocate_from_month:
            for home, exit_code in self.relocations:
                if home == vp_code:
                    return exit_code
        return vp_code

    def blocks(self, vp_code: str) -> bool:
        """True when wall sites refuse visitors exiting at *vp_code*."""
        return vp_code in self.geo_blocked

    def to_context(self) -> dict:
        """JSON-stable mapping for ``CrawlPlan.context`` (sorted keys,
        plain types), so identical scenarios fingerprint identically."""
        return {
            "geo_blocked": sorted(self.geo_blocked),
            "relocate_from_month": self.relocate_from_month,
            "relocations": dict(sorted(self.relocations)),
        }

    @classmethod
    def from_context(cls, data: Optional[Mapping]) -> "RegulationScenario":
        """Rebuild a scenario from :meth:`to_context` output."""
        data = data or {}
        relocations = tuple(sorted(
            (str(home), str(exit_code))
            for home, exit_code in (data.get("relocations") or {}).items()
        ))
        return cls(
            relocations=relocations,
            relocate_from_month=int(data.get("relocate_from_month", 0)),
            geo_blocked=frozenset(
                str(code) for code in (data.get("geo_blocked") or ())
            ),
        )


def regime_scenario(regime: str) -> RegulationScenario:
    """The :class:`RegulationScenario` for a named regime.

    Regime names are matched case-insensitively; unknown names raise a
    ``ValueError`` listing :data:`REGULATION_REGIMES`.
    """
    from repro.vantage.points import VANTAGE_POINTS

    name = str(regime).lower()
    if name not in REGULATION_REGIMES:
        known = ", ".join(REGULATION_REGIMES)
        raise ValueError(f"unknown regulation regime {regime!r}; known: {known}")
    if name == "eu":
        return RegulationScenario(relocations=tuple(sorted(
            (code, "DE")
            for code, vp in VANTAGE_POINTS.items() if not vp.in_eu
        )))
    if name == "non-eu":
        return RegulationScenario(relocations=tuple(sorted(
            (code, "USE")
            for code, vp in VANTAGE_POINTS.items() if vp.in_eu
        )))
    if name == "geo-blocked":
        return RegulationScenario(geo_blocked=frozenset(
            code for code, vp in VANTAGE_POINTS.items() if vp.in_eu
        ))
    return RegulationScenario()


def build_scenario(
    regime: str = "baseline",
    *,
    relocations: Optional[Mapping[str, str]] = None,
    relocate_from_month: int = 0,
    geo_blocked=(),
) -> RegulationScenario:
    """Compose a named regime with explicit knobs.

    Explicit ``relocations`` override the regime's for the same
    logical VP; ``geo_blocked`` codes are added to the regime's set.
    All vantage-point codes are accepted case-insensitively and
    normalised to canonical form.
    """
    from repro.vantage.points import get_vantage_point

    base = regime_scenario(regime)
    merged = dict(base.relocations)
    for home, exit_code in (relocations or {}).items():
        merged[get_vantage_point(home).code] = get_vantage_point(exit_code).code
    blocked = set(base.geo_blocked)
    blocked.update(get_vantage_point(code).code for code in geo_blocked)
    return RegulationScenario(
        relocations=tuple(sorted(merged.items())),
        relocate_from_month=max(relocate_from_month, base.relocate_from_month),
        geo_blocked=frozenset(blocked),
    ).validate()
