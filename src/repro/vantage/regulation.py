"""Privacy regulation regimes relevant to banner behaviour.

GDPR requires *opt-in* consent before storing personal data, so
GDPR-region visitors are shown consent banners.  CCPA is *opt-out*
(banners optional, often a small notice), LGPD sits in between.
Websites in the synthetic web use these regimes to decide whether to
render a banner/cookiewall for a visitor, mirroring the geo-dependent
behaviour the paper observed (EU vantage points see ~280 cookiewalls,
non-EU ones ~190-200).
"""

from __future__ import annotations

import enum


class Regulation(enum.Enum):
    """A data protection regime in force at a vantage point."""

    GDPR = "gdpr"
    CCPA = "ccpa"
    LGPD = "lgpd"
    NONE = "none"

    @property
    def requires_opt_in(self) -> bool:
        """True when consent must be collected before tracking."""
        return self is Regulation.GDPR

    @property
    def requires_opt_out(self) -> bool:
        """True when users must merely be able to object."""
        return self in (Regulation.CCPA, Regulation.LGPD)

    @property
    def banner_expected(self) -> bool:
        """True when websites typically render a consent banner."""
        return self is not Regulation.NONE
