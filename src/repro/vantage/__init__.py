"""Vantage points and privacy regulations (paper §3, Table 1)."""

from repro.vantage.points import (
    VANTAGE_POINTS,
    VP_ORDER,
    VantagePoint,
    get_vantage_point,
)
from repro.vantage.regulation import (
    REGULATION_REGIMES,
    Regulation,
    RegulationScenario,
    build_scenario,
    regime_scenario,
)

__all__ = [
    "VantagePoint",
    "VANTAGE_POINTS",
    "VP_ORDER",
    "get_vantage_point",
    "Regulation",
    "RegulationScenario",
    "REGULATION_REGIMES",
    "regime_scenario",
    "build_scenario",
]
