"""The eight measurement vantage points used in the paper (§3).

Each vantage point carries the attributes Table 1 is split by: the
country whose CrUX-like toplist it contributes, the associated ccTLD,
and the most commonly spoken language in that country.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.vantage.regulation import Regulation


@dataclass(frozen=True)
class VantagePoint:
    """A measurement location (modelled after an AWS region)."""

    code: str             # short identifier used throughout the library
    city: str
    country: str
    country_code: str     # ISO-ish country code; keys the toplists
    cctld: str            # ccTLD associated with the VP country
    language: str         # most commonly spoken language (ISO 639-1)
    regulation: Regulation
    in_eu: bool = False

    @property
    def is_gdpr(self) -> bool:
        return self.regulation is Regulation.GDPR

    def __str__(self) -> str:
        return f"{self.city} ({self.code})"


#: Display/iteration order used by Table 1 in the paper.
VP_ORDER: Tuple[str, ...] = (
    "USE", "USW", "BR", "DE", "SE", "ZA", "IN", "AU",
)

VANTAGE_POINTS: Dict[str, VantagePoint] = {
    "USE": VantagePoint(
        code="USE", city="Ashburn", country="United States (East)",
        country_code="US", cctld="us", language="en",
        regulation=Regulation.NONE,
    ),
    "USW": VantagePoint(
        code="USW", city="San Francisco", country="United States (West)",
        country_code="US", cctld="us", language="en",
        regulation=Regulation.CCPA,
    ),
    "BR": VantagePoint(
        code="BR", city="São Paulo", country="Brazil",
        country_code="BR", cctld="br", language="pt",
        regulation=Regulation.LGPD,
    ),
    "DE": VantagePoint(
        code="DE", city="Frankfurt", country="Germany",
        country_code="DE", cctld="de", language="de",
        regulation=Regulation.GDPR, in_eu=True,
    ),
    "SE": VantagePoint(
        code="SE", city="Stockholm", country="Sweden",
        country_code="SE", cctld="se", language="sv",
        regulation=Regulation.GDPR, in_eu=True,
    ),
    "ZA": VantagePoint(
        code="ZA", city="Cape Town", country="South Africa",
        country_code="ZA", cctld="za", language="zu",
        regulation=Regulation.NONE,
    ),
    "IN": VantagePoint(
        code="IN", city="Mumbai", country="India",
        country_code="IN", cctld="in", language="en",
        regulation=Regulation.NONE,
    ),
    "AU": VantagePoint(
        code="AU", city="Sydney", country="Australia",
        country_code="AU", cctld="au", language="en",
        regulation=Regulation.NONE,
    ),
}

#: Distinct toplist countries (US appears twice among VPs).
TOPLIST_COUNTRIES: Tuple[str, ...] = ("US", "BR", "DE", "SE", "ZA", "IN", "AU")


def get_vantage_point(code: str) -> VantagePoint:
    """Look up a vantage point by code, case-insensitively.

    ``"de"``, ``"De"`` and ``"DE"`` all resolve to Frankfurt.  Unknown
    codes raise a :class:`KeyError` that names the known vantage
    points instead of echoing the bad key bare.
    """
    point = VANTAGE_POINTS.get(code)
    if point is None and isinstance(code, str):
        point = VANTAGE_POINTS.get(code.upper())
    if point is None:
        known = ", ".join(sorted(VANTAGE_POINTS))
        raise KeyError(f"unknown vantage point {code!r}; known: {known}")
    return point
