"""A CSS selector subset used by the crawler and the ad-block engine.

Supported grammar (enough for EasyList-style cosmetic filters and for
Selenium-style lookups):

- selector groups:         ``a, b``
- combinators:             descendant (whitespace) and child (``>``)
- type / universal:        ``div``, ``*``
- id / class:              ``#id``, ``.class``
- attribute selectors:     ``[attr]``, ``[attr=v]``, ``[attr*=v]``,
                           ``[attr^=v]``, ``[attr$=v]``, ``[attr~=v]``
- negation:                ``:not(<compound>)``

Selectors never pierce shadow roots or iframes — exactly the browser
behaviour the paper's shadow-DOM workaround exists to overcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Tuple

from repro import perf
from repro.dom.node import Document, Element, Node
from repro.errors import SelectorError


@dataclass
class _Step:
    """One compound selector plus the combinator linking it leftwards."""

    combinator: str  # "" for the first step, " " or ">" otherwise
    tag: Optional[str] = None
    element_id: Optional[str] = None
    classes: List[str] = field(default_factory=list)
    attrs: List[Tuple[str, str, Optional[str]]] = field(default_factory=list)
    negations: List["_Step"] = field(default_factory=list)

    def matches(self, element: Element) -> bool:
        if self.tag not in (None, "*") and element.tag != self.tag:
            return False
        if self.element_id is not None and element.id != self.element_id:
            return False
        if self.classes:
            have = set(element.classes)
            if not set(self.classes) <= have:
                return False
        for name, op, expected in self.attrs:
            actual = element.get_attribute(name)
            if not _attr_matches(actual, op, expected):
                return False
        for negated in self.negations:
            if negated.matches(element):
                return False
        return True


def _attr_matches(actual: Optional[str], op: str, expected: Optional[str]) -> bool:
    if actual is None:
        return False
    if op == "exists":
        return True
    assert expected is not None
    if op == "=":
        return actual == expected
    if op == "*=":
        return expected in actual
    if op == "^=":
        return bool(expected) and actual.startswith(expected)
    if op == "$=":
        return bool(expected) and actual.endswith(expected)
    if op == "~=":
        return expected in actual.split()
    raise SelectorError(f"unknown attribute operator {op!r}")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def parse_selector(selector: str) -> List[List[_Step]]:
    """Parse a selector group into a list of step chains."""
    if not selector or not selector.strip():
        raise SelectorError("empty selector")
    chains = []
    for part in _split_top_level(selector, ","):
        chains.append(_parse_chain(part.strip()))
    return chains


def _split_top_level(text: str, sep: str) -> List[str]:
    """Split on *sep* outside brackets/parens."""
    out: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth < 0:
                raise SelectorError(f"unbalanced brackets in {text!r}")
        if ch == sep and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise SelectorError(f"unbalanced brackets in {text!r}")
    out.append("".join(current))
    return out


def _parse_chain(text: str) -> List[_Step]:
    if not text:
        raise SelectorError("empty selector in group")
    tokens = _tokenize_chain(text)
    steps: List[_Step] = []
    combinator = ""
    for token in tokens:
        if token in (" ", ">"):
            if not steps or combinator:
                raise SelectorError(f"misplaced combinator in {text!r}")
            combinator = token
            continue
        step = _parse_compound(token)
        step.combinator = combinator if steps else ""
        if steps and not step.combinator:
            step.combinator = " "
        steps.append(step)
        combinator = ""
    if combinator:
        raise SelectorError(f"dangling combinator in {text!r}")
    if not steps:
        raise SelectorError(f"no compound selectors in {text!r}")
    return steps


def _tokenize_chain(text: str) -> List[str]:
    """Split a chain into compound selectors and combinators."""
    tokens: List[str] = []
    current: List[str] = []
    depth = 0
    pending_space = False
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if depth == 0 and ch.isspace():
            pending_space = True
            continue
        if depth == 0 and ch == ">":
            if current:
                tokens.append("".join(current))
                current = []
            tokens.append(">")
            pending_space = False
            continue
        if pending_space:
            if current:
                tokens.append("".join(current))
                current = []
            tokens.append(" ")
            pending_space = False
        current.append(ch)
    if current:
        tokens.append("".join(current))
    # Collapse "  >  " sequences: space tokens adjacent to ">" are dropped.
    cleaned: List[str] = []
    for token in tokens:
        if token == " " and cleaned and cleaned[-1] == ">":
            continue
        if token == ">" and cleaned and cleaned[-1] == " ":
            cleaned[-1] = ">"
            continue
        cleaned.append(token)
    return cleaned


def _parse_compound(text: str) -> _Step:
    step = _Step(combinator="")
    i = 0
    n = len(text)
    if not text:
        raise SelectorError("empty compound selector")
    # Leading type or universal selector.
    if text[0] not in "#.[:":
        j = i
        while j < n and (text[j].isalnum() or text[j] in "-_*"):
            j += 1
        if j == i:
            raise SelectorError(f"cannot parse selector {text!r}")
        step.tag = text[i:j].lower()
        i = j
    while i < n:
        ch = text[i]
        if ch == "#":
            j = _ident_end(text, i + 1)
            if j == i + 1:
                raise SelectorError(f"empty id selector in {text!r}")
            step.element_id = text[i + 1:j]
            i = j
        elif ch == ".":
            j = _ident_end(text, i + 1)
            if j == i + 1:
                raise SelectorError(f"empty class selector in {text!r}")
            step.classes.append(text[i + 1:j])
            i = j
        elif ch == "[":
            j = text.find("]", i)
            if j < 0:
                raise SelectorError(f"unterminated attribute selector {text!r}")
            step.attrs.append(_parse_attr(text[i + 1:j]))
            i = j + 1
        elif ch == ":":
            if not text.startswith(":not(", i):
                raise SelectorError(f"unsupported pseudo-class in {text!r}")
            j = _find_matching_paren(text, i + 4)
            inner = text[i + 5:j]
            step.negations.append(_parse_compound(inner.strip()))
            i = j + 1
        else:
            raise SelectorError(f"unexpected character {ch!r} in {text!r}")
    return step


def _ident_end(text: str, start: int) -> int:
    j = start
    while j < len(text) and (text[j].isalnum() or text[j] in "-_"):
        j += 1
    return j


def _find_matching_paren(text: str, open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    raise SelectorError(f"unbalanced parentheses in {text!r}")


def _parse_attr(body: str) -> Tuple[str, str, Optional[str]]:
    body = body.strip()
    for op in ("*=", "^=", "$=", "~=", "="):
        if op in body:
            name, _, value = body.partition(op)
            value = value.strip()
            if len(value) >= 2 and value[0] == value[-1] and value[0] in "'\"":
                value = value[1:-1]
            return name.strip().lower(), op, value
    return body.lower(), "exists", None


# ---------------------------------------------------------------------------
# Compiled selector plans
# ---------------------------------------------------------------------------

@lru_cache(maxsize=2048)
def compile_selector(selector: str) -> List[List[_Step]]:
    """Parse *selector* once and cache the step chains (module-level).

    The crawler evaluates the same small set of selectors (cosmetic
    filters, effect targets, BannerClick lookups) on every visit;
    compiling once turns the per-query parse into a dict hit.  The
    cached chains are shared — callers must never mutate them.
    """
    return parse_selector(selector)


def _chains_for(selector: str) -> List[List[_Step]]:
    if perf.config.selector_index:
        return compile_selector(selector)
    return parse_selector(selector)


# ---------------------------------------------------------------------------
# Per-document query index
# ---------------------------------------------------------------------------

class _QueryIndex:
    """Tag/id/class buckets over one document's (non-pierced) tree.

    Built in one document-order walk and revalidated against the
    document's mutation revision; bucket lists are document-ordered, so
    queries served from a bucket come back in the same order a full
    walk would produce.  Shadow trees and iframe documents are *not*
    indexed — exactly the subtrees ``querySelectorAll`` cannot see
    (iframe content documents get their own index).
    """

    __slots__ = ("revision", "order", "all_elements", "by_id", "by_class", "by_tag")

    def __init__(self, document: Document) -> None:
        self.revision = document.revision
        self.order: Dict[Element, int] = {}
        self.all_elements: List[Element] = []
        self.by_id: Dict[str, List[Element]] = {}
        self.by_class: Dict[str, List[Element]] = {}
        self.by_tag: Dict[str, List[Element]] = {}
        seq = 0
        for node in document.descendants():
            if not isinstance(node, Element):
                continue
            self.order[node] = seq
            seq += 1
            self.all_elements.append(node)
            self.by_tag.setdefault(node.tag, []).append(node)
            element_id = node.attrs.get("id")
            if element_id:
                self.by_id.setdefault(element_id, []).append(node)
            class_attr = node.attrs.get("class")
            if class_attr:
                # dict.fromkeys dedupes repeated class names ("ad ad")
                # so no bucket lists an element twice.
                for name in dict.fromkeys(class_attr.split()):
                    self.by_class.setdefault(name, []).append(node)

    def candidates(self, step: _Step) -> List[Element]:
        """A document-ordered superset of the step's possible matches.

        Picks the most selective bucket the compound selector allows
        (id, then rarest class, then tag); compounds with none of those
        fall back to the full element list.
        """
        if step.element_id is not None:
            return self.by_id.get(step.element_id, [])
        if step.classes:
            best: Optional[List[Element]] = None
            for name in step.classes:
                bucket = self.by_class.get(name)
                if bucket is None:
                    return []
                if best is None or len(bucket) < len(best):
                    best = bucket
            return best if best is not None else []
        if step.tag not in (None, "*"):
            return self.by_tag.get(step.tag, [])
        return self.all_elements


def _usable_index(root: Node) -> Optional[Tuple[_QueryIndex, Optional[Element]]]:
    """The (index, scope) pair serving queries rooted at *root*, or None.

    *scope* is None when the root is the document itself (no
    containment filter needed).  Returns None — meaning "walk instead"
    — when indexing is disabled, the root's tree top is not a
    :class:`Document` (detached subtrees, shadow trees), or the root
    is not part of the indexed tree.
    """
    if not perf.config.selector_index:
        return None
    top = root
    while top.parent is not None:
        top = top.parent
    if not isinstance(top, Document):
        return None
    index = top._query_index
    if index is None or index.revision != top.revision:
        index = _QueryIndex(top)
        top._query_index = index
    if root is top:
        return index, None
    if isinstance(root, Element) and root in index.order:
        return index, root
    return None


def first_element_by_id(document: Document, element_id: str) -> Optional[Element]:
    """Document-order first element whose ``id`` equals *element_id*.

    Serves ``Document.get_element_by_id`` from the id bucket when the
    index is usable; empty ids (which only match elements *without* an
    id attribute) and un-indexed roots fall back to the walk.
    """
    if element_id:
        info = _usable_index(document)
        if info is not None:
            index, _ = info
            bucket = index.by_id.get(element_id, ())
            return bucket[0] if bucket else None
    for el in document.elements():
        if el.id == element_id:
            return el
    return None


def iter_elements_by_tags(root: Node, tags) -> List[Element]:
    """Document-order elements under *root* whose tag is in *tags*.

    The index-served equivalent of ``[el for el in root.elements() if
    el.tag in tags]`` — BannerClick's container and button scans run
    through this.  Only document-rooted scans use the index: for a
    subtree root, walking the (usually small) subtree beats filtering
    page-wide tag buckets through ancestor checks.
    """
    if root.parent is None and isinstance(root, Document):
        info = _usable_index(root)
        if info is not None:
            index, _ = info
            picked: List[Element] = []
            for tag in tags:
                bucket = index.by_tag.get(tag)
                if bucket:
                    picked.extend(bucket)
            picked.sort(key=index.order.__getitem__)
            return picked
    return [el for el in root.elements() if el.tag in tags]


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------

def matches_selector(element: Element, selector: str) -> bool:
    """True when *element* matches any chain in the selector group."""
    chains = _chains_for(selector)
    return any(_match_chain(element, chain) for chain in chains)


def _match_chain(element: Element, chain: List[_Step]) -> bool:
    if not chain[-1].matches(element):
        return False
    return _match_left(element, chain, len(chain) - 2)


def _match_left(element: Element, chain: List[_Step], index: int) -> bool:
    if index < 0:
        return True
    step = chain[index]
    right_combinator = chain[index + 1].combinator
    parent = element.parent
    if right_combinator == ">":
        if isinstance(parent, Element) and step.matches(parent):
            return _match_left(parent, chain, index - 1)
        return False
    # Descendant combinator: try every ancestor.
    node: Optional[Node] = parent
    while node is not None:
        if isinstance(node, Element) and step.matches(node):
            if _match_left(node, chain, index - 1):
                return True
        node = node.parent
    return False


def query_selector_all(root: Node, selector: str) -> List[Element]:
    """All elements under *root* matching the selector (document order).

    Shadow roots and iframe documents are *not* entered, matching
    ``querySelectorAll`` semantics.  When the root's document has a
    valid query index, candidates come from the most selective
    id/class/tag bucket instead of a full-tree walk.
    """
    chains = _chains_for(selector)
    info = _usable_index(root)
    if info is None:
        return [
            element
            for element in _iter_elements(root)
            if any(_match_chain(element, chain) for chain in chains)
        ]
    index, scope = info
    if len(chains) == 1:
        chain = chains[0]
        return [
            el
            for el in index.candidates(chain[-1])
            if (scope is None or el._has_ancestor(scope))
            and _match_chain(el, chain)
        ]
    matched: Dict[Element, int] = {}
    for chain in chains:
        for el in index.candidates(chain[-1]):
            if el in matched:
                continue
            if scope is not None and not el._has_ancestor(scope):
                continue
            if _match_chain(el, chain):
                matched[el] = index.order[el]
    return sorted(matched, key=matched.__getitem__)


def query_selector(root: Node, selector: str) -> Optional[Element]:
    """First match of :func:`query_selector_all`, or None.

    Early-exits: the indexed path stops at each chain's first
    document-order candidate, the walk path stops at the first match —
    neither materialises the full result list.
    """
    chains = _chains_for(selector)
    info = _usable_index(root)
    if info is None:
        for element in _iter_elements(root):
            if any(_match_chain(element, chain) for chain in chains):
                return element
        return None
    index, scope = info
    best: Optional[Element] = None
    best_seq = -1
    for chain in chains:
        for el in index.candidates(chain[-1]):
            if scope is not None and not el._has_ancestor(scope):
                continue
            if _match_chain(el, chain):
                seq = index.order[el]
                if best is None or seq < best_seq:
                    best, best_seq = el, seq
                break  # bucket is document-ordered: first hit is the chain's min
    return best


def _iter_elements(root: Node) -> Iterator[Element]:
    for node in root.descendants():
        if isinstance(node, Element):
            yield node
