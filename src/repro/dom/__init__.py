"""A lightweight DOM with shadow roots, iframes, CSS selectors and XPath.

This package models exactly the parts of the browser DOM the paper's
tooling has to fight with:

- regular element trees (:class:`Element`, :class:`Text`, :class:`Document`),
- **open and closed shadow roots** (:class:`ShadowRoot`) which CSS/XPath
  lookups cannot pierce — the limitation that motivates BannerClick's
  clone-into-body workaround (paper §3),
- **iframes** whose content is a separate :class:`Document`,
- a CSS selector subset and a tiny XPath engine
  (:mod:`repro.dom.selector`, :mod:`repro.dom.xpath`),
- HTML serialisation including declarative shadow DOM
  (:mod:`repro.dom.serialize`).
"""

from repro.dom.node import (
    Comment,
    Document,
    Element,
    Node,
    ShadowRoot,
    Text,
)
from repro.dom.selector import matches_selector, query_selector_all
from repro.dom.serialize import to_html
from repro.dom.xpath import xpath_all

__all__ = [
    "Node",
    "Element",
    "Text",
    "Comment",
    "Document",
    "ShadowRoot",
    "query_selector_all",
    "matches_selector",
    "xpath_all",
    "to_html",
]
