"""A tiny XPath engine covering the expressions BannerClick issues.

Supported forms::

    //button
    //*
    //div//button
    /html/body/div
    //button[@id='accept']
    //div[contains(@class, 'cookie')]
    //button[contains(text(), 'Accept')]
    //button[text()='OK']
    //div[@class='x'][contains(text(), 'y')]      (conjunction)

Like real browser XPath, the engine does **not** descend into shadow
roots or iframe documents.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.dom.node import Element, Node, Text
from repro.errors import SelectorError


@dataclass
class _Predicate:
    kind: str  # "attr-eq", "attr-contains", "text-eq", "text-contains"
    name: Optional[str]
    value: str

    def test(self, element: Element) -> bool:
        if self.kind == "attr-eq":
            return element.get_attribute(self.name or "") == self.value
        if self.kind == "attr-contains":
            actual = element.get_attribute(self.name or "")
            return actual is not None and self.value in actual
        own_text = _own_text(element)
        if self.kind == "text-eq":
            return own_text.strip() == self.value
        if self.kind == "text-contains":
            return self.value in own_text
        raise SelectorError(f"unknown predicate kind {self.kind!r}")


@dataclass
class _XStep:
    axis: str  # "child" (/) or "descendant" (//)
    tag: str  # element name or "*"
    predicates: List[_Predicate] = field(default_factory=list)

    def node_matches(self, element: Element) -> bool:
        if self.tag != "*" and element.tag != self.tag:
            return False
        return all(p.test(element) for p in self.predicates)


_STEP_RE = re.compile(r"(//|/)([a-zA-Z][\w-]*|\*)((?:\[[^\]]*\])*)")
_PRED_RE = re.compile(r"\[([^\]]*)\]")


def parse_xpath(expression: str) -> List[_XStep]:
    expression = expression.strip()
    if not expression or expression[0] != "/":
        raise SelectorError(f"only absolute XPath supported: {expression!r}")
    steps: List[_XStep] = []
    pos = 0
    while pos < len(expression):
        match = _STEP_RE.match(expression, pos)
        if match is None:
            raise SelectorError(f"cannot parse XPath at {expression[pos:]!r}")
        axis = "descendant" if match.group(1) == "//" else "child"
        tag = match.group(2).lower()
        predicates = [
            _parse_predicate(p) for p in _PRED_RE.findall(match.group(3))
        ]
        steps.append(_XStep(axis=axis, tag=tag, predicates=predicates))
        pos = match.end()
    if pos != len(expression):
        raise SelectorError(f"trailing junk in XPath {expression!r}")
    return steps


def _parse_predicate(body: str) -> _Predicate:
    body = body.strip()
    contains = re.fullmatch(
        r"contains\(\s*(@[\w-]+|text\(\))\s*,\s*(['\"])(.*?)\2\s*\)", body
    )
    if contains:
        subject, _, value = contains.groups()
        if subject == "text()":
            return _Predicate("text-contains", None, value)
        return _Predicate("attr-contains", subject[1:].lower(), value)
    equality = re.fullmatch(r"(@[\w-]+|text\(\))\s*=\s*(['\"])(.*?)\2", body)
    if equality:
        subject, _, value = equality.groups()
        if subject == "text()":
            return _Predicate("text-eq", None, value)
        return _Predicate("attr-eq", subject[1:].lower(), value)
    raise SelectorError(f"unsupported XPath predicate [{body}]")


def _own_text(element: Element) -> str:
    return " ".join(
        child.data.strip() for child in element.children
        if isinstance(child, Text) and child.data.strip()
    )


def xpath_all(root: Node, expression: str) -> List[Element]:
    """Evaluate *expression* against *root*, returning matching elements."""
    steps = parse_xpath(expression)
    current: List[Node] = [root]
    for step in steps:
        next_nodes: List[Node] = []
        seen = set()
        for node in current:
            candidates = (
                node.elements() if step.axis == "descendant"
                else (c for c in node.children if isinstance(c, Element))
            )
            for el in candidates:
                if step.node_matches(el) and id(el) not in seen:
                    seen.add(id(el))
                    next_nodes.append(el)
        current = next_nodes
        if not current:
            break
    return [n for n in current if isinstance(n, Element)]


def xpath_first(root: Node, expression: str) -> Optional[Element]:
    """First result of :func:`xpath_all` or None."""
    results = xpath_all(root, expression)
    return results[0] if results else None
