"""HTML serialisation, including declarative shadow DOM and srcdoc iframes.

Shadow roots are emitted as ``<template shadowrootmode="...">`` children
of their host (the declarative shadow DOM syntax), and iframe content
documents as a ``srcdoc`` attribute.  :mod:`repro.soup` understands both,
so ``parse(to_html(doc))`` reconstructs the full tree including shadow
and frame boundaries.
"""

from __future__ import annotations

from typing import List

from repro.dom.node import (
    VOID_ELEMENTS,
    Comment,
    Document,
    Element,
    Node,
    ShadowRoot,
    Text,
)

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(text: str) -> str:
    """Escape text-node content for HTML."""
    for raw, safe in _ESCAPES.items():
        text = text.replace(raw, safe)
    return text


def escape_attr(value: str) -> str:
    """Escape an attribute value for double-quoted HTML attributes."""
    for raw, safe in _ATTR_ESCAPES.items():
        value = value.replace(raw, safe)
    return value


def to_html(node: Node) -> str:
    """Serialise *node* (and its subtree) to an HTML string."""
    parts: List[str] = []
    _serialize(node, parts)
    return "".join(parts)


def _serialize(node: Node, out: List[str]) -> None:
    if isinstance(node, Document):
        out.append("<!DOCTYPE html>")
        for child in node.children:
            _serialize(child, out)
        return
    if isinstance(node, Text):
        out.append(escape_text(node.data))
        return
    if isinstance(node, Comment):
        out.append(f"<!--{node.data}-->")
        return
    if isinstance(node, ShadowRoot):
        out.append(f'<template shadowrootmode="{node.mode}">')
        for child in node.children:
            _serialize(child, out)
        out.append("</template>")
        return
    assert isinstance(node, Element)
    _serialize_element(node, out)


def _serialize_element(element: Element, out: List[str]) -> None:
    out.append(f"<{element.tag}")
    attrs = dict(element.attrs)
    if element.tag == "iframe" and element.content_document is not None:
        attrs["srcdoc"] = _document_to_srcdoc(element.content_document)
    for name, value in attrs.items():
        if value == "":
            out.append(f" {name}")
        else:
            out.append(f' {name}="{escape_attr(value)}"')
    out.append(">")
    if element.tag in VOID_ELEMENTS:
        return
    shadow = element.attached_shadow_root
    if shadow is not None:
        _serialize(shadow, out)
    for child in element.children:
        _serialize(child, out)
    out.append(f"</{element.tag}>")


def _document_to_srcdoc(document: Document) -> str:
    inner: List[str] = []
    for child in document.children:
        _serialize(child, inner)
    html = "".join(inner)
    if html.startswith("<!DOCTYPE html>"):
        html = html[len("<!DOCTYPE html>"):]
    return html
