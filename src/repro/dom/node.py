"""DOM node classes: Node, Element, Text, Comment, Document, ShadowRoot."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ClosedShadowRootError, DOMError


@lru_cache(maxsize=1024)
def _parse_style(declaration_text: str) -> Dict[str, str]:
    """Parse an inline ``style`` attribute value (memoized).

    Visibility checks walk ancestor chains parsing the same handful of
    style strings over and over; the cache makes that a dict hit.
    Callers must not mutate the returned dict (``Element.style`` hands
    out a copy).
    """
    out: Dict[str, str] = {}
    for declaration in declaration_text.split(";"):
        name, sep, value = declaration.partition(":")
        if sep:
            out[name.strip().lower()] = value.strip().lower()
    return out

#: Elements that never have children when parsed from HTML.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)


class Node:
    """Base class for all DOM nodes."""

    __slots__ = ("parent", "children")

    def __init__(self) -> None:
        self.parent: Optional[Node] = None
        self.children: List[Node] = []

    # ------------------------------------------------------------------
    # Revision tracking (query-index and frame-walk cache invalidation)
    # ------------------------------------------------------------------
    def root_node(self) -> "Node":
        """The topmost node of this tree, crossing shadow boundaries."""
        node: Node = self
        while True:
            if node.parent is not None:
                node = node.parent
            elif isinstance(node, ShadowRoot):
                node = node.host
            else:
                return node

    def _bump_revision(self) -> None:
        """Invalidate caches hanging off this tree's root document.

        Every mutation that can change what a query or frame walk sees
        (structure, attributes, shadow/frame attachment) bumps the
        owning :class:`Document`'s revision counter; the selector index
        and ``Page`` walk caches compare revisions before reuse.
        """
        root = self.root_node()
        if isinstance(root, Document):
            root._revision += 1

    # ------------------------------------------------------------------
    # Tree manipulation
    # ------------------------------------------------------------------
    def append_child(self, child: "Node") -> "Node":
        """Append *child* (detaching it from any previous parent)."""
        if child is self or self._has_ancestor(child):
            raise DOMError("cannot append a node inside itself")
        child.detach()
        child.parent = self
        self.children.append(child)
        self._bump_revision()
        return child

    def insert_before(self, child: "Node", reference: Optional["Node"]) -> "Node":
        """Insert *child* before *reference* (or append when None)."""
        if reference is None:
            return self.append_child(child)
        if reference.parent is not self:
            raise DOMError("reference node is not a child of this node")
        if child is self or self._has_ancestor(child):
            raise DOMError("cannot insert a node inside itself")
        child.detach()
        child.parent = self
        self.children.insert(self.children.index(reference), child)
        self._bump_revision()
        return child

    def detach(self) -> None:
        """Remove this node from its parent, if any."""
        if self.parent is not None:
            self._bump_revision()
            self.parent.children.remove(self)
            self.parent = None

    def remove_child(self, child: "Node") -> "Node":
        if child.parent is not self:
            raise DOMError("node is not a child of this node")
        child.detach()
        return child

    def _has_ancestor(self, candidate: "Node") -> bool:
        node = self.parent
        while node is not None:
            if node is candidate:
                return True
            node = node.parent
        return False

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(
        self,
        *,
        include_shadow: bool = False,
        include_frames: bool = False,
    ) -> Iterator["Node"]:
        """Yield all descendant nodes in document order.

        By default neither shadow trees nor iframe content documents are
        entered — matching what CSS selector / XPath engines can see.
        Set the flags to pierce those boundaries (crawler-internal use).
        """
        if not include_shadow and not include_frames:
            # Hot path: no per-node boundary checks or list rebuilding.
            stack: List[Node] = list(reversed(self.children))
            while stack:
                node = stack.pop()
                yield node
                if node.children:
                    stack.extend(reversed(node.children))
            return
        roots: List[Node] = list(self.children)
        if isinstance(self, Element):
            if include_shadow and self.attached_shadow_root is not None:
                roots.append(self.attached_shadow_root)
            if include_frames and self.content_document is not None:
                roots.append(self.content_document)
        stack: List[Node] = list(reversed(roots))
        while stack:
            node = stack.pop()
            yield node
            extra: List[Node] = []
            if include_shadow and isinstance(node, Element):
                shadow = node.attached_shadow_root
                if shadow is not None:
                    extra.append(shadow)
            if include_frames and isinstance(node, Element):
                inner = node.content_document
                if inner is not None:
                    extra.append(inner)
            stack.extend(reversed(node.children + extra))

    def elements(self, **kwargs) -> Iterator["Element"]:
        """Yield descendant :class:`Element` nodes (same kwargs as descendants)."""
        for node in self.descendants(**kwargs):
            if isinstance(node, Element):
                yield node

    # ------------------------------------------------------------------
    # Text
    # ------------------------------------------------------------------
    def text_content(self, *, pierce: bool = False, separator: str = " ") -> str:
        """Concatenated text of descendant Text nodes.

        With ``pierce=True`` text inside shadow roots and iframes is
        included (what a human *sees*, not what ``innerText`` returns).
        """
        parts: List[str] = []
        for node in self.descendants(include_shadow=pierce, include_frames=pierce):
            if isinstance(node, Text):
                data = node.data.strip()
                if data:
                    parts.append(data)
        return separator.join(parts)

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone(self, *, deep: bool = True) -> "Node":
        """Return a copy of this node (deep by default).

        The deep path links children directly instead of going through
        :meth:`append_child` — the clone tree is built from fresh nodes,
        so the cycle checks and detach bookkeeping there can never fire,
        and skipping them makes cloning a cached parse several times
        cheaper than re-parsing (see :mod:`repro.soup.cache`).
        """
        copy = self._clone_self()
        if deep:
            self._clone_children_into(copy)
        return copy

    def _clone_children_into(self, copy: "Node") -> None:
        children = copy.children
        for child in self.children:
            child_copy = child.clone(deep=True)
            child_copy.parent = copy
            children.append(child_copy)

    def _clone_self(self) -> "Node":
        return type(self)()

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------
    @property
    def owner_document(self) -> Optional["Document"]:
        node: Optional[Node] = self
        while node is not None:
            if isinstance(node, Document):
                return node
            if isinstance(node, ShadowRoot):
                node = node.host
                continue
            node = node.parent
        return None


class Text(Node):
    """A text node."""

    __slots__ = ("data",)

    def __init__(self, data: str = "") -> None:
        super().__init__()
        self.data = data

    def _clone_self(self) -> "Text":
        copy = Text.__new__(Text)
        copy.parent = None
        copy.children = []
        copy.data = self.data
        return copy

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """A comment node (kept so parsing round-trips)."""

    __slots__ = ("data",)

    def __init__(self, data: str = "") -> None:
        super().__init__()
        self.data = data

    def _clone_self(self) -> "Comment":
        return Comment(self.data)

    def __repr__(self) -> str:
        return f"Comment({self.data!r})"


class Element(Node):
    """An element node with attributes, optional shadow root / frame doc."""

    __slots__ = ("tag", "attrs", "_shadow_root", "_content_document", "on_click")

    def __init__(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        #: Raw attribute map.  Runtime code must mutate attributes via
        #: :meth:`set_attribute` / :meth:`remove_attribute` /
        #: :meth:`add_class` — writing this dict directly skips the
        #: revision bump that invalidates the document's query index
        #: (only the parser does so, during tree construction, before
        #: any index can exist).
        self.attrs: Dict[str, str] = dict(attrs or {})
        self._shadow_root: Optional[ShadowRoot] = None
        self._content_document: Optional[Document] = None
        #: Optional behaviour hook used by the browser layer.
        self.on_click: Optional[Callable[["Element"], None]] = None

    # -- frames ---------------------------------------------------------
    @property
    def content_document(self) -> Optional["Document"]:
        """For ``iframe`` elements: the framed document, if loaded."""
        return self._content_document

    @content_document.setter
    def content_document(self, document: Optional["Document"]) -> None:
        self._content_document = document
        self._bump_revision()

    # -- attributes -----------------------------------------------------
    def get_attribute(self, name: str) -> Optional[str]:
        return self.attrs.get(name.lower())

    def set_attribute(self, name: str, value: str) -> None:
        self.attrs[name.lower()] = value
        self._bump_revision()

    def remove_attribute(self, name: str) -> None:
        if self.attrs.pop(name.lower(), None) is not None:
            self._bump_revision()

    def has_attribute(self, name: str) -> bool:
        return name.lower() in self.attrs

    @property
    def id(self) -> str:
        return self.attrs.get("id", "")

    @property
    def classes(self) -> List[str]:
        return self.attrs.get("class", "").split()

    def add_class(self, name: str) -> None:
        classes = self.classes
        if name not in classes:
            classes.append(name)
            self.attrs["class"] = " ".join(classes)
            self._bump_revision()

    # -- shadow DOM -----------------------------------------------------
    def attach_shadow(self, *, mode: str = "open") -> "ShadowRoot":
        """Attach a shadow root (open or closed) to this element."""
        if mode not in ("open", "closed"):
            raise DOMError(f"invalid shadow root mode {mode!r}")
        if self._shadow_root is not None:
            raise DOMError("element already hosts a shadow root")
        self._shadow_root = ShadowRoot(host=self, mode=mode)
        self._bump_revision()
        return self._shadow_root

    @property
    def shadow_root(self) -> Optional["ShadowRoot"]:
        """Script-visible shadow root (None when closed — browser parity).

        Raises :class:`ClosedShadowRootError` is *not* raised here; like
        ``element.shadowRoot`` in a real browser, a closed root is simply
        invisible.  Crawler code that needs guaranteed access must use
        :attr:`attached_shadow_root` via a privileged hook.
        """
        if self._shadow_root is not None and self._shadow_root.mode == "closed":
            return None
        return self._shadow_root

    @property
    def attached_shadow_root(self) -> Optional["ShadowRoot"]:
        """Privileged access to the shadow root regardless of mode."""
        return self._shadow_root

    def require_open_shadow_root(self) -> "ShadowRoot":
        """Return the open shadow root or raise for closed/missing ones."""
        root = self.shadow_root
        if root is None:
            if self._shadow_root is not None:
                raise ClosedShadowRootError(
                    f"<{self.tag}> hosts a closed shadow root"
                )
            raise DOMError(f"<{self.tag}> hosts no shadow root")
        return root

    # -- visibility -----------------------------------------------------
    @property
    def style(self) -> Dict[str, str]:
        """Parsed ``style`` attribute (lower-cased property names)."""
        return dict(_parse_style(self.attrs.get("style", "")))

    def is_visible(self) -> bool:
        """Approximate rendered visibility (display/visibility/hidden)."""
        node: Optional[Node] = self
        while isinstance(node, Element):
            if node.has_attribute("hidden"):
                return False
            style = node.style
            if style.get("display") == "none":
                return False
            if style.get("visibility") == "hidden":
                return False
            parent = node.parent
            if isinstance(parent, ShadowRoot):
                parent = parent.host
            node = parent if isinstance(parent, Element) else None
        return True

    # -- cloning --------------------------------------------------------
    def _clone_self(self) -> "Element":
        # __new__ + direct slot writes: skips the re-lowercasing and
        # validation of __init__ on the deep-clone hot path.
        copy = Element.__new__(Element)
        copy.parent = None
        copy.children = []
        copy.tag = self.tag
        copy.attrs = dict(self.attrs)
        copy._shadow_root = None
        copy._content_document = None
        copy.on_click = self.on_click
        return copy

    def clone(self, *, deep: bool = True) -> "Element":
        copy = self._clone_self()
        if deep:
            self._clone_children_into(copy)
            if self._shadow_root is not None:
                shadow_copy = ShadowRoot(host=copy, mode=self._shadow_root.mode)
                copy._shadow_root = shadow_copy
                self._shadow_root._clone_children_into(shadow_copy)
            if self._content_document is not None:
                copy._content_document = self._content_document.clone(deep=True)
        return copy

    def __repr__(self) -> str:
        ident = f"#{self.id}" if self.id else ""
        cls = "." + ".".join(self.classes) if self.classes else ""
        return f"<Element {self.tag}{ident}{cls}>"


class ShadowRoot(Node):
    """A shadow tree root attached to a host element."""

    __slots__ = ("host", "mode")

    def __init__(self, host: Element, mode: str = "open") -> None:
        super().__init__()
        self.host = host
        self.mode = mode

    def _clone_self(self) -> "ShadowRoot":
        raise DOMError("shadow roots are cloned via their host element")

    def __repr__(self) -> str:
        return f"<ShadowRoot mode={self.mode} host=<{self.host.tag}>>"


class Document(Node):
    """A document node; the root of a page or iframe content tree."""

    __slots__ = ("url", "_revision", "_query_index")

    def __init__(self, url: str = "about:blank") -> None:
        super().__init__()
        self.url = url
        #: Bumped by every mutation anywhere in this document's tree
        #: (including shadow subtrees); caches key off it.
        self._revision = 0
        #: Lazily built tag/id/class index (see repro.dom.selector).
        self._query_index = None

    @property
    def revision(self) -> int:
        """Monotonic mutation counter for cache validation."""
        return self._revision

    # -- common accessors -------------------------------------------------
    @property
    def document_element(self) -> Optional[Element]:
        for child in self.children:
            if isinstance(child, Element) and child.tag == "html":
                return child
        return None

    def _html_section(self, tag: str) -> Optional[Element]:
        html = self.document_element
        if html is None:
            return None
        for child in html.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    @property
    def head(self) -> Optional[Element]:
        return self._html_section("head")

    @property
    def body(self) -> Optional[Element]:
        return self._html_section("body")

    @property
    def title(self) -> str:
        head = self.head
        if head is None:
            return ""
        for el in head.elements():
            if el.tag == "title":
                return el.text_content()
        return ""

    def create_element(self, tag: str, **attrs: str) -> Element:
        """Create a detached element owned by this document."""
        return Element(tag, {k.replace("_", "-"): v for k, v in attrs.items()})

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        from repro.dom.selector import first_element_by_id

        return first_element_by_id(self, element_id)

    def _clone_self(self) -> "Document":
        return Document(self.url)

    def clone(self, *, deep: bool = True) -> "Document":
        copy = Node.clone(self, deep=deep)
        assert isinstance(copy, Document)
        return copy

    def __repr__(self) -> str:
        return f"<Document url={self.url!r}>"
