"""URL and domain-name utilities (self-contained, no stdlib urllib).

Public API:

- :class:`URL` — parsed URL with join/normalisation support.
- :func:`parse` — parse an absolute or scheme-relative URL string.
- :func:`registrable_domain` — eTLD+1 per the embedded public-suffix set.
- :func:`public_suffix` — the matched public suffix of a host.
- :func:`is_same_site` — registrable-domain equality (cookie "site").
- :func:`is_subdomain_of` — strict/loose subdomain tests.
"""

from repro.urlkit.psl import (
    PUBLIC_SUFFIXES,
    is_public_suffix,
    public_suffix,
    registrable_domain,
)
from repro.urlkit.url import (
    URL,
    is_same_site,
    is_subdomain_of,
    parse,
)

__all__ = [
    "URL",
    "parse",
    "PUBLIC_SUFFIXES",
    "public_suffix",
    "is_public_suffix",
    "registrable_domain",
    "is_same_site",
    "is_subdomain_of",
]
