"""An embedded subset of the Public Suffix List (PSL).

The real PSL is ~10k rules; the synthetic web only uses the suffixes
below, which cover every TLD the paper's measurement encountered
(notably ``.de`` plus generic TLDs and a few other ccTLDs) as well as
common multi-label suffixes so the registrable-domain logic is
exercised on realistic inputs (``example.co.uk`` etc.).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

#: Suffixes ordered by specificity at lookup time (longest match wins).
PUBLIC_SUFFIXES = frozenset(
    {
        # Generic TLDs.
        "com", "net", "org", "info", "biz", "news", "club", "online",
        "io", "co", "app", "dev", "blog", "shop", "site", "website",
        "email", "cloud", "tv",
        # Vantage-point country TLDs.
        "de", "se", "us", "in", "br", "za", "au",
        # Other ccTLDs seen in the paper's results.
        "it", "at", "fr", "es", "ch", "uk", "nl", "dk", "no", "pl", "pt",
        "eu", "be", "fi",
        # Multi-label public suffixes (longest-match logic).
        "co.uk", "org.uk", "ac.uk", "com.au", "net.au", "org.au",
        "com.br", "net.br", "org.br", "co.za", "org.za", "web.za",
        "co.in", "net.in", "org.in", "gov.in",
    }
)

_MAX_SUFFIX_LABELS = max(s.count(".") + 1 for s in PUBLIC_SUFFIXES)


def _normalize_host(host: str) -> str:
    host = host.strip().lower().rstrip(".")
    return host


def is_public_suffix(host: str) -> bool:
    """Return True if *host* itself is a public suffix (e.g. ``co.uk``)."""
    return _normalize_host(host) in PUBLIC_SUFFIXES


@lru_cache(maxsize=4096)
def public_suffix(host: str) -> Optional[str]:
    """Return the longest matching public suffix of *host*, or None.

    Memoized: every filter match, DNS resolve, and cookie-scope check
    funnels through suffix lookups on a small set of hosts, so a
    bounded cache turns the per-request cost into a dict hit.

    >>> public_suffix("news.example.co.uk")
    'co.uk'
    >>> public_suffix("localhost") is None
    True
    """
    host = _normalize_host(host)
    if not host:
        return None
    labels = host.split(".")
    # Try the longest candidate suffix first.
    for take in range(min(_MAX_SUFFIX_LABELS, len(labels)), 0, -1):
        candidate = ".".join(labels[-take:])
        if candidate in PUBLIC_SUFFIXES:
            return candidate
    return None


@lru_cache(maxsize=4096)
def registrable_domain(host: str) -> Optional[str]:
    """Return the eTLD+1 of *host* (the "registrable domain").

    Returns None for IP addresses, bare suffixes, and hosts with an
    unknown TLD — mirroring how domain-based cookie policies treat
    such hosts (no cross-host cookie sharing possible).

    >>> registrable_domain("www.spiegel.de")
    'spiegel.de'
    >>> registrable_domain("a.b.example.co.uk")
    'example.co.uk'
    >>> registrable_domain("co.uk") is None
    True
    """
    host = _normalize_host(host)
    if not host or _looks_like_ip(host):
        return None
    suffix = public_suffix(host)
    if suffix is None or suffix == host:
        return None
    suffix_labels = suffix.count(".") + 1
    labels = host.split(".")
    if len(labels) <= suffix_labels:
        return None
    return ".".join(labels[-(suffix_labels + 1):])


def _looks_like_ip(host: str) -> bool:
    parts = host.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit():
            return False
        if not 0 <= int(part) <= 255:
            return False
    return True
