"""A small, strict URL implementation.

Only the features the measurement stack needs are implemented:
``http``/``https`` schemes, host/port, path, query, fragment,
relative-reference resolution (RFC 3986 subset), and normalisation.
Internationalised hostnames are out of scope — the synthetic web uses
ASCII hostnames, as does the paper's target list.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import URLError
from repro.urlkit.psl import registrable_domain

_ALLOWED_SCHEMES = ("http", "https")
_DEFAULT_PORTS = {"http": 80, "https": 443}

_HOST_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789.-")


@dataclass(frozen=True)
class URL:
    """An immutable parsed URL."""

    scheme: str
    host: str
    port: Optional[int] = None
    path: str = "/"
    query: str = ""
    fragment: str = ""

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def effective_port(self) -> int:
        """The port in use, defaulting per scheme."""
        return self.port if self.port is not None else _DEFAULT_PORTS[self.scheme]

    @property
    def origin(self) -> str:
        """The (scheme, host, port) origin string."""
        default = _DEFAULT_PORTS[self.scheme]
        if self.port is None or self.port == default:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def site(self) -> Optional[str]:
        """The registrable domain ("site") of the host, or None."""
        return registrable_domain(self.host)

    @property
    def query_params(self) -> Dict[str, str]:
        """Query string decoded into a dict (last value wins)."""
        params: Dict[str, str] = {}
        if not self.query:
            return params
        for piece in self.query.split("&"):
            if not piece:
                continue
            key, _, value = piece.partition("=")
            params[key] = value
        return params

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def with_path(self, path: str) -> "URL":
        """Return a copy of this URL with a different path."""
        if not path.startswith("/"):
            path = "/" + path
        return replace(self, path=_normalize_path(path), fragment="", query="")

    def join(self, reference: str) -> "URL":
        """Resolve *reference* against this URL (RFC 3986 subset)."""
        reference = reference.strip()
        if not reference:
            return self
        if "://" in reference:
            return parse(reference)
        if reference.startswith("//"):
            return parse(f"{self.scheme}:{reference}")
        if reference.startswith("#"):
            return replace(self, fragment=reference[1:])
        if reference.startswith("?"):
            query, _, fragment = reference[1:].partition("#")
            return replace(self, query=query, fragment=fragment)
        path_part, _, fragment = reference.partition("#")
        path_part, _, query = path_part.partition("?")
        if path_part.startswith("/"):
            new_path = path_part
        else:
            base_dir = self.path.rsplit("/", 1)[0]
            new_path = f"{base_dir}/{path_part}"
        return replace(
            self,
            path=_normalize_path(new_path),
            query=query,
            fragment=fragment,
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        out = [self.origin, self.path]
        if self.query:
            out.append("?" + self.query)
        if self.fragment:
            out.append("#" + self.fragment)
        return "".join(out)


def parse(raw: str) -> URL:
    """Parse an absolute URL string into a :class:`URL`.

    Raises :class:`~repro.errors.URLError` on malformed input.
    """
    if not isinstance(raw, str):
        raise URLError(f"URL must be a string, got {type(raw).__name__}")
    raw = raw.strip()
    if not raw:
        raise URLError("empty URL")
    scheme, sep, rest = raw.partition("://")
    if not sep:
        raise URLError(f"URL lacks a scheme: {raw!r}")
    scheme = scheme.lower()
    if scheme not in _ALLOWED_SCHEMES:
        raise URLError(f"unsupported scheme {scheme!r} in {raw!r}")

    rest, _, fragment = rest.partition("#")
    rest, _, query = rest.partition("?")
    authority, slash, path = rest.partition("/")
    path = slash + path if slash else "/"

    host, port = _parse_authority(authority, raw)
    return URL(
        scheme=scheme,
        host=host,
        port=port,
        path=_normalize_path(path),
        query=query,
        fragment=fragment,
    )


def _parse_authority(authority: str, raw: str) -> Tuple[str, Optional[int]]:
    if not authority:
        raise URLError(f"URL lacks a host: {raw!r}")
    if "@" in authority:
        raise URLError(f"userinfo in URLs is not supported: {raw!r}")
    host, _, port_text = authority.partition(":")
    host = host.lower()
    if not host or not set(host) <= _HOST_CHARS:
        raise URLError(f"invalid host {host!r} in {raw!r}")
    if host.startswith(".") or host.endswith("-"):
        raise URLError(f"invalid host {host!r} in {raw!r}")
    port: Optional[int] = None
    if port_text:
        if not port_text.isdigit():
            raise URLError(f"invalid port {port_text!r} in {raw!r}")
        port = int(port_text)
        if not 1 <= port <= 65535:
            raise URLError(f"port out of range in {raw!r}")
    return host, port


def _normalize_path(path: str) -> str:
    """Collapse ``.``/``..`` segments and duplicate slashes."""
    if not path:
        return "/"
    segments: List[str] = []
    for segment in path.split("/"):
        if segment in ("", "."):
            continue
        if segment == "..":
            if segments:
                segments.pop()
            continue
        segments.append(segment)
    normalized = "/" + "/".join(segments)
    if path.endswith("/") and normalized != "/":
        normalized += "/"
    return normalized


def is_same_site(a: "URL | str", b: "URL | str") -> bool:
    """True when both URLs/hosts share a registrable domain."""
    host_a = a.host if isinstance(a, URL) else str(a)
    host_b = b.host if isinstance(b, URL) else str(b)
    site_a = registrable_domain(host_a)
    site_b = registrable_domain(host_b)
    if site_a is None or site_b is None:
        return host_a.lower() == host_b.lower()
    return site_a == site_b


@lru_cache(maxsize=16384)
def is_subdomain_of(host: str, parent: str, *, strict: bool = False) -> bool:
    """True when *host* equals or is a subdomain of *parent*.

    With ``strict=True`` equality does not count.

    Memoized: this is the innermost comparison of every ``||domain^``
    filter match and every ``$domain=`` option check, called with a
    small recurring set of (host, parent) pairs per crawl.
    """
    host = host.lower().rstrip(".")
    parent = parent.lower().rstrip(".")
    if host == parent:
        return not strict
    return host.endswith("." + parent)
