"""A small thread-safe bounded LRU map.

The hot-path caches (parsed filter lists, compiled filter indexes,
per-host cosmetic selectors, parsed documents) all need the same
thing: a dict with move-to-front on read and oldest-first eviction,
safe under the parallel crawl engine's worker threads.  One
implementation keeps the lock discipline in one place.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LockedLRU(Generic[K, V]):
    """Bounded mapping with LRU eviction; every operation takes the lock."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K) -> Optional[V]:
        """The cached value (freshened), or None."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh *key*, evicting oldest entries over capacity."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
