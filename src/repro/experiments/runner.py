"""Experiment registry: run any table/figure of the paper by id.

Every driver reads its artefact from the shared
:class:`~repro.experiments.context.ExperimentContext`, which computes
it either in one streaming pass over the record stream (the default)
or via the materialised list-based oracle (``streaming=False``) —
both produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.experiments.context import ExperimentContext
from repro.measure.accuracy import evaluate_records, random_audit
from repro.webgen.world import World, build_world


@dataclass
class ExperimentResult:
    """One regenerated paper artefact."""

    experiment_id: str
    title: str
    rendered: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def _table1(ctx: ExperimentContext) -> ExperimentResult:
    table = ctx.table1()
    return ExperimentResult(
        "table1",
        "Table 1: cookiewalls per vantage point",
        table.render(),
        {
            "rows": {
                row.vp: {
                    "cookiewalls": row.cookiewalls,
                    "toplist": row.toplist,
                    "cctld": row.cctld,
                    "language": row.language,
                }
                for row in table.rows
            },
            "unique_walls": table.total_unique_walls,
        },
    )


def _fig1(ctx: ExperimentContext) -> ExperimentResult:
    figure = ctx.figure1()
    return ExperimentResult(
        "fig1",
        "Figure 1: categories of cookiewall websites",
        figure.render(),
        {"shares": dict(figure.shares), "total": figure.total_sites},
    )


def _fig2(ctx: ExperimentContext) -> ExperimentResult:
    figure = ctx.figure2()
    return ExperimentResult(
        "fig2",
        "Figure 2: monthly subscription price distribution",
        figure.render(),
        {
            "heatmap": figure.heatmap,
            "le3": figure.fraction_at_most(3.0),
            "le4": figure.fraction_at_most(4.0),
            "modal_bucket": figure.modal_bucket(),
            "unparsed": list(figure.unparsed_domains),
        },
    )


def _fig3(ctx: ExperimentContext) -> ExperimentResult:
    figure = ctx.figure3()
    return ExperimentResult(
        "fig3",
        "Figure 3: website category vs subscription price",
        figure.render(),
        {
            "by_category": {
                category: prices
                for category, prices in figure.by_category.items()
            }
        },
    )


def _fig4(ctx: ExperimentContext) -> ExperimentResult:
    comparison = ctx.comparison_fig4()
    data = {
        "regular_medians": comparison.medians("a"),
        "wall_medians": comparison.medians("b"),
        "third_party_ratio": comparison.ratio("third_party"),
        "tracking_ratio": comparison.ratio("tracking"),
    }
    return ExperimentResult(
        "fig4", "Figure 4: cookies — regular vs cookiewall sites",
        comparison.render(), data,
    )


def _fig5(ctx: ExperimentContext) -> ExperimentResult:
    comparison = ctx.comparison_fig5()
    data = {
        "accept_medians": comparison.medians("a"),
        "subscription_medians": comparison.medians("b"),
        "max_tracking_accept": comparison.max_tracking("a"),
    }
    return ExperimentResult(
        "fig5", "Figure 5: contentpass — accept vs subscription",
        comparison.render(), data,
    )


def _fig6(ctx: ExperimentContext) -> ExperimentResult:
    figure = ctx.figure6()
    return ExperimentResult(
        "fig6", "Figure 6: tracking cookies vs subscription price",
        figure.render(),
        {"points": figure.points, "pearson_r": figure.correlation},
    )


def _accuracy(ctx: ExperimentContext) -> ExperimentResult:
    full = evaluate_records(ctx.world, ctx.iter_detection_records("DE"))
    audit = random_audit(
        ctx.world, ctx.crawler, vp="DE",
        sample_size=min(1000, len(ctx.world.crawl_targets)),
    )
    rendered = "\n".join(
        [
            "Detection accuracy (§3)",
            f"  full run:   {full.detected} detected, "
            f"{full.true_positives} true "
            f"=> precision {full.precision * 100:.1f}%, "
            f"recall {full.recall * 100:.1f}%",
            f"  1000-site random audit: {audit.detected} detected, "
            f"precision {audit.precision * 100:.1f}%, "
            f"recall {audit.recall * 100:.1f}%",
        ]
    )
    return ExperimentResult(
        "accuracy", "§3 detection accuracy", rendered,
        {
            "full_detected": full.detected,
            "full_true_positives": full.true_positives,
            "full_precision": full.precision,
            "full_recall": full.recall,
            "audit_precision": audit.precision,
            "audit_recall": audit.recall,
        },
    )


def _ublock(ctx: ExperimentContext) -> ExperimentResult:
    tested = 0
    suppressed = 0
    broken = []
    for record in ctx.iter_ublock_records():
        tested += 1
        if record.suppressed:
            suppressed += 1
            if record.broken:
                broken.append((record.domain, record.broken_reason))
    share = suppressed / tested if tested else 0.0
    rendered = "\n".join(
        [
            "Bypassing cookiewalls with uBlock Origin (§4.5)",
            f"  walls tested:     {tested}",
            f"  suppressed:       {suppressed} ({share * 100:.0f}%)",
            f"  broken pages:     {len(broken)} "
            f"({', '.join(reason for _, reason in broken)})",
        ]
    )
    return ExperimentResult(
        "ublock", "§4.5 uBlock bypass", rendered,
        {
            "tested": tested,
            "suppressed": suppressed,
            "suppressed_share": share,
            "broken": broken,
        },
    )


def _landscape(ctx: ExperimentContext) -> ExperimentResult:
    report = ctx.landscape()
    return ExperimentResult(
        "landscape", "§4.1 cookiewall landscape", report.render(),
        {
            "unique_walls": report.unique_walls,
            "overall_rate": report.overall_rate,
            "germany_top10k_rate": report.germany_top10k_rate,
            "germany_top1k_rate": report.germany_top1k_rate,
            "countrywise_top1k_rate": report.countrywise_top1k_rate,
            "placement_counts": dict(report.placement_counts),
        },
    )


def _smp(ctx: ExperimentContext) -> ExperimentResult:
    world = ctx.world
    lines = ["Subscription Management Platforms (§4.4)"]
    data = {}
    detected = set(ctx.verified_wall_domains())
    for name, platform in sorted(world.platforms.items()):
        partners = platform.partner_domains
        on_list = [d for d in partners if world.sites[d].listings]
        lines.append(
            f"  {name}: {len(partners)} partner websites, "
            f"{len(on_list)} on the merged toplists, "
            f"monthly fee {platform.monthly_price_cents / 100:.2f} EUR"
        )
        data[name] = {
            "partners": len(partners),
            "on_toplist": len(on_list),
            "detected_as_walls": len(detected & set(on_list)),
        }
    return ExperimentResult("smp", "§4.4 SMP rosters", "\n".join(lines), data)


EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "table1": _table1,
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "accuracy": _accuracy,
    "ublock": _ublock,
    "landscape": _landscape,
    "smp": _smp,
}


def run_experiment(
    experiment_id: str,
    *,
    world: Optional[World] = None,
    context: Optional[ExperimentContext] = None,
    scale: float = 1.0,
    seed: int = 2023,
) -> ExperimentResult:
    """Run one experiment by id (building a world if none is given)."""
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    if context is None:
        if world is None:
            world = build_world(scale=scale, seed=seed)
        context = ExperimentContext(world)
    return EXPERIMENTS[experiment_id](context)
