"""Experiment drivers: one per table/figure of the paper.

Use :func:`repro.experiments.runner.run_experiment` or the CLI
(``repro-cookiewalls run table1``).
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.runner import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = [
    "ExperimentContext",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
]
