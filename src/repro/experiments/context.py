"""Shared, cached measurement state for the experiment drivers.

The detection crawl (8 VPs × 45k sites) and the cookie measurements
are expensive; every experiment that needs them shares one
:class:`ExperimentContext` so the work happens once (the paper
likewise derives all analyses from one crawl dataset).

Every cached product is compiled into a
:class:`~repro.measure.engine.CrawlPlan` and executed through the
sharded crawl engine instead of an ad-hoc loop.  The default
``workers=1, shards=1`` configuration reproduces the pre-engine serial
harness exactly.  Raising ``workers`` parallelises every batch — note
that this switches cookie/uBlock measurements to the engine's per-task
visit-id streams: their values stay fully deterministic (identical
across reruns and parallel configurations) but differ from the serial
baseline's, because the world keys ad rotation and cookie-count jitter
on visit ids.  Detection-crawl products are identical in both regimes.

Analysis mode: with ``streaming=True`` (the default) every paper
artefact is aggregated in a single pass over the run's record stream
(:class:`~repro.analysis.streaming.StreamingCrawlAnalysis` /
:class:`~repro.analysis.streaming.StreamingCookieComparison`) — when
the context also has a ``spool_dir``, records stream straight from the
JSONL spools and analysis memory stays bounded by the result size,
independent of world scale.  ``streaming=False`` selects the retained
list-based oracle path (materialised :class:`CrawlResult` +
``compute_*`` functions); both modes produce byte-identical artefacts,
which CI checks differentially.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from repro.analysis.figures import (
    CookieComparison,
    Figure1,
    Figure2,
    Figure3,
    Figure6,
    compute_fig1,
    compute_fig2,
    compute_fig3,
    compute_fig4,
    compute_fig5,
    compute_fig6,
)
from repro.analysis.report import LandscapeReport, compute_landscape
from repro.analysis.streaming import (
    StreamingCookieComparison,
    StreamingCrawlAnalysis,
    streaming_fig4,
    streaming_fig5,
)
from repro.analysis.tables import Table1, compute_table1
from repro.api import EngineSpec, RunResult, Session
from repro.measure.crawl import Crawler, CrawlResult
from repro.measure.engine import CrawlPlan
from repro.measure.instrumentation import EventLog
from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.vantage import VANTAGE_POINTS
from repro.webgen.world import World

_ACCOUNT_EMAIL = "measurement@repro.example"
_ACCOUNT_PASSWORD = "one-month-subscription"


class ExperimentContext:
    """Lazily computed, cached measurement products."""

    def __init__(
        self,
        world: World,
        *,
        crawler: Optional[Crawler] = None,
        repeats: int = 5,
        vps: Optional[Sequence[str]] = None,
        sample_seed: int = 1234,
        workers: int = 1,
        shards: Optional[int] = None,
        event_log: Optional[EventLog] = None,
        spool_dir: Union[str, Path, None] = None,
        resume: bool = False,
        streaming: bool = True,
    ) -> None:
        self.world = world
        self.crawler = crawler or Crawler(world)
        self.repeats = repeats
        self.vps = list(vps) if vps is not None else list(VANTAGE_POINTS)
        self.sample_seed = sample_seed
        self.workers = workers
        self.shards = shards
        self.event_log = event_log
        #: With a spool_dir every cached product persists to
        #: ``<spool_dir>/<name>.jsonl`` with a resumable checkpoint
        #: alongside; ``resume=True`` replays completed tasks after a
        #: crash.  Checkpointing switches even serial runs to the
        #: engine's per-task visit-id streams (see the engine docs).
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        if resume and self.spool_dir is None:
            raise ValueError("resume=True requires a spool_dir")
        self.resume = resume
        #: Single-pass (streaming) analysis vs the list-based oracle.
        self.streaming = streaming
        #: All engine wiring (spool/checkpoint paths, retry, events,
        #: progress) is owned by one Session, shared by every cached
        #: product — the same path the CLI and library entry points use.
        self.session = Session(
            world,
            engine=EngineSpec(workers=workers, shards=shards, resume=resume),
            crawler=self.crawler,
            event_log=event_log,
            spool_dir=self.spool_dir,
        )
        self._detection_result: Optional[RunResult] = None
        self._detection_crawl: Optional[CrawlResult] = None
        self._detection_analysis: Optional[StreamingCrawlAnalysis] = None
        self._wall_measurements: Optional[RunResult] = None
        self._regular_measurements: Optional[RunResult] = None
        self._cp_accept: Optional[RunResult] = None
        self._cp_subscription: Optional[RunResult] = None
        self._ublock: Optional[RunResult] = None
        self._account_ready = False

    def _run(self, plan: CrawlPlan, name: Optional[str] = None) -> RunResult:
        """Run *plan* through the context's :class:`Session`.

        *name* keys the product's spool/checkpoint files when the
        context was built with a ``spool_dir``; the session derives
        ``<spool_dir>/<name>.jsonl`` (+ ``.checkpoint``) exactly as
        every other entry point does.  The :class:`RunResult` is kept
        rather than a materialised list so spool-backed products can
        be re-streamed on demand.
        """
        return self.session.execute(plan, name=name)

    # ------------------------------------------------------------------
    # Detection crawl products
    # ------------------------------------------------------------------
    def detection_result(self) -> RunResult:
        """The detection crawl's :class:`RunResult` (records lazy)."""
        if self._detection_result is None:
            plan = self.crawler.plan_detection_crawl(self.vps)
            self._detection_result = self._run(plan, name="detection_crawl")
        return self._detection_result

    def detection_analysis(self) -> StreamingCrawlAnalysis:
        """One-pass aggregation of the detection stream (cached)."""
        if self._detection_analysis is None:
            self._detection_analysis = StreamingCrawlAnalysis(
                self.world
            ).consume(self.detection_result().iter_records())
        return self._detection_analysis

    def detection_crawl(self) -> CrawlResult:
        """The materialised crawl (the list-based oracle's input)."""
        if self._detection_crawl is None:
            self._detection_crawl = CrawlResult(
                records=self.detection_result().records
            )
        return self._detection_crawl

    def iter_detection_records(
        self, vp: Optional[str] = None
    ) -> Iterator[VisitRecord]:
        """Stream detection records, optionally filtered to one VP."""
        for record in self.detection_result().iter_records():
            if vp is None or record.vp == vp:
                yield record

    def wall_records_de(self) -> List[VisitRecord]:
        return self.detection_crawl().cookiewalls("DE")

    def detected_wall_domains(self) -> List[str]:
        """Unique domains flagged as cookiewalls from any VP."""
        if self.streaming:
            return self.detection_analysis().detected_wall_domains()
        return self.detection_crawl().cookiewall_domains()

    def verified_wall_domains(self) -> List[str]:
        """Detections surviving the paper's manual verification step.

        The paper manually checked all 285 detections and discarded 5
        false positives (§3).  The generator's ground truth plays the
        human verifier here.
        """
        if self.streaming:
            return self.detection_analysis().verified_wall_domains()
        return [
            d for d in self.detected_wall_domains()
            if d in self.world.wall_domains
        ]

    def verified_wall_records_de(self) -> List[VisitRecord]:
        verified = set(self.verified_wall_domains())
        return [r for r in self.wall_records_de() if r.domain in verified]

    # ------------------------------------------------------------------
    # Analysis products (streaming by default, list oracle otherwise)
    # ------------------------------------------------------------------
    def table1(self) -> Table1:
        if self.streaming:
            return self.detection_analysis().table1()
        return compute_table1(self.world, self.detection_crawl())

    def landscape(self) -> LandscapeReport:
        if self.streaming:
            return self.detection_analysis().landscape()
        return compute_landscape(self.world, self.detection_crawl())

    def figure1(self) -> Figure1:
        if self.streaming:
            return self.detection_analysis().figure1()
        return compute_fig1(
            self.verified_wall_domains(), self.world.category_db
        )

    def figure2(self) -> Figure2:
        if self.streaming:
            return self.detection_analysis().figure2()
        return compute_fig2(self.verified_wall_records_de())

    def figure3(self) -> Figure3:
        if self.streaming:
            return self.detection_analysis().figure3()
        return compute_fig3(self.figure2(), self.world.category_db)

    def comparison_fig4(self):
        """Figure 4 comparison (streaming sketches or list oracle)."""
        if self.streaming:
            return (
                streaming_fig4()
                .consume("a", self.iter_regular_measurements())
                .consume("b", self.iter_wall_measurements())
            )
        return compute_fig4(
            self.regular_measurements(), self.wall_measurements()
        )

    def comparison_fig5(self):
        """Figure 5 comparison (streaming sketches or list oracle)."""
        if self.streaming:
            return (
                streaming_fig5()
                .consume("a", self.iter_contentpass_accept())
                .consume("b", self.iter_contentpass_subscription())
            )
        return compute_fig5(
            self.contentpass_accept(), self.contentpass_subscription()
        )

    def figure6(self) -> Figure6:
        if self.streaming:
            return self.detection_analysis().figure6(
                self.iter_wall_measurements()
            )
        return compute_fig6(self.wall_measurements(), self.figure2())

    # ------------------------------------------------------------------
    # Cookie measurements (§4.3)
    # ------------------------------------------------------------------
    def _wall_measurement_result(self) -> RunResult:
        if self._wall_measurements is None:
            self._wall_measurements = self._run(
                self.crawler.plan_cookie_measurements(
                    "DE", self.verified_wall_domains(),
                    mode="accept", repeats=self.repeats,
                ),
                name="wall_measurements",
            )
        return self._wall_measurements

    def wall_measurements(self) -> List[CookieMeasurement]:
        return self._wall_measurement_result().records

    def iter_wall_measurements(self) -> Iterator[CookieMeasurement]:
        return self._wall_measurement_result().iter_records()

    def _regular_banner_pool(self) -> List[str]:
        """DE regular-banner domains, in record order (sampling pool)."""
        if self.streaming:
            return self.detection_analysis().regular_banner_domains_de()
        return self.detection_crawl().regular_banner_domains("DE")

    def _regular_measurement_result(self) -> RunResult:
        if self._regular_measurements is None:
            pool = self._regular_banner_pool()
            rng = random.Random(self.sample_seed)
            count = min(len(self.verified_wall_domains()), len(pool))
            sample = rng.sample(pool, count)
            self._regular_measurements = self._run(
                self.crawler.plan_cookie_measurements(
                    "DE", sample, mode="accept", repeats=self.repeats,
                ),
                name="regular_measurements",
            )
        return self._regular_measurements

    def regular_measurements(self) -> List[CookieMeasurement]:
        """Random regular-banner sites, one per verified wall (§4.3)."""
        return self._regular_measurement_result().records

    def iter_regular_measurements(self) -> Iterator[CookieMeasurement]:
        return self._regular_measurement_result().iter_records()

    # ------------------------------------------------------------------
    # contentpass measurements (§4.4)
    # ------------------------------------------------------------------
    def _ensure_account(self) -> None:
        if not self._account_ready:
            platform = self.world.platforms["contentpass"]
            if _ACCOUNT_EMAIL not in platform.accounts:
                platform.create_account(_ACCOUNT_EMAIL, _ACCOUNT_PASSWORD)
            platform.purchase_subscription(_ACCOUNT_EMAIL)
            self._account_ready = True

    def _contentpass_accept_result(self) -> RunResult:
        if self._cp_accept is None:
            partners = self.world.partner_domains("contentpass")
            self._cp_accept = self._run(
                self.crawler.plan_cookie_measurements(
                    "DE", partners, mode="accept", repeats=self.repeats,
                ),
                name="contentpass_accept",
            )
        return self._cp_accept

    def contentpass_accept(self) -> List[CookieMeasurement]:
        return self._contentpass_accept_result().records

    def iter_contentpass_accept(self) -> Iterator[CookieMeasurement]:
        return self._contentpass_accept_result().iter_records()

    def _contentpass_subscription_result(self) -> RunResult:
        if self._cp_subscription is None:
            self._ensure_account()
            platform = self.world.platforms["contentpass"]
            self._cp_subscription = self._run(
                self.crawler.plan_subscription_measurements(
                    "DE", platform.partner_domains, "contentpass",
                    _ACCOUNT_EMAIL, _ACCOUNT_PASSWORD,
                    repeats=self.repeats,
                ),
                name="contentpass_subscription",
            )
        return self._cp_subscription

    def contentpass_subscription(self) -> List[CookieMeasurement]:
        return self._contentpass_subscription_result().records

    def iter_contentpass_subscription(self) -> Iterator[CookieMeasurement]:
        return self._contentpass_subscription_result().iter_records()

    # ------------------------------------------------------------------
    # uBlock bypass (§4.5)
    # ------------------------------------------------------------------
    def _ublock_result(self) -> RunResult:
        if self._ublock is None:
            self._ublock = self._run(
                self.crawler.plan_ublock(
                    "DE", self.verified_wall_domains(),
                    iterations=self.repeats,
                ),
                name="ublock",
            )
        return self._ublock

    def ublock_records(self) -> List[UBlockRecord]:
        return self._ublock_result().records

    def iter_ublock_records(self) -> Iterator[UBlockRecord]:
        return self._ublock_result().iter_records()
