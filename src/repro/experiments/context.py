"""Shared, cached measurement state for the experiment drivers.

The detection crawl (8 VPs × 45k sites) and the cookie measurements
are expensive; every experiment that needs them shares one
:class:`ExperimentContext` so the work happens once (the paper
likewise derives all analyses from one crawl dataset).

Every cached product is compiled into a
:class:`~repro.measure.engine.CrawlPlan` and executed through the
sharded crawl engine instead of an ad-hoc loop.  The default
``workers=1, shards=1`` configuration reproduces the pre-engine serial
harness exactly.  Raising ``workers`` parallelises every batch — note
that this switches cookie/uBlock measurements to the engine's per-task
visit-id streams: their values stay fully deterministic (identical
across reruns and parallel configurations) but differ from the serial
baseline's, because the world keys ad rotation and cookie-count jitter
on visit ids.  Detection-crawl products are identical in both regimes.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.api import EngineSpec, Session
from repro.measure.crawl import Crawler, CrawlResult
from repro.measure.engine import CrawlPlan
from repro.measure.instrumentation import EventLog
from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.vantage import VANTAGE_POINTS
from repro.webgen.world import World

_ACCOUNT_EMAIL = "measurement@repro.example"
_ACCOUNT_PASSWORD = "one-month-subscription"


class ExperimentContext:
    """Lazily computed, cached measurement products."""

    def __init__(
        self,
        world: World,
        *,
        crawler: Optional[Crawler] = None,
        repeats: int = 5,
        vps: Optional[Sequence[str]] = None,
        sample_seed: int = 1234,
        workers: int = 1,
        shards: Optional[int] = None,
        event_log: Optional[EventLog] = None,
        spool_dir: Union[str, Path, None] = None,
        resume: bool = False,
    ) -> None:
        self.world = world
        self.crawler = crawler or Crawler(world)
        self.repeats = repeats
        self.vps = list(vps) if vps is not None else list(VANTAGE_POINTS)
        self.sample_seed = sample_seed
        self.workers = workers
        self.shards = shards
        self.event_log = event_log
        #: With a spool_dir every cached product persists to
        #: ``<spool_dir>/<name>.jsonl`` with a resumable checkpoint
        #: alongside; ``resume=True`` replays completed tasks after a
        #: crash.  Checkpointing switches even serial runs to the
        #: engine's per-task visit-id streams (see the engine docs).
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        if resume and self.spool_dir is None:
            raise ValueError("resume=True requires a spool_dir")
        self.resume = resume
        #: All engine wiring (spool/checkpoint paths, retry, events,
        #: progress) is owned by one Session, shared by every cached
        #: product — the same path the CLI and library entry points use.
        self.session = Session(
            world,
            engine=EngineSpec(workers=workers, shards=shards, resume=resume),
            crawler=self.crawler,
            event_log=event_log,
            spool_dir=self.spool_dir,
        )
        self._detection_crawl: Optional[CrawlResult] = None
        self._wall_measurements: Optional[List[CookieMeasurement]] = None
        self._regular_measurements: Optional[List[CookieMeasurement]] = None
        self._cp_accept: Optional[List[CookieMeasurement]] = None
        self._cp_subscription: Optional[List[CookieMeasurement]] = None
        self._ublock: Optional[List[UBlockRecord]] = None
        self._account_ready = False

    def _execute(self, plan: CrawlPlan, name: Optional[str] = None) -> List:
        """Run *plan* through the context's :class:`Session`.

        *name* keys the product's spool/checkpoint files when the
        context was built with a ``spool_dir``; the session derives
        ``<spool_dir>/<name>.jsonl`` (+ ``.checkpoint``) exactly as
        every other entry point does.
        """
        return self.session.execute(plan, name=name).records

    # ------------------------------------------------------------------
    # Detection crawl products
    # ------------------------------------------------------------------
    def detection_crawl(self) -> CrawlResult:
        if self._detection_crawl is None:
            plan = self.crawler.plan_detection_crawl(self.vps)
            self._detection_crawl = CrawlResult(
                records=self._execute(plan, name="detection_crawl")
            )
        return self._detection_crawl

    def wall_records_de(self) -> List[VisitRecord]:
        return self.detection_crawl().cookiewalls("DE")

    def detected_wall_domains(self) -> List[str]:
        """Unique domains flagged as cookiewalls from any VP."""
        return self.detection_crawl().cookiewall_domains()

    def verified_wall_domains(self) -> List[str]:
        """Detections surviving the paper's manual verification step.

        The paper manually checked all 285 detections and discarded 5
        false positives (§3).  The generator's ground truth plays the
        human verifier here.
        """
        return [
            d for d in self.detected_wall_domains()
            if d in self.world.wall_domains
        ]

    def verified_wall_records_de(self) -> List[VisitRecord]:
        verified = set(self.verified_wall_domains())
        return [r for r in self.wall_records_de() if r.domain in verified]

    # ------------------------------------------------------------------
    # Cookie measurements (§4.3)
    # ------------------------------------------------------------------
    def wall_measurements(self) -> List[CookieMeasurement]:
        if self._wall_measurements is None:
            self._wall_measurements = self._execute(
                self.crawler.plan_cookie_measurements(
                    "DE", self.verified_wall_domains(),
                    mode="accept", repeats=self.repeats,
                ),
                name="wall_measurements",
            )
        return self._wall_measurements

    def regular_measurements(self) -> List[CookieMeasurement]:
        """Random regular-banner sites, one per verified wall (§4.3)."""
        if self._regular_measurements is None:
            pool = self.detection_crawl().regular_banner_domains("DE")
            rng = random.Random(self.sample_seed)
            count = min(len(self.verified_wall_domains()), len(pool))
            sample = rng.sample(pool, count)
            self._regular_measurements = self._execute(
                self.crawler.plan_cookie_measurements(
                    "DE", sample, mode="accept", repeats=self.repeats,
                ),
                name="regular_measurements",
            )
        return self._regular_measurements

    # ------------------------------------------------------------------
    # contentpass measurements (§4.4)
    # ------------------------------------------------------------------
    def _ensure_account(self) -> None:
        if not self._account_ready:
            platform = self.world.platforms["contentpass"]
            if _ACCOUNT_EMAIL not in platform.accounts:
                platform.create_account(_ACCOUNT_EMAIL, _ACCOUNT_PASSWORD)
            platform.purchase_subscription(_ACCOUNT_EMAIL)
            self._account_ready = True

    def contentpass_accept(self) -> List[CookieMeasurement]:
        if self._cp_accept is None:
            partners = self.world.partner_domains("contentpass")
            self._cp_accept = self._execute(
                self.crawler.plan_cookie_measurements(
                    "DE", partners, mode="accept", repeats=self.repeats,
                ),
                name="contentpass_accept",
            )
        return self._cp_accept

    def contentpass_subscription(self) -> List[CookieMeasurement]:
        if self._cp_subscription is None:
            self._ensure_account()
            platform = self.world.platforms["contentpass"]
            self._cp_subscription = self._execute(
                self.crawler.plan_subscription_measurements(
                    "DE", platform.partner_domains, "contentpass",
                    _ACCOUNT_EMAIL, _ACCOUNT_PASSWORD,
                    repeats=self.repeats,
                ),
                name="contentpass_subscription",
            )
        return self._cp_subscription

    # ------------------------------------------------------------------
    # uBlock bypass (§4.5)
    # ------------------------------------------------------------------
    def ublock_records(self) -> List[UBlockRecord]:
        if self._ublock is None:
            self._ublock = self._execute(
                self.crawler.plan_ublock(
                    "DE", self.verified_wall_domains(),
                    iterations=self.repeats,
                ),
                name="ublock",
            )
        return self._ublock
