"""The Session facade: one object that owns world, engine, and output.

Every entry point of the project — the CLI subcommands, the
experiment drivers, the longitudinal campaigns, library embedders —
funnels through a :class:`Session`.  The session owns world
construction (lazily, so building a spec never builds a 45k-site
web), crawler wiring, engine configuration, spooling, and
checkpointing, and exposes one method per campaign kind plus the
generic :meth:`Session.run`:

>>> from repro.api import RunSpec, Session, WorldSpec
>>> spec = RunSpec(kind="crawl", world=WorldSpec(scale=0.01, seed=3))
>>> result = Session(spec).run()
>>> result.summary()["kind"]
'crawl'

Determinism contract: for a fixed world seed, running a spec through
``Session.run``, through the CLI flags, or through a ``--config``
file produces byte-identical spooled JSONL — the session is a thin,
deterministic compiler from spec to engine invocation, never a third
behaviour.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Union

from repro.api.result import RunFailure, RunResult
from repro.api.spec import (
    ChaosSpec,
    CrawlSpec,
    EngineSpec,
    LongitudinalSpec,
    MeasureSpec,
    MultiVantageSpec,
    OutputSpec,
    ResilienceSpec,
    RunSpec,
    SpecError,
    WorldSpec,
)
from repro.measure.crawl import Crawler, CrawlResult
from repro.measure.engine import CrawlEngine, CrawlPlan, EngineResult, RetryPolicy
from repro.measure.instrumentation import EventLog
from repro.measure.longitudinal import (
    LongitudinalRun,
    LongitudinalWave,
    MultiVantageRun,
    MultiVantageWave,
    reload_completed_wave,
)
from repro.vantage import VP_ORDER, get_vantage_point
from repro.webgen.evolve import evolve_world
from repro.webgen.world import World, build_world

#: Raw engine progress hook: ``(done, total, task)`` per completed task.
ProgressHook = Callable[[int, int, object], None]


@dataclasses.dataclass
class _Wave:
    """One wave of a campaign, as produced by ``Session._execute_waves``.

    Exactly one of ``replayed`` (records restored from a completed
    wave's checkpoint under resume) and ``result`` (a live engine run)
    is set.
    """

    month: int
    world: World
    summary: Optional[object]
    spool_path: Optional[Path]
    replayed: Optional[list] = None
    result: Optional[EngineResult] = None


@dataclasses.dataclass
class _CampaignTally:
    """Accumulates the cross-wave totals a campaign RunResult reports."""

    failures: list = dataclasses.field(default_factory=list)
    elapsed: float = 0.0
    executed: int = 0
    resumed: int = 0
    record_count: int = 0

    def replay(self, count: int) -> None:
        self.resumed += count
        self.record_count += count

    def absorb(self, result: EngineResult, month: int, failure) -> None:
        self.failures.extend(
            failure(outcome, wave=month) for outcome in result.failures
        )
        self.elapsed += result.elapsed
        self.executed += result.executed
        self.resumed += result.resumed
        self.record_count += result.record_count


class Session:
    """Owns world construction, engine wiring, spooling, checkpointing.

    Parameters
    ----------
    world:
        What to measure: a :class:`RunSpec` (adopts its world and
        engine sections and becomes the default for :meth:`run`), a
        :class:`WorldSpec`, an already-built
        :class:`~repro.webgen.world.World`, or ``None`` for the
        default small world.  Worlds build lazily on first use and are
        cached for the session's lifetime.
    engine:
        Execution policy (:class:`EngineSpec`); overrides the
        RunSpec's engine section when both are given.
    crawler:
        Override the crawler (tests inject fault-injecting subclasses).
    retry:
        Override the :class:`~repro.measure.engine.RetryPolicy`
        compiled from the engine spec.
    event_log:
        Receives the engine's ``plan``/``shard``/``progress``/…
        events on every run started by this session.
    progress:
        Default per-task progress hook ``(done, total, task)`` wired
        into every engine this session builds — the single event path
        all entry points share (see
        :class:`~repro.measure.instrumentation.BatchedProgress` for
        the batched legacy-callback adapter).
    spool_dir:
        Directory for *named* products (``session.execute(plan,
        name=...)`` spools to ``<spool_dir>/<name>.jsonl``) — the
        :class:`~repro.experiments.context.ExperimentContext`
        persistence mode.
    """

    def __init__(
        self,
        world: Union[RunSpec, WorldSpec, World, None] = None,
        *,
        engine: Optional[EngineSpec] = None,
        resilience: Optional[ResilienceSpec] = None,
        chaos: Optional[ChaosSpec] = None,
        crawler: Optional[Crawler] = None,
        retry: Optional[RetryPolicy] = None,
        event_log: Optional[EventLog] = None,
        progress: Optional[ProgressHook] = None,
        spool_dir: Union[str, Path, None] = None,
    ) -> None:
        self._default_spec: Optional[RunSpec] = None
        if isinstance(world, RunSpec):
            self._default_spec = world.validate()
            engine = engine if engine is not None else world.engine
            resilience = (
                resilience if resilience is not None else world.resilience
            )
            chaos = chaos if chaos is not None else world.chaos
            world = world.world
        self._world: Optional[World] = None
        if isinstance(world, World):
            self._world = world
            self.world_spec = WorldSpec(
                scale=world.config.scale, seed=world.config.seed
            )
        elif isinstance(world, WorldSpec):
            self.world_spec = world
        elif world is None:
            self.world_spec = WorldSpec()
        else:
            raise SpecError(
                "world must be a RunSpec, WorldSpec, World, or None, "
                f"got {type(world).__name__}"
            )
        self.world_spec.validate()
        self.engine_spec = engine if engine is not None else EngineSpec()
        self.engine_spec.validate()
        self.resilience_spec = (
            resilience if resilience is not None else ResilienceSpec()
        )
        self.resilience_spec.validate()
        self.chaos_spec = chaos if chaos is not None else ChaosSpec()
        self.chaos_spec.validate()
        self._explicit_retry = retry
        res = self.resilience_spec
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=self.engine_spec.retry_max_attempts,
            retry_unreachable=self.engine_spec.retry_unreachable,
            backoff_base=res.backoff_base,
            backoff_factor=res.backoff_factor,
            backoff_max=res.backoff_max,
            jitter=res.jitter,
            attempt_deadline=res.attempt_deadline,
            task_deadline=res.task_deadline,
            breaker_threshold=res.breaker_threshold,
            breaker_quarantine=res.breaker_quarantine,
        )
        self.event_log = event_log
        self.progress = progress
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._crawler = crawler

    # ------------------------------------------------------------------
    # Owned resources
    # ------------------------------------------------------------------
    @property
    def world(self) -> World:
        """The session's world, built on first access and cached."""
        if self._world is None:
            self._world = build_world(
                scale=self.world_spec.scale, seed=self.world_spec.seed
            )
        return self._world

    @property
    def crawler(self) -> Crawler:
        if self._crawler is None:
            self._crawler = Crawler(self.world)
        return self._crawler

    def _with_engine(
        self,
        engine: EngineSpec,
        resilience: Optional[ResilienceSpec] = None,
        chaos: Optional[ChaosSpec] = None,
    ) -> "Session":
        """A sibling session sharing the world but re-targeted engine.

        An explicitly injected retry policy travels along; a policy
        that was merely compiled from the old engine/resilience specs
        is rebuilt from the new ones.
        """
        return Session(
            self._world if self._world is not None else self.world_spec,
            engine=engine,
            resilience=(
                resilience if resilience is not None else self.resilience_spec
            ),
            chaos=chaos if chaos is not None else self.chaos_spec,
            crawler=self._crawler,
            retry=self._explicit_retry,
            event_log=self.event_log,
            progress=self.progress,
            spool_dir=self.spool_dir,
        )

    # ------------------------------------------------------------------
    # Engine wiring (the one place spool/checkpoint paths are derived)
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: CrawlPlan,
        *,
        name: Optional[str] = None,
        output: Optional[OutputSpec] = None,
        spool_path: Union[str, Path, None] = None,
        checkpoint_path: Union[str, Path, None] = None,
        crawler: Optional[Crawler] = None,
        progress: Optional[ProgressHook] = None,
    ) -> EngineResult:
        """Run a compiled plan through an engine with this session's
        configuration.

        The spool path comes from, in order: an explicit *spool_path*,
        ``output.path``, or ``<spool_dir>/<name>.jsonl``.  A spooled
        run checkpoints to ``<spool>.checkpoint`` (unless the engine
        spec disables checkpointing) and honours the engine spec's
        ``resume``; an in-memory run never checkpoints, which keeps
        the serial visit-id regime — and therefore byte-identical
        records — of the pre-session harness.
        """
        if self.chaos_spec.seed is not None:
            # The chaos plane rides in the plan context: the checkpoint
            # fingerprint covers it (a chaos run never resumes a
            # fault-free checkpoint, or vice versa) and process-backend
            # workers inherit it verbatim.
            plan.context.setdefault("chaos", self.chaos_spec.to_context())
        if spool_path is None and output is not None and output.path:
            spool_path = output.path
        if spool_path is None and self.spool_dir is not None and name:
            spool_path = self.spool_dir / f"{name}.jsonl"
        if (
            checkpoint_path is None
            and spool_path is not None
            and self.engine_spec.checkpoint
        ):
            checkpoint_path = f"{spool_path}.checkpoint"
        if self.engine_spec.resume and checkpoint_path is None:
            # Silently re-running everything while the caller believes
            # the checkpoint was honoured is the one behaviour resume
            # must never have.
            raise SpecError(
                "--resume requires an output path (--out / output.path: "
                "the checkpoint lives next to the spool)"
            )
        if self.engine_spec.merge == "spool" and spool_path is None:
            # Silently merging in memory when the caller asked for the
            # O(shard-buffer) mode would be the resume-ignored bug all
            # over again; the engine refuses this too.
            raise SpecError(
                "--merge spool requires an output path (--out / "
                "output.path: the shard spools are joined into it)"
            )
        engine = CrawlEngine(
            crawler if crawler is not None else self.crawler,
            workers=self.engine_spec.workers,
            shards=self.engine_spec.shards,
            backend=self.engine_spec.executor,
            merge=self.engine_spec.merge,
            retry=self.retry,
            event_log=self.event_log,
            progress=progress if progress is not None else self.progress,
            spool_path=spool_path,
            checkpoint_path=checkpoint_path,
            resume=self.engine_spec.resume and checkpoint_path is not None,
        )
        return engine.execute(plan)

    # ------------------------------------------------------------------
    # Campaigns
    # ------------------------------------------------------------------
    def _execute_waves(
        self,
        kind: str,
        months,
        build_plan: Callable[[Crawler, int], CrawlPlan],
        output: OutputSpec,
        progress: Optional[ProgressHook],
    ):
        """The shared wave loop behind the campaign kinds.

        Yields one :class:`_Wave` per month: the world is evolved from
        the baseline snapshot, *build_plan* compiles the wave's plan,
        the spool/checkpoint paths are derived under ``out_dir``, a
        completed wave is replayed from its checkpoint under resume,
        and everything else runs through :meth:`execute` — so every
        campaign shards, retries, spools, and resumes identically, and
        there is exactly one place that derives wave paths.
        """
        out_dir = Path(output.out_dir) if output.out_dir else None
        if self.engine_spec.resume and out_dir is None:
            raise SpecError(
                f"{kind} resume requires out_dir (the wave "
                "checkpoints live next to the spools)"
            )
        base_world = self.world
        for month in months:
            if month == 0:
                wave_world, summary = base_world, None
            else:
                wave_world, summary = evolve_world(base_world, months=month)
            crawler = Crawler(wave_world)
            plan = build_plan(crawler, month)
            spool_path = checkpoint_path = None
            if out_dir is not None:
                spool_path = out_dir / f"wave-{month:02d}.jsonl"
                if self.engine_spec.checkpoint:
                    checkpoint_path = Path(f"{spool_path}.checkpoint")
            if self.engine_spec.resume:
                replayed = reload_completed_wave(
                    spool_path, checkpoint_path, plan
                )
                if replayed is not None:
                    yield _Wave(
                        month, wave_world, summary, spool_path,
                        replayed=replayed,
                    )
                    continue
            result = self.execute(
                plan,
                spool_path=spool_path,
                checkpoint_path=checkpoint_path,
                crawler=crawler,
                progress=progress,
            )
            yield _Wave(
                month, wave_world, summary, spool_path, result=result
            )

    def crawl(
        self,
        spec: Optional[CrawlSpec] = None,
        *,
        output: Optional[OutputSpec] = None,
        progress: Optional[ProgressHook] = None,
    ) -> RunResult:
        """Run a multi-vantage-point detection crawl."""
        spec = spec if spec is not None else CrawlSpec()
        spec.validate()
        output = output if output is not None else OutputSpec()
        plan = self.crawler.plan_detection_crawl(
            list(spec.vps) if spec.vps is not None else None,
            list(spec.domains) if spec.domains is not None else None,
        )
        result = self.execute(plan, output=output, progress=progress)
        return self._result("crawl", {"crawl": spec}, output, result)

    def measure(
        self,
        spec: Optional[MeasureSpec] = None,
        *,
        output: Optional[OutputSpec] = None,
        progress: Optional[ProgressHook] = None,
    ) -> RunResult:
        """Run cookie or uBlock measurements (``spec.mode``).

        With ``spec.domains=None`` the targets are the cookiewall
        domains a fresh in-memory detection crawl from ``spec.vp``
        finds — the same pre-pass the CLI has always run.
        """
        spec = spec if spec is not None else MeasureSpec()
        spec.validate()
        output = output if output is not None else OutputSpec()
        domains = list(spec.domains) if spec.domains is not None else None
        if domains is None:
            # The in-memory pre-pass never spools, so it must not run
            # under resume (which requires a checkpoint) or the spool
            # merge (which requires an output path); only the
            # measurement plan itself resumes/streams.
            finder_engine = dataclasses.replace(
                self.engine_spec, resume=False, merge="memory"
            )
            finder = (
                self._with_engine(finder_engine)
                if finder_engine != self.engine_spec else self
            )
            detection = finder.crawl(CrawlSpec(vps=(spec.vp,)))
            domains = CrawlResult(
                records=detection.records
            ).cookiewall_domains()
        if spec.mode == "ublock":
            plan = self.crawler.plan_ublock(
                spec.vp, domains, iterations=spec.repeats
            )
        else:
            plan = self.crawler.plan_cookie_measurements(
                spec.vp, domains, mode=spec.mode, repeats=spec.repeats
            )
        result = self.execute(plan, output=output, progress=progress)
        return self._result("measure", {"measure": spec}, output, result)

    def longitudinal(
        self,
        spec: Optional[LongitudinalSpec] = None,
        *,
        output: Optional[OutputSpec] = None,
        progress: Optional[ProgressHook] = None,
    ) -> RunResult:
        """Crawl the world and its evolved snapshots, wave by wave.

        Every wave detection-crawls the same target list (defaulting
        to the baseline world's reachable union) against an
        :func:`~repro.webgen.evolve.evolve_world` snapshot, through an
        engine configured by this session — so the campaign shards,
        parallelises, retries, spools, and resumes like any crawl.
        The returned result's :attr:`~RunResult.campaign` is the live
        :class:`~repro.measure.longitudinal.LongitudinalRun`.

        Note on ``merge="spool"``: the wave *files* are still produced
        by the streaming join (byte-identical, resumable), but the
        drift analysis (``compare_rounds``/``smp_growth``) consumes
        every wave's records, so this method materialises them —
        longitudinal memory is O(campaign records) whichever merge
        mode runs the engine.  Streaming the analysis layer is a
        ROADMAP direction, not a promise this method makes.
        """
        spec = spec if spec is not None else LongitudinalSpec()
        spec.validate()
        output = output if output is not None else OutputSpec()
        targets = (
            list(spec.domains) if spec.domains is not None
            else list(self.world.crawl_targets)
        )
        run = LongitudinalRun(vp=spec.vp)
        spool_paths = []
        tally = _CampaignTally()
        waves = self._execute_waves(
            "longitudinal",
            spec.months,
            lambda crawler, month: crawler.plan_detection_crawl(
                [spec.vp], targets
            ),
            output,
            progress,
        )
        for wave in waves:
            if wave.spool_path is not None:
                spool_paths.append(wave.spool_path)
            if wave.replayed is not None:
                run.waves.append(LongitudinalWave(
                    months=wave.month,
                    world=wave.world,
                    crawl=CrawlResult(records=wave.replayed),
                    summary=wave.summary,
                    resumed=len(wave.replayed),
                ))
                tally.replay(len(wave.replayed))
                continue
            run.waves.append(LongitudinalWave(
                months=wave.month,
                world=wave.world,
                crawl=CrawlResult(records=wave.result.records),
                summary=wave.summary,
                resumed=wave.result.resumed,
            ))
            tally.absorb(wave.result, wave.month, self._failure)
        records = [r for wave in run.waves for r in wave.crawl.records]
        return RunResult(
            self._spec("longitudinal", {"longitudinal": spec}, output),
            records=records,
            spool_paths=spool_paths,
            failures=tally.failures,
            elapsed=tally.elapsed,
            executed=tally.executed,
            resumed=tally.resumed,
            record_count=len(records),
            campaign=run,
            extra={"waves": [
                {
                    "months": wave.months,
                    "visits": len(wave.crawl),
                    "cookiewall_domains": len(
                        wave.crawl.cookiewall_domains(spec.vp)
                    ),
                    "resumed": wave.resumed,
                }
                for wave in run.waves
            ]},
        )

    def multivantage(
        self,
        spec: Optional[MultiVantageSpec] = None,
        *,
        output: Optional[OutputSpec] = None,
        progress: Optional[ProgressHook] = None,
    ) -> RunResult:
        """One campaign, N vantage points: the VP × domain × wave
        cross-product through the engine, folded into a streaming
        geo-discrepancy report.

        Every wave compiles the full ``len(vps) × len(targets)``
        detection plan (vp-major, the ordinary multi-VP plan order),
        so sharding, parallelism, retry, spooling, and
        checkpoint/resume work exactly like single-VP runs — and the
        scenario (regulation regime, relocations, geo-blocking) rides
        in ``CrawlPlan.context``, which the checkpoint fingerprint
        covers and the process workers receive verbatim.  Records
        stream straight into a
        :class:`~repro.analysis.StreamingDiscrepancyReport` (returned
        as :attr:`RunResult.campaign`'s ``report``); with an
        ``out_dir`` the campaign never materialises a wave's record
        list in memory.
        """
        # Imported here, not at module top: the analysis layer is a
        # consumer of the measurement stack, not a dependency of it.
        from repro.analysis.discrepancy import StreamingDiscrepancyReport

        spec = spec if spec is not None else MultiVantageSpec()
        spec.validate()
        output = output if output is not None else OutputSpec()
        scenario = spec.scenario()
        vps = [
            get_vantage_point(code).code
            for code in (spec.vps if spec.vps is not None else VP_ORDER)
        ]
        targets = (
            list(spec.domains) if spec.domains is not None
            else list(self.world.crawl_targets)
        )
        report = StreamingDiscrepancyReport()
        run = MultiVantageRun(vps=tuple(vps), regime=spec.regime, report=report)
        materialise = not output.out_dir
        all_records = [] if materialise else None
        spool_paths = []
        tally = _CampaignTally()

        def build_plan(crawler: Crawler, month: int) -> CrawlPlan:
            plan = crawler.plan_detection_crawl(vps, targets)
            plan.context["multivantage"] = {
                "wave": month,
                "scenario": scenario.to_context(),
            }
            return plan

        waves = self._execute_waves(
            "multivantage", spec.months, build_plan, output, progress
        )
        for wave in waves:
            if wave.spool_path is not None:
                spool_paths.append(wave.spool_path)
            if wave.replayed is not None:
                for record in wave.replayed:
                    report.add(record, wave=wave.month)
                run.waves.append(MultiVantageWave(
                    months=wave.month,
                    visits=len(wave.replayed),
                    resumed=len(wave.replayed),
                ))
                tally.replay(len(wave.replayed))
                continue
            visits = 0
            for record in wave.result.iter_records():
                report.add(record, wave=wave.month)
                visits += 1
                if materialise:
                    all_records.append(record)
            run.waves.append(MultiVantageWave(
                months=wave.month, visits=visits, resumed=wave.result.resumed,
            ))
            tally.absorb(wave.result, wave.month, self._failure)
        return RunResult(
            self._spec("multivantage", {"multivantage": spec}, output),
            records=all_records,
            spool_paths=spool_paths,
            failures=tally.failures,
            elapsed=tally.elapsed,
            executed=tally.executed,
            resumed=tally.resumed,
            record_count=tally.record_count,
            campaign=run,
            extra={
                "waves": [
                    {
                        "months": wave.months,
                        "visits": wave.visits,
                        "resumed": wave.resumed,
                        "walls": report.wall_counts(wave.months),
                    }
                    for wave in run.waves
                ],
                "discrepancy": report.summary(),
            },
        )

    def run(self, spec: Optional[RunSpec] = None) -> RunResult:
        """Execute a full :class:`RunSpec` (kind-dispatched).

        With no argument the session's construction spec runs under
        the session's own engine configuration (the
        ``Session(spec).run()`` idiom — an explicit ``engine=``
        constructor override stays in force, as promised there).  For
        a spec passed *in*, that spec's engine section is
        authoritative: different engine settings run through a sibling
        session sharing the same (already-built) world.  A spec for a
        *different* world is refused — worlds are expensive; build a
        new session for one.
        """
        external = spec is not None
        spec = spec if spec is not None else self._default_spec
        if spec is None:
            raise SpecError(
                "nothing to run: pass a RunSpec, or build the session "
                "from one (Session(spec).run())"
            )
        spec.validate()
        if spec.world != self.world_spec:
            raise SpecError(
                f"spec.world {spec.world} differs from this session's "
                f"{self.world_spec}; create a new Session for it"
            )
        if external and (
            spec.engine != self.engine_spec
            or spec.resilience != self.resilience_spec
            or spec.chaos != self.chaos_spec
        ):
            return self._with_engine(
                spec.engine, spec.resilience, spec.chaos
            ).run(spec)
        if spec.kind == "crawl":
            return self.crawl(spec.crawl, output=spec.output)
        if spec.kind == "measure":
            return self.measure(spec.measure, output=spec.output)
        if spec.kind == "multivantage":
            return self.multivantage(spec.multivantage, output=spec.output)
        return self.longitudinal(spec.longitudinal, output=spec.output)

    # ------------------------------------------------------------------
    @staticmethod
    def _failure(outcome, *, wave: Optional[int] = None) -> RunFailure:
        return RunFailure(
            index=outcome.index,
            vp=outcome.task.vp,
            domain=outcome.task.domain,
            mode=outcome.task.mode,
            error=outcome.error,
            attempts=outcome.attempts,
            wave=wave,
        )

    def _spec(
        self, kind: str, sections: Dict[str, object], output: OutputSpec
    ) -> RunSpec:
        return RunSpec(
            kind=kind,
            world=self.world_spec,
            engine=self.engine_spec,
            resilience=self.resilience_spec,
            chaos=self.chaos_spec,
            output=output,
            **sections,
        )

    def _result(
        self,
        kind: str,
        sections: Dict[str, object],
        output: OutputSpec,
        result: EngineResult,
    ) -> RunResult:
        spec = self._spec(kind, sections, output)
        failures = [self._failure(o) for o in result.failures]
        if result.streamed:
            # Spool-merged engine runs never materialise their records;
            # the RunResult stays lazy over the final JSONL, preserving
            # the engine's O(shard buffer) memory behaviour end to end.
            return RunResult(
                spec,
                records=None,
                spool_paths=(output.path,) if output.path else (),
                failures=failures,
                elapsed=result.elapsed,
                executed=result.executed,
                resumed=result.resumed,
                record_count=result.record_count,
            )
        records = result.records
        return RunResult(
            spec,
            records=records,
            spool_paths=(output.path,) if output.path else (),
            failures=failures,
            elapsed=result.elapsed,
            executed=result.executed,
            resumed=result.resumed,
            record_count=len(records),
        )


def run(spec: RunSpec) -> RunResult:
    """One-shot convenience: ``Session(spec).run()``."""
    return Session(spec).run()


def iter_run_records(manifest: Union[str, Path]) -> Iterable:
    """Stream the records of a saved :class:`RunResult` manifest."""
    return RunResult.load(manifest).iter_records()
