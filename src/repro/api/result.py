"""The handle a :class:`~repro.api.session.Session` returns per run.

A :class:`RunResult` binds together the resolved :class:`RunSpec` that
produced a campaign, the records it measured (streamed lazily from the
JSONL spool when one was written), the permanent failures, and a
summary — and it round-trips through :meth:`RunResult.save` /
:meth:`RunResult.load`, so a finished campaign is itself a durable,
replayable artefact: the manifest names the spec to re-run and the
spools holding the data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.spec import RunSpec, SpecError
from repro.measure.storage import decode_record, encode_record, iter_records

#: Bumped when the manifest layout changes (old manifests are refused).
RESULT_VERSION = 1


@dataclass(frozen=True)
class RunFailure:
    """One permanently failed task (its retries exhausted)."""

    index: int
    vp: str
    domain: str
    mode: str
    error: str
    attempts: int = 1
    #: Wave month for longitudinal campaigns (``None`` otherwise).
    wave: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "vp": self.vp,
            "domain": self.domain,
            "mode": self.mode,
            "error": self.error,
            "attempts": self.attempts,
            "wave": self.wave,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunFailure":
        return cls(**data)


class RunResult:
    """Records, failures, and summary of one executed :class:`RunSpec`.

    Records are held in memory when the session just produced them;
    a result :meth:`load`-ed from a manifest streams them lazily from
    its spool files instead, so inspecting a finished 45k-site
    campaign never materialises the full record list unless asked
    (:attr:`records` does, :meth:`iter_records` does not).
    """

    def __init__(
        self,
        spec: RunSpec,
        *,
        records: Optional[Sequence] = None,
        spool_paths: Sequence[Union[str, Path]] = (),
        failures: Sequence[RunFailure] = (),
        elapsed: float = 0.0,
        executed: int = 0,
        resumed: int = 0,
        record_count: Optional[int] = None,
        campaign=None,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.spec = spec
        self._records = list(records) if records is not None else None
        self.spool_paths: Tuple[Path, ...] = tuple(
            Path(p) for p in spool_paths
        )
        self.failures: Tuple[RunFailure, ...] = tuple(failures)
        self.elapsed = elapsed
        self.executed = executed
        self.resumed = resumed
        self._record_count = record_count
        #: The live :class:`~repro.measure.longitudinal.LongitudinalRun`
        #: for longitudinal campaigns (not round-tripped by ``save``).
        self.campaign = campaign
        self._extra = dict(extra or {})

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.spec.kind

    def iter_records(self) -> Iterator:
        """Stream the records — from memory when fresh, else spool."""
        if self._records is not None:
            yield from self._records
            return
        if not self.spool_paths:
            return
        for path in self.spool_paths:
            yield from iter_records(path)

    @property
    def records(self) -> List:
        """The full record list (materialises a spool-backed result)."""
        if self._records is None:
            self._records = list(self.iter_records())
        return self._records

    @property
    def record_count(self) -> int:
        if self._record_count is None:
            self._record_count = sum(1 for _ in self.iter_records())
        return self._record_count

    @property
    def ok(self) -> bool:
        """True when no task failed permanently."""
        return not self.failures

    @property
    def tasks_per_sec(self) -> float:
        if self.elapsed <= 0.0:
            return 0.0
        return self.executed / self.elapsed

    def __len__(self) -> int:
        return self.record_count

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Machine-readable run overview (stable-keyed, JSON-safe)."""
        out: Dict[str, object] = {
            "kind": self.kind,
            "records": self.record_count,
            "failures": len(self.failures),
            "executed": self.executed,
            "resumed": self.resumed,
            "elapsed": self.elapsed,
            "tasks_per_sec": self.tasks_per_sec,
        }
        out.update(self._extra)
        return out

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write a JSON manifest describing this run.

        The manifest embeds the resolved spec, summary, and failures.
        Spooled runs are referenced by their JSONL paths (the data
        already lives there); spool-less runs embed the records so the
        manifest alone round-trips.
        """
        path = Path(path)
        payload: Dict[str, object] = {
            "kind": "run-result",
            "version": RESULT_VERSION,
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "failures": [f.to_dict() for f in self.failures],
            "spools": [str(p) for p in self.spool_paths],
            "records": (
                None if self.spool_paths
                else [encode_record(r) for r in self.records]
            ),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, ensure_ascii=False, indent=2) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunResult":
        """Rebuild a result handle from a :meth:`save` manifest.

        Spool-backed results stay lazy: records stream from the JSONL
        files on demand rather than loading here.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise SpecError(f"cannot load run result {path}: {error}") from error
        if payload.get("kind") != "run-result":
            raise SpecError(f"{path}: not a run-result manifest")
        if payload.get("version") != RESULT_VERSION:
            raise SpecError(
                f"{path}: unsupported manifest version {payload.get('version')}"
            )
        summary = payload.get("summary", {})
        embedded = payload.get("records")
        return cls(
            RunSpec.from_dict(payload["spec"]),
            records=(
                [decode_record(r) for r in embedded]
                if embedded is not None else None
            ),
            spool_paths=payload.get("spools", ()),
            failures=[
                RunFailure.from_dict(f) for f in payload.get("failures", ())
            ],
            elapsed=summary.get("elapsed", 0.0),
            executed=summary.get("executed", 0),
            resumed=summary.get("resumed", 0),
            record_count=summary.get("records"),
            extra={
                k: v for k, v in summary.items()
                if k not in (
                    "kind", "records", "failures", "executed", "resumed",
                    "elapsed", "tasks_per_sec",
                )
            },
        )
