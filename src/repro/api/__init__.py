"""repro.api — the unified public entry point.

One campaign, one object: a :class:`RunSpec` describes an entire
crawl, measurement, or longitudinal run (world, engine, workload,
output) as a single validating, serialisable artefact; a
:class:`Session` executes it and hands back a :class:`RunResult`.
The CLI, the experiment drivers, and the longitudinal campaigns are
all thin adapters over this package.

>>> from repro.api import RunSpec, Session, WorldSpec
>>> spec = RunSpec(kind="crawl", world=WorldSpec(scale=0.01, seed=3))
>>> result = Session(spec).run()          # doctest: +SKIP
>>> spec == RunSpec.from_dict(spec.to_dict())
True
"""

from repro.api.result import RESULT_VERSION, RunFailure, RunResult
from repro.api.session import Session, iter_run_records, run
from repro.api.spec import (
    EXECUTOR_BACKENDS,
    MEASURE_MODES,
    MERGE_MODES,
    RUN_KINDS,
    SPEC_SCHEMA_VERSION,
    ChaosSpec,
    CrawlSpec,
    EngineSpec,
    LongitudinalSpec,
    MeasureSpec,
    MultiVantageSpec,
    OutputSpec,
    ResilienceSpec,
    RunSpec,
    SpecError,
    SpecVersionError,
    WorldSpec,
    migrate_spec_payload,
    spec_migration,
)

__all__ = [
    "ChaosSpec",
    "CrawlSpec",
    "EngineSpec",
    "EXECUTOR_BACKENDS",
    "LongitudinalSpec",
    "MeasureSpec",
    "MEASURE_MODES",
    "MultiVantageSpec",
    "MERGE_MODES",
    "OutputSpec",
    "RESULT_VERSION",
    "RUN_KINDS",
    "ResilienceSpec",
    "RunFailure",
    "RunResult",
    "RunSpec",
    "SPEC_SCHEMA_VERSION",
    "Session",
    "SpecError",
    "SpecVersionError",
    "WorldSpec",
    "iter_run_records",
    "migrate_spec_payload",
    "run",
    "spec_migration",
]
