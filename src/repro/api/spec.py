"""The declarative run description: one serialisable object per campaign.

The paper's pipeline is one conceptual experiment — crawl vantage
points, detect accept-or-pay walls, measure cookies with and without
consent, compare against uBlock — but until this package the
configuration surface was fractured across ``Crawler`` arguments,
``CrawlEngine`` kwargs, ``ExperimentContext``, ``run_longitudinal``
and ~20 argparse flags.  A :class:`RunSpec` collapses all of that into
a single typed, validating, serialisable tree:

- :class:`WorldSpec` — which synthetic web (seed, scale).
- :class:`EngineSpec` — how to execute (workers, shards, retry,
  checkpointing, resume).
- :class:`CrawlSpec` / :class:`MeasureSpec` /
  :class:`LongitudinalSpec` / :class:`MultiVantageSpec` — what to
  measure (exactly one of them, selected by ``RunSpec.kind``).
- :class:`OutputSpec` — where the records go (JSONL spool path, or a
  wave directory for longitudinal campaigns).

A spec round-trips losslessly: ``RunSpec.from_dict(spec.to_dict()) ==
spec``, and :meth:`RunSpec.load` reads the same structure from a TOML
or JSON config file, so an entire campaign (including its resume
behaviour) is one artefact that can be saved, diffed, and replayed.

>>> spec = RunSpec(kind="crawl", world=WorldSpec(scale=0.01, seed=3))
>>> RunSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Callable, Dict, Mapping, MutableMapping, Optional, Tuple, Union

from repro.resilience.chaos import ChaosSpec as _ChaosPlaneSpec

#: Campaign kinds a :class:`RunSpec` can describe, and the section
#: holding each kind's workload settings.
RUN_KINDS = ("crawl", "measure", "longitudinal", "multivantage")

#: Current version of the RunSpec *wire schema* — the JSON structure
#: :meth:`RunSpec.to_dict` emits and the campaign service accepts.
#: Version 1 is the pre-versioning format (no ``schema_version`` key);
#: version 2 added the explicit key and the ``"distributed"`` executor
#: backend.  Old versions are upgraded through :data:`_SPEC_MIGRATIONS`
#: so queued/submitted campaigns survive spec evolution.
SPEC_SCHEMA_VERSION = 2

#: Kinds whose records land in a wave directory (``output.out_dir``)
#: rather than a single spool file (``output.path``).
_WAVE_KINDS = ("longitudinal", "multivantage")

#: Cookie/uBlock measurement modes (`MeasureSpec.mode`).
MEASURE_MODES = ("accept", "reject", "ublock")


class SpecError(ValueError):
    """A run spec (or config file) is structurally invalid."""


class SpecVersionError(SpecError):
    """A run spec declares a wire-schema version this build cannot read."""


#: Migration hooks: ``version -> upgrade`` where *upgrade* takes the
#: mutable spec mapping at that version and returns the mapping at
#: ``version + 1``.  :meth:`RunSpec.from_dict` chains these until the
#: data reaches :data:`SPEC_SCHEMA_VERSION`, so a spec serialized by an
#: older build stays submittable forever (each release that changes the
#: wire shape registers exactly one hook here).
_SPEC_MIGRATIONS: Dict[int, Callable[[MutableMapping], MutableMapping]] = {}


def spec_migration(version: int):
    """Register the migration upgrading wire-schema *version* by one."""
    def register(upgrade: Callable[[MutableMapping], MutableMapping]):
        _SPEC_MIGRATIONS[version] = upgrade
        return upgrade
    return register


@spec_migration(1)
def _upgrade_v1(data: MutableMapping) -> MutableMapping:
    """v1 -> v2: the structure is unchanged; the version key is new."""
    return data


def migrate_spec_payload(data: Mapping) -> Dict[str, object]:
    """Upgrade a raw spec mapping to :data:`SPEC_SCHEMA_VERSION`.

    A missing ``schema_version`` means version 1 (the pre-versioning
    format).  Unknown — usually *newer* — versions are rejected with a
    readable :class:`SpecVersionError` instead of a downstream
    field-validation surprise, so a service running an older build
    refuses a newer client's spec in one comprehensible sentence.
    """
    out = dict(data)
    version = out.pop("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise SpecVersionError(
            f"schema_version must be an integer, got {version!r}"
        )
    while version < SPEC_SCHEMA_VERSION:
        upgrade = _SPEC_MIGRATIONS.get(version)
        if upgrade is None:
            raise SpecVersionError(
                f"no migration from spec schema_version {version} "
                f"(supported: {sorted(_SPEC_MIGRATIONS)} -> "
                f"{SPEC_SCHEMA_VERSION})"
            )
        out = dict(upgrade(out))
        out.pop("schema_version", None)
        version += 1
    if version > SPEC_SCHEMA_VERSION:
        raise SpecVersionError(
            f"spec declares schema_version {version}, but this build "
            f"reads up to {SPEC_SCHEMA_VERSION} — it was produced by a "
            "newer release; upgrade this installation to run it"
        )
    return out


def _tuple_or_none(value) -> Optional[tuple]:
    """Normalise a config sequence to a tuple (``None`` passes through)."""
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        raise SpecError(
            f"expected a list, got the string {value!r} "
            "(write it as a one-element list)"
        )
    return tuple(value)


def _check_fields(cls, data: Mapping, where: str) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"{where}: unknown key(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )


@dataclass(frozen=True)
class WorldSpec:
    """Which synthetic web to build (`repro.webgen.build_world`)."""

    #: Fraction of the paper's 45k-site web; ``1.0`` is paper scale.
    scale: float = 0.05
    seed: int = 2023

    def validate(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise SpecError(f"world.scale must be in (0, 1], got {self.scale}")

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorldSpec":
        _check_fields(cls, data, "world")
        return cls(**data)


#: Executor backends `EngineSpec.executor` can name (``None`` = the
#: historical rule: serial when ``workers == 1``, threads otherwise).
EXECUTOR_BACKENDS = ("serial", "thread", "process", "distributed")

#: Merge strategies: in-memory plan-order assembly, or the streaming
#: k-way join over per-shard spools (O(shard buffer) memory).
MERGE_MODES = ("memory", "spool")


@dataclass(frozen=True)
class EngineSpec:
    """How the crawl engine executes the plan."""

    workers: int = 1
    #: ``None`` keeps the engine default (1 serial, 4 × workers parallel).
    shards: Optional[int] = None
    #: Executor backend (serial/thread/process/distributed); ``None``
    #: keeps the workers-based rule.  The process backend sidesteps the
    #: GIL for compute-bound crawls but requires a picklable campaign
    #: (stock crawler over a built world — see the engine docs);
    #: ``distributed`` ships the same shard bundles to worker processes
    #: over a socket work queue (:mod:`repro.distributed`) under the
    #: same portability rules.
    executor: Optional[str] = None
    #: ``"memory"`` merges in memory; ``"spool"`` streams shard output
    #: to per-shard spools and k-way-joins them (needs an output path).
    merge: str = "memory"
    retry_max_attempts: int = 2
    retry_unreachable: bool = False
    #: Checkpoint every run that has a spool path (``<out>.checkpoint``).
    checkpoint: bool = True
    resume: bool = False

    def validate(self) -> None:
        if self.workers < 1:
            raise SpecError(f"engine.workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise SpecError(f"engine.shards must be >= 1, got {self.shards}")
        if self.executor is not None and self.executor not in EXECUTOR_BACKENDS:
            raise SpecError(
                "engine.executor must be one of "
                f"{', '.join(EXECUTOR_BACKENDS)}, got {self.executor!r}"
            )
        if self.executor == "serial" and self.workers > 1:
            raise SpecError(
                "engine.executor='serial' contradicts engine.workers > 1 "
                "(pick 'thread' or 'process' to parallelise)"
            )
        if self.merge not in MERGE_MODES:
            raise SpecError(
                f"engine.merge must be one of {', '.join(MERGE_MODES)}, "
                f"got {self.merge!r}"
            )
        if self.retry_max_attempts < 1:
            raise SpecError(
                "engine.retry_max_attempts must be >= 1, "
                f"got {self.retry_max_attempts}"
            )
        if self.resume and not self.checkpoint:
            raise SpecError("engine.resume requires engine.checkpoint")

    @classmethod
    def from_dict(cls, data: Mapping) -> "EngineSpec":
        _check_fields(cls, data, "engine")
        return cls(**data)


@dataclass(frozen=True)
class ResilienceSpec:
    """Backoff, deadlines and circuit breakers for the retry layer.

    All durations are **virtual seconds**: the engine pays them on the
    world's virtual clock, so no configuration here can ever make a
    run sleep for real — only degrade deterministically sooner.
    """

    #: Exponential-backoff schedule between retry attempts.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Deterministic jitter fraction in [0, 1] (derived from the task
    #: identity, never a live RNG).
    jitter: float = 0.1
    #: Per-attempt virtual-time budget (None = unlimited).
    attempt_deadline: Optional[float] = None
    #: Whole-task virtual-time budget across attempts + backoff.
    task_deadline: Optional[float] = None
    #: Open a domain's circuit after N consecutive task failures
    #: (None disables breakers).
    breaker_threshold: Optional[int] = None
    #: Tasks an open breaker skips before its half-open probe.
    breaker_quarantine: int = 4

    def validate(self) -> None:
        if self.backoff_base < 0:
            raise SpecError(
                f"resilience.backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise SpecError(
                "resilience.backoff_factor must be >= 1, "
                f"got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise SpecError(
                f"resilience.backoff_max must be >= 0, got {self.backoff_max}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise SpecError(
                f"resilience.jitter must be in [0, 1], got {self.jitter}"
            )
        for name in ("attempt_deadline", "task_deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SpecError(
                    f"resilience.{name} must be > 0, got {value}"
                )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise SpecError(
                "resilience.breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_quarantine < 1:
            raise SpecError(
                "resilience.breaker_quarantine must be >= 1, "
                f"got {self.breaker_quarantine}"
            )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResilienceSpec":
        _check_fields(cls, data, "resilience")
        return cls(**data)


@dataclass(frozen=True)
class ChaosSpec(_ChaosPlaneSpec):
    """The seeded fault-injection plane (`repro.resilience.chaos`).

    The spec section *is* the engine's :class:`ChaosSpec` — same
    fields, same semantics — so what a config file declares is exactly
    what rides in ``CrawlPlan.context`` and reaches every worker.
    """

    def validate(self) -> None:
        try:
            super().validate()
        except ValueError as error:
            raise SpecError(f"chaos: {error}") from None

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChaosSpec":
        _check_fields(cls, data, "chaos")
        out = dict(data)
        out["domains"] = _tuple_or_none(data.get("domains"))
        return cls(**out)


@dataclass(frozen=True)
class CrawlSpec:
    """A multi-vantage-point detection crawl."""

    #: Vantage point codes; ``None`` crawls all eight.
    vps: Optional[Tuple[str, ...]] = None
    #: Target domains; ``None`` crawls the world's reachable union.
    domains: Optional[Tuple[str, ...]] = None

    def validate(self) -> None:
        if self.vps is not None and not self.vps:
            raise SpecError("crawl.vps must name at least one vantage point")

    @classmethod
    def from_dict(cls, data: Mapping) -> "CrawlSpec":
        _check_fields(cls, data, "crawl")
        return cls(
            vps=_tuple_or_none(data.get("vps")),
            domains=_tuple_or_none(data.get("domains")),
        )


@dataclass(frozen=True)
class MeasureSpec:
    """Repeated cookie or uBlock measurements on wall domains."""

    vp: str = "DE"
    mode: str = "accept"
    repeats: int = 5
    #: ``None`` measures the wall domains a fresh detection crawl finds.
    domains: Optional[Tuple[str, ...]] = None

    def validate(self) -> None:
        if self.mode not in MEASURE_MODES:
            raise SpecError(
                f"measure.mode must be one of {', '.join(MEASURE_MODES)}, "
                f"got {self.mode!r}"
            )
        if self.repeats < 1:
            raise SpecError(f"measure.repeats must be >= 1, got {self.repeats}")

    @classmethod
    def from_dict(cls, data: Mapping) -> "MeasureSpec":
        _check_fields(cls, data, "measure")
        out = dict(data)
        out["domains"] = _tuple_or_none(data.get("domains"))
        return cls(**out)


@dataclass(frozen=True)
class LongitudinalSpec:
    """Re-crawls of the same targets against evolved world snapshots."""

    vp: str = "DE"
    #: Wave offsets in months; 0 is the baseline snapshot.
    months: Tuple[int, ...] = (0, 4)
    domains: Optional[Tuple[str, ...]] = None

    def validate(self) -> None:
        months = list(self.months)
        if not months:
            raise SpecError("longitudinal.months must name at least one wave")
        if sorted(months) != months or len(set(months)) != len(months):
            raise SpecError("months must be strictly increasing")
        if months[0] < 0:
            raise SpecError("months must be >= 0")

    @classmethod
    def from_dict(cls, data: Mapping) -> "LongitudinalSpec":
        _check_fields(cls, data, "longitudinal")
        out = dict(data)
        if out.get("months") is None:
            out.pop("months", None)    # explicit null keeps the default
        else:
            out["months"] = _tuple_or_none(out["months"])
        out["domains"] = _tuple_or_none(data.get("domains"))
        return cls(**out)


@dataclass(frozen=True)
class MultiVantageSpec:
    """One campaign, N vantage points: the VP × domain × wave
    cross-product, compared by the streaming discrepancy report.

    Waves reuse the longitudinal machinery (month offsets against
    evolved world snapshots); the scenario knobs select a regulation
    regime (:data:`repro.vantage.REGULATION_REGIMES`) and optional
    VPN-like relocations / geo-blocking on top of it.
    """

    #: Vantage point codes; ``None`` crawls all eight.
    vps: Optional[Tuple[str, ...]] = None
    #: Wave offsets in months; 0 is the baseline snapshot.
    months: Tuple[int, ...] = (0,)
    #: Target domains; ``None`` crawls the world's reachable union.
    domains: Optional[Tuple[str, ...]] = None
    #: Named regulation regime (baseline / eu / non-eu / geo-blocked).
    regime: str = "baseline"
    #: Extra VPN-like relocations: logical VP code -> exit VP code.
    relocate: Optional[Mapping[str, str]] = None
    #: First wave (month offset) the relocations apply from.
    relocate_month: int = 0

    def validate(self) -> None:
        from repro.vantage import REGULATION_REGIMES, get_vantage_point

        if self.vps is not None and not self.vps:
            raise SpecError(
                "multivantage.vps must name at least one vantage point"
            )
        months = list(self.months)
        if not months:
            raise SpecError("multivantage.months must name at least one wave")
        if sorted(months) != months or len(set(months)) != len(months):
            raise SpecError("months must be strictly increasing")
        if months[0] < 0:
            raise SpecError("months must be >= 0")
        if str(self.regime).lower() not in REGULATION_REGIMES:
            raise SpecError(
                "multivantage.regime must be one of "
                f"{', '.join(REGULATION_REGIMES)}, got {self.regime!r}"
            )
        if self.relocate_month < 0:
            raise SpecError(
                "multivantage.relocate_month must be >= 0, "
                f"got {self.relocate_month}"
            )
        try:
            for code in self.vps or ():
                get_vantage_point(code)
            self.scenario()
        except KeyError as error:
            raise SpecError(f"multivantage: {error.args[0]}") from None

    def scenario(self):
        """The composed :class:`~repro.vantage.RegulationScenario`."""
        from repro.vantage import build_scenario

        return build_scenario(
            self.regime,
            relocations=self.relocate,
            relocate_from_month=self.relocate_month,
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "MultiVantageSpec":
        _check_fields(cls, data, "multivantage")
        out = dict(data)
        out["vps"] = _tuple_or_none(data.get("vps"))
        if out.get("months") is None:
            out.pop("months", None)    # explicit null keeps the default
        else:
            out["months"] = _tuple_or_none(out["months"])
        out["domains"] = _tuple_or_none(data.get("domains"))
        relocate = data.get("relocate")
        if relocate is not None:
            if not isinstance(relocate, Mapping):
                raise SpecError(
                    "multivantage.relocate must be a table/mapping of "
                    "VP code -> exit VP code"
                )
            out["relocate"] = dict(relocate)
        return cls(**out)


@dataclass(frozen=True)
class OutputSpec:
    """Where records go (all optional: no path means in-memory only)."""

    #: JSONL spool for ``crawl``/``measure`` records.
    path: Optional[str] = None
    #: Wave directory for ``longitudinal``/``multivantage``
    #: (``wave-<MM>.jsonl`` files).
    out_dir: Optional[str] = None

    def validate(self) -> None:
        pass

    @classmethod
    def from_dict(cls, data: Mapping) -> "OutputSpec":
        _check_fields(cls, data, "output")
        return cls(**data)


#: ``RunSpec`` section name -> section class, in serialisation order.
_SECTIONS = {
    "world": WorldSpec,
    "engine": EngineSpec,
    "resilience": ResilienceSpec,
    "chaos": ChaosSpec,
    "crawl": CrawlSpec,
    "measure": MeasureSpec,
    "longitudinal": LongitudinalSpec,
    "multivantage": MultiVantageSpec,
    "output": OutputSpec,
}


@dataclass(frozen=True)
class RunSpec:
    """One complete, replayable campaign description.

    Exactly one workload section is *active*, selected by ``kind``;
    the other workload sections may be present (e.g. a config file
    describing several campaigns' settings) but are ignored and — for
    canonical equality — dropped from :meth:`to_dict`.
    """

    kind: str
    world: WorldSpec = field(default_factory=WorldSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    crawl: CrawlSpec = field(default_factory=CrawlSpec)
    measure: MeasureSpec = field(default_factory=MeasureSpec)
    longitudinal: LongitudinalSpec = field(default_factory=LongitudinalSpec)
    multivantage: MultiVantageSpec = field(default_factory=MultiVantageSpec)
    output: OutputSpec = field(default_factory=OutputSpec)

    # ------------------------------------------------------------------
    def validate(self) -> "RunSpec":
        """Check the whole tree; returns self so calls can chain."""
        if self.kind not in RUN_KINDS:
            raise SpecError(
                f"kind must be one of {', '.join(RUN_KINDS)}, got {self.kind!r}"
            )
        self.world.validate()
        self.engine.validate()
        self.resilience.validate()
        self.chaos.validate()
        self.workload.validate()
        self.output.validate()
        if self.engine.resume:
            # The messages name the CLI flags: the output section's
            # fields map 1:1 onto them, and the CLI surfaces these
            # errors verbatim.
            if self.kind in _WAVE_KINDS and self.output.out_dir is None:
                raise SpecError(
                    f"{self.kind} --resume requires --out-dir "
                    "(output.out_dir: the checkpoints live next to the "
                    "wave spools)"
                )
            if self.kind not in _WAVE_KINDS and self.output.path is None:
                raise SpecError(
                    "--resume requires an output path (--out / "
                    "output.path: the checkpoint lives next to the spool)"
                )
        if self.engine.merge == "spool":
            # The streaming merge joins per-shard spools into a final
            # file — without one there is nothing to stream to.
            if self.kind in _WAVE_KINDS and self.output.out_dir is None:
                raise SpecError(
                    f"{self.kind} --merge spool requires --out-dir "
                    "(output.out_dir: the per-shard spools live next to "
                    "the wave files)"
                )
            if self.kind not in _WAVE_KINDS and self.output.path is None:
                raise SpecError(
                    "--merge spool requires an output path (--out / "
                    "output.path: shard spools are joined into it)"
                )
        return self

    @property
    def workload(self):
        """The active workload section (selected by ``kind``)."""
        return getattr(self, self.kind)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The canonical nested-dict form (inactive workloads omitted).

        The emitted mapping is the versioned *wire schema*: it always
        carries ``schema_version`` so a spec queued today is readable
        (via the registered migrations) by whatever build dequeues it.
        """
        out: Dict[str, object] = {
            "schema_version": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
        }
        for name in ("world", "engine", "resilience", "chaos",
                     self.kind, "output"):
            out[name] = dataclasses.asdict(getattr(self, name))
        return out

    @classmethod
    def from_dict(cls, data: Mapping, *, kind: Optional[str] = None) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a config file).

        *kind* supplies the campaign kind when the mapping omits it
        (a config file meant to be used as ``repro <kind> --config``);
        when both are present they must agree.
        """
        if not isinstance(data, Mapping):
            raise SpecError(f"run spec must be a mapping, got {type(data).__name__}")
        data = migrate_spec_payload(data)
        file_kind = data.get("kind")
        if file_kind is not None and kind is not None and file_kind != kind:
            raise SpecError(
                f"config file describes a {file_kind!r} run, "
                f"but a {kind!r} run was requested"
            )
        resolved_kind = file_kind or kind
        if resolved_kind is None:
            raise SpecError(f"run spec needs a 'kind' ({'/'.join(RUN_KINDS)})")
        unknown = sorted(set(data) - set(_SECTIONS) - {"kind"})
        if unknown:
            raise SpecError(
                f"unknown section(s) {', '.join(unknown)} "
                f"(known: kind, {', '.join(_SECTIONS)})"
            )
        sections = {}
        for name, section_cls in _SECTIONS.items():
            payload = data.get(name)
            if payload is None:
                sections[name] = section_cls()
            else:
                if not isinstance(payload, Mapping):
                    raise SpecError(f"section {name!r} must be a table/mapping")
                sections[name] = section_cls.from_dict(payload)
        return cls(kind=resolved_kind, **sections).validate()

    def override(self, overrides: Mapping[str, Mapping]) -> "RunSpec":
        """A copy with *overrides* (nested section -> field maps) applied.

        This is the CLI precedence rule: values from a config file are
        the base, explicitly supplied flags win.  Only fields present
        in *overrides* change.
        """
        _check = set(overrides) - set(_SECTIONS)
        if _check:
            raise SpecError(f"override names unknown section(s) {sorted(_check)}")
        replaced = {}
        for name, values in overrides.items():
            if not values:
                continue
            section = getattr(self, name)
            _check_fields(type(section), values, name)
            replaced[name] = dataclasses.replace(section, **values)
        return dataclasses.replace(self, **replaced).validate()

    # ------------------------------------------------------------------
    # Config files
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path], *, kind: Optional[str] = None) -> "RunSpec":
        """Load a spec from a ``.toml`` or ``.json`` config file.

        The file holds the :meth:`to_dict` structure; ``kind`` may be
        omitted in the file and supplied by the caller (the CLI passes
        the subcommand).  TOML cannot express ``null`` — simply omit a
        key to keep its default.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise SpecError(f"cannot read config {path}: {error}") from error
        if path.suffix.lower() == ".json":
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise SpecError(f"{path}: invalid JSON ({error})") from error
        elif path.suffix.lower() == ".toml":
            import tomllib

            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, tomllib.TOMLDecodeError) as error:
                raise SpecError(f"{path}: invalid TOML ({error})") from error
        else:
            raise SpecError(
                f"{path}: unsupported config suffix {path.suffix!r} "
                "(use .toml or .json)"
            )
        try:
            return cls.from_dict(data, kind=kind)
        except SpecError as error:
            raise SpecError(f"{path}: {error}") from error

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as JSON (the ``load``-able canonical form)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path
