"""A curated domain→category lookup service.

The paper queries FortiGuard's web filter database to label cookiewall
sites by category (Figure 1).  FortiGuard is itself a curated oracle,
so the faithful reproduction is a lookup service populated by the
world generator — the analysis code only ever sees the service API.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.urlkit import registrable_domain

#: Category vocabulary (the Figure 1 x-axis plus common extras).
CATEGORIES: Tuple[str, ...] = (
    "News and Media",
    "Business",
    "Information Technology",
    "Entertainment",
    "Sports",
    "Reference",
    "Society and Lifestyles",
    "Search Engines and Portals",
    "Health and Wellness",
    "Games",
    "Web-based Email",
    "Travel",
    "Personal Vehicles",
    "Restaurant and Dining",
    "Finance and Banking",
    "Shopping",
    "Education",
    "Government",
    "Streaming Media",
    "Others",
)

UNKNOWN_CATEGORY = "Others"


class WebFilterDB:
    """Maps registrable domains to content categories."""

    def __init__(self, entries: Optional[Dict[str, str]] = None) -> None:
        self._entries: Dict[str, str] = {}
        if entries:
            for domain, category in entries.items():
                self.add(domain, category)

    def add(self, domain: str, category: str) -> None:
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; must be one of CATEGORIES"
            )
        site = registrable_domain(domain) or domain.lower()
        self._entries[site] = category

    def update(self, entries: Iterable[Tuple[str, str]]) -> None:
        for domain, category in entries:
            self.add(domain, category)

    def lookup(self, domain: str) -> str:
        """The category for *domain* (falls back to 'Others')."""
        site = registrable_domain(domain) or domain.lower()
        return self._entries.get(site, UNKNOWN_CATEGORY)

    def __contains__(self, domain: object) -> bool:
        if not isinstance(domain, str):
            return False
        site = registrable_domain(domain) or domain.lower()
        return site in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def categories_present(self) -> List[str]:
        return sorted(set(self._entries.values()))
