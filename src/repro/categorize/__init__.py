"""Website categorisation (FortiGuard web filter stand-in, paper §4.1)."""

from repro.categorize.db import CATEGORIES, WebFilterDB

__all__ = ["CATEGORIES", "WebFilterDB"]
