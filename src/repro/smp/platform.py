"""SMP platform model: accounts, subscriptions, and the loader server."""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.browser.effects import encode_effects
from repro.errors import AuthenticationError
from repro.httpkit import Request, Response, parse_cookie_header
from repro.netsim import OriginServer, VisitorContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.webgen.spec import SiteSpec


@dataclass
class SMPAccount:
    """One customer account on a platform."""

    email: str
    password: str
    subscribed: bool = False

    @property
    def token(self) -> str:
        digest = hashlib.sha256(f"{self.email}:{self.password}".encode())
        return digest.hexdigest()[:24]


@dataclass
class SMPPlatform:
    """A Subscription Management Platform (contentpass / freechoice)."""

    name: str
    domain: str
    monthly_price_cents: int = 299
    accounts: Dict[str, SMPAccount] = field(default_factory=dict)
    partner_domains: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Account management (what the paper did manually: create an
    # account and buy a one-month subscription, §4.4)
    # ------------------------------------------------------------------
    def create_account(self, email: str, password: str) -> SMPAccount:
        if email in self.accounts:
            raise AuthenticationError(f"account {email!r} already exists")
        account = SMPAccount(email=email, password=password)
        self.accounts[email] = account
        return account

    def purchase_subscription(self, email: str) -> None:
        account = self.accounts.get(email)
        if account is None:
            raise AuthenticationError(f"no account {email!r}")
        account.subscribed = True

    def verify(self, email: str, password: str) -> SMPAccount:
        account = self.accounts.get(email)
        if account is None or account.password != password:
            raise AuthenticationError("invalid credentials")
        return account

    def account_for_token(self, token: str) -> Optional[SMPAccount]:
        for account in self.accounts.values():
            if account.token == token:
                return account
        return None

    @property
    def session_cookie(self) -> str:
        return f"{self.name}_session"

    @property
    def subscriber_cookie(self) -> str:
        """First-party cookie the loader sets on subscribed partners."""
        return f"{self.name}_subscriber"


class SMPServer(OriginServer):
    """The platform's web server (login, checkout, loader script).

    The loader (``/loader.js?site=X``, embedded by partner sites) is the
    heart of the accept-or-pay flow: with a valid subscription session
    it marks the page as subscribed (no wall, and the site serves no
    ads); otherwise it injects the cookiewall.
    """

    def __init__(self, platform: SMPPlatform, sites: Dict[str, "SiteSpec"]) -> None:
        self.platform = platform
        self.sites = sites

    def handle(self, request: Request, visitor: VisitorContext) -> Response:
        path = request.url.path
        if path.startswith("/login"):
            return self._login(request)
        if path.startswith("/loader.js"):
            return self._loader(request, visitor)
        if path.startswith("/checkout"):
            return self.html(
                request,
                f"<html><body><h1>{self.platform.name}</h1>"
                f"<p>All partner sites, ad-free, for 2,99 € im Monat.</p>"
                f"</body></html>",
            )
        return self.not_found(request)

    # ------------------------------------------------------------------
    def _login(self, request: Request) -> Response:
        params = request.url.query_params
        try:
            account = self.platform.verify(
                params.get("email", ""), params.get("password", "")
            )
        except AuthenticationError:
            return self.html(request, "<p>Login failed</p>", status=401)
        response = self.html(request, "<p>Logged in</p>")
        response.add_cookie(
            f"{self.platform.session_cookie}={account.token}; "
            f"Domain={self.platform.domain}; Max-Age=2592000"
        )
        return response

    def _loader(self, request: Request, visitor: VisitorContext) -> Response:
        # Imported here: repro.webgen imports repro.smp at module load,
        # so the template import must stay out of this module's top level.
        from repro.webgen.cookiewalls import wall_markup

        spec = self.sites.get(request.url.query_params.get("site", ""))
        if spec is None or spec.wall is None:
            return self.effects(request, encode_effects([]))
        cookies = parse_cookie_header(request.headers.get("cookie"))
        token = cookies.get(self.platform.session_cookie, "")
        account = self.platform.account_for_token(token) if token else None
        response: Response
        if visitor.vp.code not in spec.wall.regions:
            # The platform geo-gates walls the same way the site would.
            response = self.effects(request, encode_effects([]))
        elif account is not None and account.subscribed:
            effects = [
                {
                    "op": "set-page-cookie",
                    "name": self.platform.subscriber_cookie,
                    "value": "1",
                    "scope": "site",
                    "max_age": 2592000,
                },
                {"op": "set-flag", "key": "smp_subscriber", "value": True},
            ]
            response = self.effects(request, encode_effects(effects))
        else:
            effects = [
                {"op": "append-html", "html": wall_markup(spec)},
                {"op": "lock-scroll"},
            ]
            response = self.effects(request, encode_effects(effects))
        # The loader always pings home (metrics + frequency-capping
        # cookies on the SMP domain — non-tracking third-party cookies).
        # CRC-32, like engine sharding: the cookie value lands in crawl
        # records, so it must be identical across interpreter hash seeds
        # and worker processes (builtin hash() is salted per process).
        response.add_cookie(
            f"{self.platform.name}_metrics="
            f"m{zlib.crc32(spec.domain.encode('utf-8')) & 0xffff}; "
            f"Domain={self.platform.domain}; Max-Age=86400"
        )
        response.add_cookie(
            f"{self.platform.name}_fc=f1; "
            f"Domain={self.platform.domain}; Max-Age=604800"
        )
        return response
