"""Subscription Management Platforms (paper §4.4).

contentpass and freechoice offer website operators hosted cookiewalls:
visitors either accept tracking or buy one subscription valid on every
partner site.  This package models the platforms — accounts,
subscriptions, login, and the loader script partner sites embed.
"""

from repro.smp.platform import SMPAccount, SMPPlatform, SMPServer

__all__ = ["SMPAccount", "SMPPlatform", "SMPServer"]
