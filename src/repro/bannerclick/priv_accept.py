"""Priv-Accept: the baseline banner-accepting crawler (Jha et al. 2022).

The paper positions BannerClick against earlier tools; Priv-Accept
(§2, [31]) automatically *accepts* cookie banners but

- searches only the **main document** (no iframe switching, no shadow
  DOM workaround), and
- has **no cookiewall notion** — an accept-or-pay dialog is just
  another banner to it.

Reproducing the baseline lets the benchmarks quantify exactly what the
paper's extensions buy (see ``benchmarks/bench_baseline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bannerclick.corpus import has_accept_words
from repro.browser import Browser, Page
from repro.dom import Element

#: Priv-Accept's clickable elements (it scans buttons and links).
_CLICKABLE_TAGS = ("button", "a")


@dataclass
class PrivAcceptResult:
    """What the baseline found (and possibly clicked) on a page."""

    accept_found: bool = False
    clicked: bool = False
    button_text: str = ""
    element: Optional[Element] = None


class PrivAccept:
    """A deliberately simple accept-clicker (the related-work baseline)."""

    def __init__(self, *, click: bool = True) -> None:
        self.click = click

    def find_accept_button(self, page: Page) -> Optional[Element]:
        """First visible main-document element with accept wording.

        Note the limitation this reproduces: elements inside iframes or
        shadow roots are invisible to this scan.
        """
        for element in page.document.elements():
            if element.tag not in _CLICKABLE_TAGS:
                continue
            if not element.is_visible():
                continue
            label = element.text_content()
            if label and has_accept_words(label):
                return element
        return None

    def run(self, browser: Browser, page: Page) -> PrivAcceptResult:
        """Scan (and with ``click=True`` press) the accept button."""
        element = self.find_accept_button(page)
        if element is None:
            return PrivAcceptResult(accept_found=False)
        result = PrivAcceptResult(
            accept_found=True,
            button_text=element.text_content(),
            element=element,
        )
        if self.click:
            browser.click(page, element)
            result.clicked = True
        return result


def compare_detection(
    browser_factory,
    domains: List[str],
    bannerclick_detector,
) -> dict:
    """Side-by-side banner coverage of Priv-Accept vs BannerClick.

    ``browser_factory`` is a zero-argument callable returning a fresh
    browser (one per visit, as both tools use fresh profiles).
    Returns counts of pages where each tool located an accept button.
    """
    baseline = PrivAccept(click=False)
    stats = {
        "total": 0,
        "priv_accept_found": 0,
        "bannerclick_found": 0,
        "bannerclick_only": 0,
        "walls_flagged_by_bannerclick": 0,
    }
    for domain in domains:
        browser = browser_factory()
        page = browser.visit(domain)
        stats["total"] += 1
        base_hit = baseline.find_accept_button(page) is not None
        detection = bannerclick_detector.detect(page)
        bc_hit = detection.found and detection.accept_element is not None
        if base_hit:
            stats["priv_accept_found"] += 1
        if bc_hit:
            stats["bannerclick_found"] += 1
            if not base_hit:
                stats["bannerclick_only"] += 1
        if detection.is_cookiewall:
            stats["walls_flagged_by_bannerclick"] += 1
    return stats
