"""Banner and cookiewall detection (paper §3).

The detector only uses capabilities a Selenium-based crawler has:
element scans in the current browsing context, frame switching, and —
for shadow DOMs — the paper's workaround of *cloning shadow children
into the document body* so ordinary lookups can run over them, then
mapping matches back to the live shadow tree for interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bannerclick.corpus import (
    find_currency_amounts,
    has_accept_words,
    has_banner_words,
    has_cookiewall_words,
    has_reject_words,
)
from repro.browser import Page
from repro.dom import Document, Element, Node
from repro.dom.selector import iter_elements_by_tags
from repro.soup import Soup

#: Tags that can host a consent dialog.
_CONTAINER_TAGS = frozenset({"div", "section", "aside", "dialog", "form"})

#: id/class/role tokens hinting at consent UI.
_HINT_TOKENS = (
    "cookie", "consent", "cmp", "gdpr", "privacy", "notice", "banner",
    "overlay", "wall", "dialog", "message", "paywall", "pur",
)

_BUTTON_TAGS = frozenset({"button", "a", "input"})

_MAX_BANNER_TEXT = 900


@dataclass
class BannerDetection:
    """The outcome of one banner scan on one page."""

    found: bool = False
    location: str = "none"     # main | iframe | shadow-open | shadow-closed
    container: Optional[Element] = None
    frame_element: Optional[Element] = None
    shadow_host: Optional[Element] = None
    text: str = ""
    accept_element: Optional[Element] = None
    reject_element: Optional[Element] = None
    has_reject: bool = False
    is_cookiewall: bool = False
    wall_word_match: bool = False
    currency_matches: List[str] = field(default_factory=list)

    @property
    def is_regular_banner(self) -> bool:
        return self.found and not self.is_cookiewall


class BannerClick:
    """The extended BannerClick detector.

    The keyword arguments are ablation switches (all on by default,
    matching the paper's configuration):

    - ``shadow_dom``: scan open shadow roots via the clone workaround;
    - ``closed_shadow``: additionally reach closed roots (devtools
      pierce, [52]);
    - ``iframes``: scan iframe documents;
    - ``subscription_words`` / ``currency_patterns``: the two halves of
      the cookiewall classifier (§3).
    """

    def __init__(
        self,
        *,
        shadow_dom: bool = True,
        closed_shadow: bool = True,
        iframes: bool = True,
        subscription_words: bool = True,
        currency_patterns: bool = True,
    ) -> None:
        self.shadow_dom = shadow_dom
        self.closed_shadow = closed_shadow
        self.iframes = iframes
        self.subscription_words = subscription_words
        self.currency_patterns = currency_patterns

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def detect(self, page: Page) -> BannerDetection:
        """Scan *page* for a banner; classify cookiewalls."""
        detection = self._scan_context(page.document)
        if detection is not None:
            detection.location = "main"
            return self._classify(detection)

        if self.iframes:
            detection = self._scan_iframes(page.document)
            if detection is not None:
                return self._classify(detection)

        if self.shadow_dom:
            detection = self._scan_shadow_hosts(page.document)
            if detection is not None:
                return self._classify(detection)

        return BannerDetection(found=False)

    # ------------------------------------------------------------------
    # Context scans
    # ------------------------------------------------------------------
    def _scan_context(self, root: Node) -> Optional[BannerDetection]:
        """Find the most plausible banner container under *root*.

        The container scan runs through the document's tag index (one
        bucket lookup per container tag, in document order) instead of
        walking every node.
        """
        candidates: List[Tuple[bool, int, Element]] = []
        for element in iter_elements_by_tags(root, _CONTAINER_TAGS):
            if not element.is_visible():
                continue
            hinted = self._attribute_hint(element)
            text = element.text_content()
            if not hinted and not has_banner_words(text):
                continue
            if len(text) > _MAX_BANNER_TEXT or not text:
                continue
            buttons = self._buttons_in(element)
            if not buttons:
                continue
            candidates.append((not hinted, len(text), element))
        if not candidates:
            return None
        candidates.sort(key=lambda item: (item[0], item[1]))
        container = candidates[0][2]
        detection = BannerDetection(found=True, container=container)
        self._locate_buttons(detection, container)
        return detection

    def _scan_iframes(self, document: Document) -> Optional[BannerDetection]:
        for element in document.elements(include_shadow=self.shadow_dom):
            if element.tag != "iframe" or element.content_document is None:
                continue
            detection = self._scan_context(element.content_document)
            if detection is not None:
                detection.location = "iframe"
                detection.frame_element = element
                return detection
        return None

    def _scan_shadow_hosts(self, document: Document) -> Optional[BannerDetection]:
        body = document.body
        if body is None:
            return None
        for host in document.elements():
            shadow = host.shadow_root  # open roots only
            mode = "shadow-open"
            if shadow is None and self.closed_shadow:
                shadow = host.attached_shadow_root  # devtools pierce
                mode = "shadow-closed"
            if shadow is None:
                continue
            detection = self._clone_workaround(body, shadow)
            if detection is not None:
                detection.location = mode
                detection.shadow_host = host
                return detection
        return None

    def _clone_workaround(self, body, shadow) -> Optional[BannerDetection]:
        """Paper §3: clone shadow children into the body, search the
        clones, then resolve matches back into the live shadow tree."""
        clones: List[Node] = []
        originals: List[Node] = []
        for child in shadow.children:
            clone = child.clone(deep=True)
            body.append_child(clone)
            clones.append(clone)
            originals.append(child)
        try:
            for clone, original in zip(clones, originals):
                detection = self._scan_subtree(clone)
                if detection is None:
                    continue
                mapped = self._map_back(detection.container, clone, original)
                if mapped is None:
                    continue
                remapped = BannerDetection(found=True, container=mapped)
                self._locate_buttons(remapped, mapped)
                return remapped
        finally:
            for clone in clones:
                clone.detach()
        return None

    def _scan_subtree(self, root: Node) -> Optional[BannerDetection]:
        """Like _scan_context but includes *root* itself as a candidate."""
        elements: List[Element] = []
        if isinstance(root, Element) and root.tag in _CONTAINER_TAGS:
            elements.append(root)
        elements.extend(iter_elements_by_tags(root, _CONTAINER_TAGS))
        candidates: List[Tuple[bool, int, Element]] = []
        for element in elements:
            if not element.is_visible():
                continue
            hinted = self._attribute_hint(element)
            text = element.text_content()
            if not hinted and not has_banner_words(text):
                continue
            if len(text) > _MAX_BANNER_TEXT or not text:
                continue
            if not self._buttons_in(element):
                continue
            candidates.append((not hinted, len(text), element))
        if not candidates:
            return None
        candidates.sort(key=lambda item: (item[0], item[1]))
        detection = BannerDetection(found=True, container=candidates[0][2])
        return detection

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _attribute_hint(element: Element) -> bool:
        haystack = " ".join(
            (
                element.get_attribute("id") or "",
                element.get_attribute("class") or "",
                element.get_attribute("role") or "",
            )
        ).lower()
        return any(token in haystack for token in _HINT_TOKENS)

    @staticmethod
    def _buttons_in(container: Element) -> List[Element]:
        out = []
        for el in iter_elements_by_tags(container, _BUTTON_TAGS):
            if el.tag == "input" and el.get_attribute("type") not in (
                "button", "submit"
            ):
                continue
            out.append(el)
        return out

    def _locate_buttons(self, detection: BannerDetection, container: Element) -> None:
        for button in self._buttons_in(container):
            label = button.text_content()
            if detection.accept_element is None and has_accept_words(label):
                detection.accept_element = button
            elif detection.reject_element is None and has_reject_words(label):
                detection.reject_element = button
        detection.has_reject = detection.reject_element is not None

    @staticmethod
    def _node_path(node: Node, ancestor: Node) -> Optional[List[int]]:
        """Child-index path from *ancestor* down to *node*."""
        path: List[int] = []
        current = node
        while current is not ancestor:
            parent = current.parent
            if parent is None:
                return None
            path.append(parent.children.index(current))
            current = parent
        path.reverse()
        return path

    @classmethod
    def _map_back(
        cls, found: Optional[Element], clone_root: Node, original_root: Node
    ) -> Optional[Element]:
        if found is None:
            return None
        if found is clone_root:
            return original_root if isinstance(original_root, Element) else None
        path = cls._node_path(found, clone_root)
        if path is None:
            return None
        node: Node = original_root
        for index in path:
            if index >= len(node.children):
                return None
            node = node.children[index]
        return node if isinstance(node, Element) else None

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def _classify(self, detection: BannerDetection) -> BannerDetection:
        """Cookiewall classification over soup-extracted banner text."""
        assert detection.container is not None
        detection.text = Soup(detection.container).get_text()
        if self.subscription_words:
            detection.wall_word_match = has_cookiewall_words(detection.text)
        if self.currency_patterns:
            detection.currency_matches = find_currency_amounts(detection.text)
        detection.is_cookiewall = bool(
            detection.wall_word_match or detection.currency_matches
        )
        return detection
