"""BannerClick, extended for cookiewall detection (the paper's tool).

The pipeline mirrors §3 of the paper:

1. detect cookie banners via a multi-language word corpus, searching
   the main document, iframes, and shadow DOMs (using the
   clone-children-into-body workaround for shadow roots);
2. locate accept/reject buttons inside the banner;
3. classify the banner as a *cookiewall* when its text (extracted with
   the Soup API) contains subscription words or currency–amount
   combinations;
4. optionally interact (click accept / reject).
"""

from repro.bannerclick.corpus import (
    ACCEPT_WORDS,
    BANNER_WORDS,
    COOKIEWALL_WORDS,
    CURRENCY_TOKENS,
    REJECT_WORDS,
    find_currency_amounts,
    has_cookiewall_words,
)
from repro.bannerclick.detect import BannerClick, BannerDetection
from repro.bannerclick.interact import accept_banner, reject_banner

__all__ = [
    "BannerClick",
    "BannerDetection",
    "accept_banner",
    "reject_banner",
    "BANNER_WORDS",
    "ACCEPT_WORDS",
    "REJECT_WORDS",
    "COOKIEWALL_WORDS",
    "CURRENCY_TOKENS",
    "find_currency_amounts",
    "has_cookiewall_words",
]
