"""Word corpora for banner detection and cookiewall classification.

The cookiewall corpus is the paper's exact list (§3): subscription
words *abo, abonnent, abbonamento, abonne, abonné, ad-free, subscribe*
plus the top-10 currencies and the VP-country currencies (EUR, USD,
CHF, AUD, GBP, Rs, BRL, CNY, ZAR), matched in payment-style
combinations (``$3.99``, ``3.99$``, ``3.99 $`` …).
"""

from __future__ import annotations

import re
from typing import List, Tuple

#: Words whose presence marks an element as consent-banner-ish.
#: Multi-language, matched case-insensitively as substrings.
BANNER_WORDS: Tuple[str, ...] = (
    # cookies / consent
    "cookie", "cookies", "consent", "einwilligung", "zustimmen",
    "datenschutz", "kakor", "samtycke", "privacy", "privatsphäre",
    "gdpr", "dsgvo", "rgpd",
    # ads / tracking vocabulary used by walls
    "werbung", "tracking", "werbefrei", "ads", "ad-free", "advertising",
    "pubblicità", "publicité", "publicidad", "advertenties", "annoncer",
    "annonser", "anúncios", "izikhangiso",
)

#: Words on buttons that give consent.
ACCEPT_WORDS: Tuple[str, ...] = (
    "accept", "agree", "allow all", "got it",
    "akzeptieren", "zustimmen", "einverstanden", "weiterlesen",
    "accetta", "godkänn", "accepter", "aceptar", "aceitar",
    "accepteren", "vuma",
)

#: Words on buttons that decline consent.
REJECT_WORDS: Tuple[str, ...] = (
    "reject", "decline", "refuse", "deny",
    "ablehnen", "rifiuta", "avvisa", "refuser", "rechazar", "rejeitar",
    "weigeren", "afvis", "yala",
)

#: The paper's cookiewall subscription words (§3), matched at word
#: starts so that e.g. "Pur-Abo" and "abonnement" hit while "about"
#: does not ("abo" requires a full-word match).
COOKIEWALL_WORDS: Tuple[str, ...] = (
    "abo", "abonnent", "abbonamento", "abonne", "abonné",
    "ad-free", "subscribe",
)

_WALL_WORD_RE = re.compile(
    r"(?<!\w)(?:"
    r"abo(?![\w])"          # exact word "abo"
    r"|abonnent\w*"
    r"|abbonamento"
    r"|abonn[eé]\w*"
    r"|ad-free"
    r"|subscri\w+"
    r")",
    re.IGNORECASE,
)

#: Currency words and symbols (paper footnote 1).
CURRENCY_TOKENS: Tuple[str, ...] = (
    "EUR", "USD", "CHF", "AUD", "GBP", "Rs", "BRL", "CNY", "ZAR",
    "€", "$", "£", "AU$", "R$",
)

_AMOUNT = r"\d{1,4}(?:[.,]\d{2})?"
_TOKENS = "|".join(re.escape(t) for t in CURRENCY_TOKENS)
_CURRENCY_RE = re.compile(
    rf"(?:(?:{_TOKENS})\s?{_AMOUNT})|(?:{_AMOUNT}\s?(?:{_TOKENS}))"
)


def has_banner_words(text: str) -> bool:
    """True when *text* contains any banner-corpus word."""
    lowered = text.lower()
    return any(word in lowered for word in BANNER_WORDS)


def has_accept_words(text: str) -> bool:
    lowered = text.lower()
    return any(word in lowered for word in ACCEPT_WORDS)


def has_reject_words(text: str) -> bool:
    lowered = text.lower()
    return any(word in lowered for word in REJECT_WORDS)


def has_cookiewall_words(text: str) -> bool:
    """True when a subscription word from the paper's corpus appears."""
    return _WALL_WORD_RE.search(text) is not None


def find_currency_amounts(text: str) -> List[str]:
    """All payment-style currency–amount combinations in *text*.

    >>> find_currency_amounts("nur 2,99 € im Monat")
    ['2,99 €']
    >>> find_currency_amounts("pay $3.99 or 3.99$ or 3.99 $")
    ['$3.99', '3.99$', '3.99 $']
    """
    return _CURRENCY_RE.findall(text)
