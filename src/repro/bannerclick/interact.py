"""Banner interaction: clicking accept/reject on a detection.

Interaction always happens on the *live* element (inside the real
shadow root or iframe), which the detector resolved via the clone
workaround — the same two-step dance the paper describes in §3.
"""

from __future__ import annotations

from typing import Optional

from repro.bannerclick.detect import BannerDetection
from repro.browser import Browser, ClickOutcome, Page
from repro.errors import MeasurementError


def accept_banner(
    browser: Browser, page: Page, detection: BannerDetection
) -> ClickOutcome:
    """Click the banner's accept button.

    Raises :class:`MeasurementError` when the detection has no accept
    button (e.g. a notice-only banner).
    """
    if not detection.found or detection.accept_element is None:
        raise MeasurementError("detection has no accept button to click")
    return browser.click(page, detection.accept_element)


def reject_banner(
    browser: Browser, page: Page, detection: BannerDetection
) -> ClickOutcome:
    """Click the banner's reject button (absent on cookiewalls)."""
    if not detection.found or detection.reject_element is None:
        raise MeasurementError("detection has no reject button to click")
    return browser.click(page, detection.reject_element)


def subscribe_via_banner(
    browser: Browser, page: Page, detection: BannerDetection
) -> Optional[ClickOutcome]:
    """Click the wall's subscribe button, if present (navigational)."""
    if detection.container is None:
        return None
    for element in detection.container.elements():
        if element.get_attribute("data-action") == "subscribe":
            return browser.click(page, element)
    return None
