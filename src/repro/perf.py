"""Hot-path switches: one place to turn the indexed fast paths off.

Every per-visit hot path added by the indexing pass — the token/trie
filter engine, the parsed-document cache, and the compiled-selector /
DOM-index query planner — consults this module.  The switches exist for
two reasons:

1. **Differential testing.**  The acceptance bar for every fast path is
   byte-identical output, so the test suite runs the same crawl twice —
   once with the indexes, once with the original linear scans — and
   compares records.  ``disabled()`` flips all (or selected) paths off
   for the duration of a ``with`` block.
2. **Benchmarking.**  ``benchmarks/bench_hotpaths.py`` measures the
   before/after of each path in one process, which keeps the comparison
   honest (same interpreter state, same world).

The switches are process-global and are *not* thread-safe to flip while
a parallel crawl is running; flip them only around whole runs, which is
what the tests and benchmarks do.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields


@dataclass
class HotpathConfig:
    """Which indexed hot paths are active (all on by default)."""

    #: Token/trie-indexed :class:`~repro.adblock.engine.FilterEngine`
    #: (off = the linear-scan naive matcher).
    filter_index: bool = True
    #: Parsed-document cache keyed by (body hash, url): repeated visits
    #: clone a pristine parse instead of re-tokenizing the HTML.
    parse_cache: bool = True
    #: Compiled selector plans + per-document tag/id/class indexes
    #: (off = re-parse the selector and walk the whole tree per query).
    selector_index: bool = True
    #: Per-load caching of ``Page.all_documents()`` / ``Page.iframes()``
    #: frame walks (off = re-walk the pierced tree on every call).
    frame_cache: bool = True

    def all_names(self) -> tuple:
        return tuple(f.name for f in fields(self))


#: The process-wide configuration every hot path consults.
config = HotpathConfig()


@contextmanager
def disabled(*names: str):
    """Temporarily disable hot paths (all of them when *names* is empty).

    >>> with disabled("filter_index"):
    ...     config.filter_index
    False
    >>> config.filter_index
    True
    """
    targets = names or config.all_names()
    unknown = set(targets) - set(config.all_names())
    if unknown:
        raise ValueError(f"unknown hot path(s): {sorted(unknown)}")
    saved = {name: getattr(config, name) for name in targets}
    try:
        for name in targets:
            setattr(config, name, False)
        yield config
    finally:
        for name, value in saved.items():
            setattr(config, name, value)
