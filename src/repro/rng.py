"""Deterministic, hierarchically seeded random number streams.

All stochastic behaviour in the synthetic web (site generation, ad
rotation per visit, cookie-count jitter, ...) must be reproducible so
that experiments are stable across runs and machines.  We derive child
seeds from a parent seed plus a string *scope* using SHA-256, which
gives independent streams without any global state.

Example
-------
>>> root = SeedSequence(42)
>>> a = root.stream("sites")
>>> b = root.stream("visits", "example.de", 3)
>>> a.random() != b.random()
True
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Scope = Union[str, int, bytes]

_MASK_64 = (1 << 64) - 1


def derive_seed(parent_seed: int, *scope: Scope) -> int:
    """Derive a 64-bit child seed from *parent_seed* and a scope path.

    The derivation is stable across Python versions and platforms
    (unlike ``hash()``, which is salted per process).
    """
    hasher = hashlib.sha256()
    hasher.update(str(parent_seed).encode("utf-8"))
    for part in scope:
        if isinstance(part, bytes):
            hasher.update(b"\x00b" + part)
        else:
            hasher.update(b"\x00s" + str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") & _MASK_64


class SeedSequence:
    """A node in a tree of deterministic random streams."""

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = seed & _MASK_64

    def child(self, *scope: Scope) -> "SeedSequence":
        """Return a child sequence for the given scope path."""
        return SeedSequence(derive_seed(self.seed, *scope))

    def stream(self, *scope: Scope) -> random.Random:
        """Return an independent :class:`random.Random` for the scope."""
        return random.Random(derive_seed(self.seed, *scope))

    def __repr__(self) -> str:
        return f"SeedSequence(seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeedSequence) and other.seed == self.seed

    def __hash__(self) -> int:
        return hash(("SeedSequence", self.seed))


def stable_shuffle(items, rng: random.Random) -> list:
    """Return a new list with *items* shuffled by *rng* (input untouched)."""
    out = list(items)
    rng.shuffle(out)
    return out


def weighted_choice(rng: random.Random, weighted: dict):
    """Pick a key from ``{value: weight}`` proportionally to its weight."""
    if not weighted:
        raise ValueError("weighted_choice() requires a non-empty mapping")
    total = float(sum(weighted.values()))
    if total <= 0:
        raise ValueError("weights must sum to a positive number")
    point = rng.random() * total
    acc = 0.0
    last = None
    for value, weight in weighted.items():
        acc += weight
        last = value
        if point < acc:
            return value
    return last
