"""HTML parsing and a BeautifulSoup-like querying API.

The paper's pipeline uses BeautifulSoup to pull the visible text out of
banner subtrees before running the cookiewall word search.  This package
provides the equivalent, end to end:

- :mod:`repro.soup.tokenizer` — an HTML5-ish tokenizer,
- :mod:`repro.soup.parser` — a forgiving tree builder producing
  :class:`repro.dom.Document` trees (including declarative shadow DOM
  via ``<template shadowrootmode>`` and iframes via ``srcdoc``),
- :mod:`repro.soup.api` — ``Soup`` with ``find`` / ``find_all`` /
  ``get_text`` / ``select``.
"""

from repro.soup.api import Soup, make_soup
from repro.soup.cache import DocumentCache, shared_document_cache
from repro.soup.parser import parse_document, parse_fragment

__all__ = [
    "Soup",
    "make_soup",
    "parse_document",
    "parse_fragment",
    "DocumentCache",
    "shared_document_cache",
]
