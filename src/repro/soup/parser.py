"""A forgiving HTML tree builder.

Produces :class:`repro.dom.Document` trees.  Notable behaviours:

- ``<html>``/``<head>``/``<body>`` are synthesised when missing;
  metadata elements encountered before the body go to the head.
- ``<template shadowrootmode="open|closed">`` attaches a shadow root to
  the enclosing element (declarative shadow DOM), so serialised shadow
  trees round-trip.
- ``<iframe srcdoc="...">`` recursively parses the framed document into
  ``element.content_document``.
- Mis-nested end tags pop to the nearest matching open element and are
  otherwise ignored (lightweight error recovery).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.dom.node import (
    VOID_ELEMENTS,
    Comment,
    Document,
    Element,
    Node,
    ShadowRoot,
    Text,
)
from repro.soup.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTag,
    StartTag,
    TextToken,
    tokenize,
)

_HEAD_ELEMENTS = frozenset({"title", "meta", "link", "base"})

_AUTO_CLOSE = {
    "li": frozenset({"li"}),
    "p": frozenset({"p"}),
    "option": frozenset({"option"}),
    "tr": frozenset({"tr"}),
    "td": frozenset({"td", "th"}),
    "th": frozenset({"td", "th"}),
}


def parse_document(html: str, url: str = "about:blank") -> Document:
    """Parse a full HTML document."""
    document = Document(url)
    builder = _TreeBuilder(document)
    for token in tokenize(html):
        builder.feed(token)
    builder.finish()
    return document


def parse_fragment(html: str) -> List[Node]:
    """Parse an HTML fragment; returns the top-level nodes."""
    container = Element("div")
    builder = _TreeBuilder(container, fragment=True)
    for token in tokenize(html):
        builder.feed(token)
    builder.finish()
    children = list(container.children)
    for child in children:
        child.detach()
    return children


class _TreeBuilder:
    def __init__(self, root: Union[Document, Element], fragment: bool = False):
        self.root = root
        self.fragment = fragment
        self.stack: List[Node] = [root]
        self.html: Optional[Element] = None
        self.head: Optional[Element] = None
        self.body: Optional[Element] = None
        self.body_started = fragment

    # -- document scaffolding -------------------------------------------
    def _ensure_html(self) -> Element:
        if self.fragment:
            raise AssertionError("fragments have no <html>")
        if self.html is None:
            self.html = Element("html")
            self.root.append_child(self.html)
            self.stack = [self.root, self.html]
        return self.html

    def _ensure_head(self) -> Element:
        html = self._ensure_html()
        if self.head is None:
            self.head = Element("head")
            html.insert_before(self.head, html.children[0] if html.children else None)
        return self.head

    def _ensure_body(self) -> Element:
        html = self._ensure_html()
        self._ensure_head()
        if self.body is None:
            self.body = Element("body")
            html.append_child(self.body)
        self.body_started = True
        if len(self.stack) < 3 or self.stack[-1] is self.html or self.stack[-1] is self.root:
            self.stack = [self.root, html, self.body]
        return self.body

    def _insertion_point(self) -> Node:
        return self.stack[-1]

    # -- token dispatch ---------------------------------------------------
    def feed(self, token) -> None:
        if isinstance(token, DoctypeToken):
            return
        if isinstance(token, CommentToken):
            self._insert_leaf(Comment(token.data))
            return
        if isinstance(token, TextToken):
            self._handle_text(token.data)
            return
        if isinstance(token, StartTag):
            self._handle_start(token)
            return
        if isinstance(token, EndTag):
            self._handle_end(token)
            return

    def finish(self) -> None:
        # Real browsers always synthesise <html>/<head>/<body>, even for
        # documents with only metadata (or nothing at all).
        if not self.fragment and self.body is None:
            self._ensure_body()

    # -- handlers ---------------------------------------------------------
    def _insert_leaf(self, node: Node) -> None:
        if self.fragment:
            self._insertion_point().append_child(node)
            return
        if not self.body_started and isinstance(node, Comment):
            # Comments before body go wherever the insertion point is.
            self._insertion_point().append_child(node)
            return
        if self.stack[-1] is self.root or self.stack[-1] is self.html:
            self._ensure_body()
        self._insertion_point().append_child(node)

    def _handle_text(self, data: str) -> None:
        if not data:
            return
        if not self.fragment:
            at_scaffold = self.stack[-1] in (self.root, self.html, self.head)
            if at_scaffold or (not self.body_started and len(self.stack) <= 1):
                if not data.strip():
                    return
                self._ensure_body()
        self._insertion_point().append_child(Text(data))

    def _handle_start(self, token: StartTag) -> None:
        name = token.name
        if not self.fragment:
            if name == "html":
                html = self._ensure_html()
                html.attrs.update(token.attrs)
                return
            if name == "head":
                head = self._ensure_head()
                head.attrs.update(token.attrs)
                self.stack.append(head)
                return
            if name == "body":
                body = self._ensure_body()
                body.attrs.update(token.attrs)
                return
            if name in _HEAD_ELEMENTS and not self.body_started:
                head = self._ensure_head()
                element = Element(name, token.attrs)
                head.append_child(element)
                if name not in VOID_ELEMENTS and not token.self_closing:
                    self.stack.append(element)
                return
            if name in ("script", "style") and not self.body_started:
                head = self._ensure_head()
                element = Element(name, token.attrs)
                head.append_child(element)
                if not token.self_closing:
                    self.stack.append(element)
                return
            if not self.body_started:
                self._ensure_body()

        # Declarative shadow DOM.
        if name == "template" and token.attrs.get("shadowrootmode") in ("open", "closed"):
            host = self._nearest_element()
            if host is not None and host.attached_shadow_root is None:
                shadow = host.attach_shadow(mode=token.attrs["shadowrootmode"])
                self.stack.append(shadow)
                return
        self._auto_close(name)
        element = Element(name, token.attrs)
        self._insertion_point().append_child(element)
        if name == "iframe" and "srcdoc" in token.attrs:
            inner_html = token.attrs.pop("srcdoc")
            element.attrs.pop("srcdoc", None)
            element.content_document = parse_document(inner_html, url="about:srcdoc")
        if name in VOID_ELEMENTS or token.self_closing:
            return
        self.stack.append(element)

    def _auto_close(self, name: str) -> None:
        closers = _AUTO_CLOSE.get(name)
        if not closers:
            return
        top = self.stack[-1]
        if isinstance(top, Element) and top.tag in closers:
            self.stack.pop()

    def _nearest_element(self) -> Optional[Element]:
        for node in reversed(self.stack):
            if isinstance(node, Element):
                return node
        return None

    def _handle_end(self, token: EndTag) -> None:
        name = token.name
        if name == "template":
            for index in range(len(self.stack) - 1, -1, -1):
                node = self.stack[index]
                if isinstance(node, ShadowRoot):
                    del self.stack[index:]
                    return
                if isinstance(node, Element) and node.tag == "template":
                    del self.stack[index:]
                    return
            return
        if not self.fragment and name in ("html", "body", "head"):
            if name == "head" and self.head in self.stack:
                del self.stack[self.stack.index(self.head):]
            return
        for index in range(len(self.stack) - 1, 0, -1):
            node = self.stack[index]
            if isinstance(node, Element) and node.tag == name:
                del self.stack[index:]
                return
        # Unmatched end tag: ignored (error recovery).
