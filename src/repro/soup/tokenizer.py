"""An HTML tokenizer producing a flat token stream.

The tokenizer is deliberately forgiving (real-world HTML is messy):
unknown entities pass through verbatim, stray ``<`` become text, and
attribute values may be single-quoted, double-quoted or bare.
``<script>`` and ``<style>`` contents are treated as raw text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Union

_RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "euro": "€",
    "pound": "£",
    "yen": "¥",
    "copy": "©",
    "shy": "­",
    "auml": "ä",
    "ouml": "ö",
    "uuml": "ü",
    "Auml": "Ä",
    "Ouml": "Ö",
    "Uuml": "Ü",
    "szlig": "ß",
    "eacute": "é",
    "egrave": "è",
    "agrave": "à",
    "ccedil": "ç",
    "aring": "å",
    "Aring": "Å",
    "oslash": "ø",
    "ntilde": "ñ",
}


@dataclass
class StartTag:
    name: str
    attrs: Dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass
class EndTag:
    name: str


@dataclass
class TextToken:
    data: str


@dataclass
class CommentToken:
    data: str


@dataclass
class DoctypeToken:
    data: str


Token = Union[StartTag, EndTag, TextToken, CommentToken, DoctypeToken]


def decode_entities(text: str) -> str:
    """Replace HTML entities with their characters (forgiving)."""
    if "&" not in text:
        return text
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        semi = text.find(";", i + 1, i + 12)
        if semi < 0:
            out.append(ch)
            i += 1
            continue
        body = text[i + 1:semi]
        if body.startswith("#"):
            try:
                code = int(body[2:], 16) if body[1:2] in ("x", "X") else int(body[1:])
                out.append(chr(code))
                i = semi + 1
                continue
            except (ValueError, OverflowError):
                pass
        elif body in _ENTITIES:
            out.append(_ENTITIES[body])
            i = semi + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def tokenize(html: str) -> Iterator[Token]:
    """Tokenize *html* into a stream of tokens."""
    i = 0
    n = len(html)
    raw_until: str = ""  # closing tag name while inside script/style
    while i < n:
        if raw_until:
            close = html.lower().find(f"</{raw_until}", i)
            if close < 0:
                if i < n:
                    yield TextToken(html[i:])
                return
            if close > i:
                yield TextToken(html[i:close])
            end = html.find(">", close)
            yield EndTag(raw_until)
            i = (end + 1) if end >= 0 else n
            raw_until = ""
            continue
        lt = html.find("<", i)
        if lt < 0:
            yield TextToken(decode_entities(html[i:]))
            return
        if lt > i:
            yield TextToken(decode_entities(html[i:lt]))
        if html.startswith("<!--", lt):
            close = html.find("-->", lt + 4)
            if close < 0:
                yield CommentToken(html[lt + 4:])
                return
            yield CommentToken(html[lt + 4:close])
            i = close + 3
            continue
        if html.startswith("<!", lt):
            close = html.find(">", lt)
            if close < 0:
                yield TextToken(html[lt:])
                return
            yield DoctypeToken(html[lt + 2:close].strip())
            i = close + 1
            continue
        if html.startswith("</", lt):
            close = html.find(">", lt)
            if close < 0:
                yield TextToken(html[lt:])
                return
            name = html[lt + 2:close].strip().lower()
            if name:
                yield EndTag(name)
            i = close + 1
            continue
        tag, next_i = _read_start_tag(html, lt)
        if tag is None:
            yield TextToken("<")
            i = lt + 1
            continue
        yield tag
        i = next_i
        if tag.name in _RAW_TEXT_ELEMENTS and not tag.self_closing:
            raw_until = tag.name
    return


def _read_start_tag(html: str, lt: int):
    """Parse a start tag at *lt*; returns (StartTag|None, next_index)."""
    n = len(html)
    i = lt + 1
    start = i
    while i < n and (html[i].isalnum() or html[i] in "-_"):
        i += 1
    if i == start:
        return None, lt + 1
    name = html[start:i].lower()
    attrs: Dict[str, str] = {}
    self_closing = False
    while i < n:
        while i < n and html[i].isspace():
            i += 1
        if i >= n:
            break
        if html[i] == ">":
            i += 1
            return StartTag(name, attrs, self_closing), i
        if html.startswith("/>", i):
            self_closing = True
            i += 2
            return StartTag(name, attrs, self_closing), i
        if html[i] == "/":
            i += 1
            continue
        attr_start = i
        while i < n and html[i] not in "=/> \t\r\n":
            i += 1
        attr_name = html[attr_start:i].lower()
        while i < n and html[i].isspace():
            i += 1
        value = ""
        if i < n and html[i] == "=":
            i += 1
            while i < n and html[i].isspace():
                i += 1
            if i < n and html[i] in "'\"":
                quote = html[i]
                end = html.find(quote, i + 1)
                if end < 0:
                    value = html[i + 1:]
                    i = n
                else:
                    value = html[i + 1:end]
                    i = end + 1
            else:
                value_start = i
                while i < n and html[i] not in "/> \t\r\n":
                    i += 1
                value = html[value_start:i]
        if attr_name:
            attrs[attr_name] = decode_entities(value)
    return StartTag(name, attrs, self_closing), n
