"""``Soup`` — a BeautifulSoup-like facade over :mod:`repro.dom` trees.

The cookiewall classifier (paper §3) runs word searches over the text
of banner subtrees; this API mirrors the BeautifulSoup calls used
there: ``find``, ``find_all``, ``get_text`` and CSS ``select``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.dom.node import Element, Node, Text
from repro.dom.selector import query_selector_all
from repro.soup.parser import parse_document

_AttrFilter = Dict[str, Union[str, bool, Callable[[Optional[str]], bool]]]


class Soup:
    """Wraps a DOM node with BeautifulSoup-flavoured search methods."""

    def __init__(self, node: Node) -> None:
        self.node = node

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_html(cls, html: str, url: str = "about:blank") -> "Soup":
        return cls(parse_document(html, url=url))

    # ------------------------------------------------------------------
    # Searching
    # ------------------------------------------------------------------
    def find_all(
        self,
        name: Optional[Union[str, List[str]]] = None,
        attrs: Optional[_AttrFilter] = None,
        string: Optional[Union[str, Callable[[str], bool]]] = None,
        class_: Optional[str] = None,
        limit: Optional[int] = None,
        *,
        pierce: bool = True,
    ) -> List["Soup"]:
        """All matching descendant elements.

        Unlike browser selectors, ``pierce=True`` (default) descends
        into shadow roots and iframes — BeautifulSoup operates on the
        serialised page source, which contains those subtrees.
        """
        out: List[Soup] = []
        for element in self._iter_elements(pierce=pierce):
            if not _matches(element, name, attrs, string, class_):
                continue
            out.append(Soup(element))
            if limit is not None and len(out) >= limit:
                break
        return out

    def find(
        self,
        name: Optional[Union[str, List[str]]] = None,
        attrs: Optional[_AttrFilter] = None,
        string: Optional[Union[str, Callable[[str], bool]]] = None,
        class_: Optional[str] = None,
        *,
        pierce: bool = True,
    ) -> Optional["Soup"]:
        """First matching descendant element, or None."""
        results = self.find_all(
            name, attrs, string, class_, limit=1, pierce=pierce
        )
        return results[0] if results else None

    def select(self, selector: str) -> List["Soup"]:
        """CSS selection (does not pierce shadow/frames, like browsers)."""
        return [Soup(el) for el in query_selector_all(self.node, selector)]

    # ------------------------------------------------------------------
    # Text access
    # ------------------------------------------------------------------
    def get_text(self, separator: str = " ", strip: bool = True) -> str:
        """The node's text, piercing shadow roots and iframes."""
        parts: List[str] = []
        for node in self.node.descendants(include_shadow=True, include_frames=True):
            if isinstance(node, Text):
                data = node.data.strip() if strip else node.data
                if data:
                    parts.append(data)
        return separator.join(parts)

    @property
    def text(self) -> str:
        return self.get_text()

    # ------------------------------------------------------------------
    # Attribute access (mapping-style, like BeautifulSoup tags)
    # ------------------------------------------------------------------
    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        if isinstance(self.node, Element):
            value = self.node.get_attribute(name)
            return value if value is not None else default
        return default

    def __getitem__(self, name: str) -> str:
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    @property
    def tag_name(self) -> Optional[str]:
        return self.node.tag if isinstance(self.node, Element) else None

    @property
    def attrs(self) -> Dict[str, str]:
        return dict(self.node.attrs) if isinstance(self.node, Element) else {}

    # ------------------------------------------------------------------
    def _iter_elements(self, pierce: bool) -> Iterator[Element]:
        for node in self.node.descendants(
            include_shadow=pierce, include_frames=pierce
        ):
            if isinstance(node, Element):
                yield node

    def __repr__(self) -> str:
        return f"Soup({self.node!r})"


def make_soup(source: Union[str, Node, "Soup"]) -> Soup:
    """Coerce HTML text / DOM node / Soup into a :class:`Soup`."""
    if isinstance(source, Soup):
        return source
    if isinstance(source, str):
        return Soup.from_html(source)
    if isinstance(source, Node):
        return Soup(source)
    raise TypeError(f"cannot make soup from {type(source).__name__}")


def _matches(
    element: Element,
    name: Optional[Union[str, List[str]]],
    attrs: Optional[_AttrFilter],
    string: Optional[Union[str, Callable[[str], bool]]],
    class_: Optional[str],
) -> bool:
    if name is not None:
        names = [name] if isinstance(name, str) else list(name)
        if element.tag not in [n.lower() for n in names]:
            return False
    if class_ is not None and class_ not in element.classes:
        return False
    if attrs:
        for key, expected in attrs.items():
            actual = element.get_attribute(key)
            if expected is True:
                if actual is None:
                    return False
            elif callable(expected):
                if not expected(actual):
                    return False
            elif actual != expected:
                return False
    if string is not None:
        text = element.text_content(pierce=True)
        if callable(string):
            if not string(text):
                return False
        elif string not in text:
            return False
    return True
