"""A parsed-document cache: clone a pristine parse instead of re-tokenizing.

The synthetic web renders a site's HTML deterministically from visitor
state, so the same (body, url) pair shows up over and over — across the
eight vantage points of a detection crawl, across the five repeats of a
cookie/uBlock measurement, and across longitudinal waves.  Tokenizing
and tree-building that HTML again on every visit is the single biggest
per-visit cost; deep-cloning an already parsed tree is several times
cheaper and gives each visit a private, freely mutable DOM.

Keys are ``(sha256(body), url)``: the URL participates because the
parser stamps it on the produced :class:`~repro.dom.Document` (and on
``about:srcdoc`` frames nested inside), so the same markup served for
two different pages must not share a cache entry.

The cached master copy is parsed once and never handed out — every hit
returns ``master.clone(deep=True)``, so no caller can corrupt the
cache.  Entries are evicted LRU with a bounded size; the cache is
lock-protected because parallel crawl workers share it.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Tuple

from repro.dom.node import Document
from repro.lru import LockedLRU
from repro.soup.parser import parse_document


class DocumentCache:
    """Bounded LRU of pristine parsed documents, keyed by (body hash, url)."""

    def __init__(self, max_entries: int = 8192) -> None:
        self._entries: LockedLRU = LockedLRU(max_entries)
        self._stats_lock = threading.Lock()
        #: Cache statistics (for benchmarks and diagnostics).
        self.hits = 0
        self.misses = 0

    def parse(self, html: str, url: str = "about:blank") -> Document:
        """Parse *html* (or clone the cached parse) into a private tree."""
        key: Tuple[str, str] = (
            hashlib.sha256(html.encode("utf-8")).hexdigest(), url
        )
        master = self._entries.get(key)
        if master is None:
            master = parse_document(html, url=url)
            self._entries.put(key, master)
            with self._stats_lock:
                self.misses += 1
        else:
            with self._stats_lock:
                self.hits += 1
        return master.clone(deep=True)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache the browser uses by default.  Shared across
#: browsers on purpose: parallel crawl workers visiting the same site
#: population all profit from one another's parses.  The default size
#: comfortably holds a mid-scale world's site population; multi-VP
#: crawls iterate VP-major over the whole target list, so a cache
#: smaller than the target count would evict every entry right before
#: the next vantage point needs it.
shared_document_cache = DocumentCache()
