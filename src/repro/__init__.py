"""repro — reproduction of "Thou Shalt Not Reject" (IMC 2023).

A self-contained implementation of the paper's cookiewall measurement
system: a synthetic web substrate (DOM with shadow roots and iframes,
HTML parser, HTTP cookies, browser, ad-blocker, tracker ecosystem,
Subscription Management Platforms) plus the extended BannerClick
detector, the multi-vantage-point crawl harness, and the analysis code
that regenerates every table and figure of the paper.

Quickstart
----------
>>> from repro import build_world, Crawler
>>> world = build_world(scale=0.02, seed=7)      # small demo web
>>> crawler = Crawler(world)

See ``examples/quickstart.py`` for a complete tour.
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    # Re-exported lazily below.
    "build_world",
    "World",
    "WorldConfig",
    "Crawler",
    "BannerClick",
    "VANTAGE_POINTS",
    "run_experiment",
    "EXPERIMENTS",
    "RunSpec",
    "Session",
    "RunResult",
]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the high-level API without import cycles."""
    if name in ("build_world", "World", "WorldConfig"):
        from repro.webgen import world as _world

        return getattr(_world, name)
    if name == "Crawler":
        from repro.measure.crawl import Crawler

        return Crawler
    if name == "BannerClick":
        from repro.bannerclick import BannerClick

        return BannerClick
    if name == "VANTAGE_POINTS":
        from repro.vantage import VANTAGE_POINTS

        return VANTAGE_POINTS
    if name in ("run_experiment", "EXPERIMENTS"):
        from repro.experiments import runner as _runner

        return getattr(_runner, name)
    if name in ("RunSpec", "Session", "RunResult"):
        from repro import api as _api

        return getattr(_api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
