"""Tracking-cookie classification via a justdomains-style blocklist."""

from repro.blocklists.justdomains import JustDomainsList, builtin_list

__all__ = ["JustDomainsList", "builtin_list"]
