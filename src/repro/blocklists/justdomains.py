"""The justdomains DOMAIN-ONLY blocklist model (paper §4.3).

The paper classifies a cookie as a *tracking cookie* when its domain
matches an entry of the justdomains list.  This module reproduces that
classification: a :class:`JustDomainsList` holds bare domains; a cookie
matches when its domain equals a listed domain or is a subdomain of
one — the same semantics DOMAIN-ONLY filter lists use.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from repro import thirdparty
from repro.httpkit import Cookie


class JustDomainsList:
    """A domain-only blocklist with subdomain-inclusive matching."""

    def __init__(self, domains: Iterable[str] = ()) -> None:
        self._domains: Set[str] = set()
        for domain in domains:
            self.add(domain)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, domain: str) -> None:
        domain = domain.strip().lower().lstrip(".")
        if domain:
            self._domains.add(domain)

    def update(self, domains: Iterable[str]) -> None:
        for domain in domains:
            self.add(domain)

    @classmethod
    def from_text(cls, text: str) -> "JustDomainsList":
        """Parse the on-disk list format (one domain per line, # comments)."""
        instance = cls()
        for line in text.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                instance.add(line)
        return instance

    def to_text(self) -> str:
        header = "# DOMAIN-ONLY tracking filter list (repro)\n"
        return header + "\n".join(sorted(self._domains)) + "\n"

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches_domain(self, domain: str) -> bool:
        """True when *domain* (or a parent of it) is listed."""
        domain = domain.lower().lstrip(".").rstrip(".")
        while domain:
            if domain in self._domains:
                return True
            _, dot, rest = domain.partition(".")
            if not dot:
                return False
            domain = rest
        return False

    def is_tracking_cookie(self, cookie: Cookie) -> bool:
        """The paper's classification: cookie domain is on the list."""
        return self.matches_domain(cookie.domain)

    def count_tracking(self, cookies: Iterable[Cookie]) -> int:
        return sum(1 for c in cookies if self.is_tracking_cookie(c))

    # ------------------------------------------------------------------
    def __contains__(self, domain: object) -> bool:
        return isinstance(domain, str) and self.matches_domain(domain)

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._domains))


def builtin_list(extra: Optional[Iterable[str]] = None) -> JustDomainsList:
    """The list used throughout the reproduction.

    Contains every tracking-classified third party of the synthetic
    web's ecosystem (:mod:`repro.thirdparty`) — the same relationship
    the real justdomains list has to the real tracking ecosystem.
    """
    instance = JustDomainsList(thirdparty.tracking_domains())
    if extra:
        instance.update(extra)
    return instance
