"""Subscription price extraction and normalisation (paper §4.2).

The paper manually inspected each cookiewall to determine the
subscription price, then normalised to € per month.  This package
automates the same step: parse the rendered offer text for an
amount/currency/period, convert with a fixed FX table, and normalise
by billing period.
"""

from repro.pricing.currency import (
    FX_RATES_PER_EUR,
    format_amount,
    to_eur_cents,
)
from repro.pricing.extract import ExtractedPrice, extract_price

__all__ = [
    "FX_RATES_PER_EUR",
    "to_eur_cents",
    "format_amount",
    "ExtractedPrice",
    "extract_price",
]
