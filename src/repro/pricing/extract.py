"""Price extraction from cookiewall/offer text (paper §4.2).

Recognises the amount/currency formats real walls use (and the ones in
the paper's pattern list: ``$3.99``, ``3.99$``, ``3.99 $``, currency
words), detects the billing period from multilingual period phrases,
and normalises everything to **EUR cents per month**.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.pricing.currency import to_eur_cents

#: Currency token → ISO code, ordered by specificity (longest first).
_CURRENCY_TOKENS: Tuple[Tuple[str, str], ...] = (
    ("AU$", "AUD"), ("R$", "BRL"), ("CHF", "CHF"), ("CNY", "CNY"),
    ("EUR", "EUR"), ("USD", "USD"), ("GBP", "GBP"), ("AUD", "AUD"),
    ("ZAR", "ZAR"), ("SEK", "SEK"), ("Rs", "INR"), ("kr", "SEK"),
    ("€", "EUR"), ("$", "USD"), ("£", "GBP"),
)

_AMOUNT = r"(\d{1,4}(?:[.,]\d{2})?)"


def _token_pattern() -> str:
    return "|".join(re.escape(token) for token, _ in _CURRENCY_TOKENS)


_PRE_RE = re.compile(rf"({_token_pattern()})\s*{_AMOUNT}")
_POST_RE = re.compile(rf"{_AMOUNT}\s*({_token_pattern()})")

_YEAR_WORDS = (
    "im jahr", "pro jahr", "jährlich", "per year", "/year", "yearly",
    "a year", "all'anno", "par an", "al año", "per jaar", "om året",
    "per annum",
)
_MONTH_WORDS = (
    "im monat", "pro monat", "monatlich", "per month", "/month",
    "monthly", "a month", "al mese", "par mois", "al mes", "per maand",
    "om måneden", "mtl",
)


@dataclass(frozen=True)
class ExtractedPrice:
    """A price found in offer text, normalised to €/month."""

    amount_cents: int        # as displayed, in the displayed currency
    currency: str
    period: str              # "month" or "year"
    monthly_eur_cents: int   # normalised

    @property
    def monthly_eur(self) -> float:
        return self.monthly_eur_cents / 100.0

    @property
    def price_bucket(self) -> int:
        """The Figure 2 bucket: bucket *b* covers ((b−1) €, b €]."""
        return max((self.monthly_eur_cents + 99) // 100, 1)


def _parse_amount(text: str) -> int:
    """'2,99' / '2.99' / '3' → cents."""
    text = text.strip()
    if "," in text and text.rsplit(",", 1)[-1].isdigit() \
            and len(text.rsplit(",", 1)[-1]) == 2:
        units, cents = text.rsplit(",", 1)
        return int(units) * 100 + int(cents)
    if "." in text and len(text.rsplit(".", 1)[-1]) == 2:
        units, cents = text.rsplit(".", 1)
        return int(units) * 100 + int(cents)
    return int(re.sub(r"\D", "", text) or 0) * 100


def _lookup_currency(token: str) -> str:
    for known, code in _CURRENCY_TOKENS:
        if known == token:
            return code
    raise KeyError(token)


def _detect_period(text: str) -> str:
    lowered = text.lower()
    best_period = "month"
    best_pos: Optional[int] = None
    for words, period in ((_YEAR_WORDS, "year"), (_MONTH_WORDS, "month")):
        for word in words:
            pos = lowered.find(word)
            if pos >= 0 and (best_pos is None or pos < best_pos):
                best_pos = pos
                best_period = period
    return best_period


def extract_price(text: str) -> Optional[ExtractedPrice]:
    """Find the first price mention in *text*, or None.

    >>> extract_price("das Pur-Abo für nur 2,99 € im Monat").monthly_eur
    2.99
    >>> extract_price("subscribe for $38.99 per year").monthly_eur_cents
    300
    """
    if not text:
        return None
    pre = _PRE_RE.search(text)
    post = _POST_RE.search(text)
    match = None
    amount_text = ""
    token = ""
    if pre is not None and (post is None or pre.start() <= post.start()):
        match, token, amount_text = pre, pre.group(1), pre.group(2)
    elif post is not None:
        match, amount_text, token = post, post.group(1), post.group(2)
    if match is None:
        return None
    amount_cents = _parse_amount(amount_text)
    if amount_cents <= 0:
        return None
    currency = _lookup_currency(token)
    period = _detect_period(text)
    eur_cents = to_eur_cents(amount_cents, currency)
    if period == "year":
        monthly = int(round(eur_cents / 12.0))
    else:
        monthly = eur_cents
    return ExtractedPrice(
        amount_cents=amount_cents,
        currency=currency,
        period=period,
        monthly_eur_cents=monthly,
    )
