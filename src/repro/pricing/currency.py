"""Currency conversion and locale-aware price formatting.

The FX table is fixed (mid-2023 rates, matching the paper's 3 € ≈
3.25 USD conversion) so that formatting and extraction invert exactly.
"""

from __future__ import annotations

from typing import Dict

#: Units of currency per 1 EUR.
FX_RATES_PER_EUR: Dict[str, float] = {
    "EUR": 1.0,
    "USD": 1.0833,
    "GBP": 0.87,
    "CHF": 0.97,
    "AUD": 1.63,
    "BRL": 5.40,
    "INR": 90.0,
    "CNY": 7.80,
    "ZAR": 20.0,
    "SEK": 11.30,
}

#: How each currency is customarily rendered in banner copy.
_SYMBOLS: Dict[str, str] = {
    "EUR": "€",
    "USD": "$",
    "GBP": "£",
    "CHF": "CHF",
    "AUD": "AU$",
    "BRL": "R$",
    "INR": "Rs",
    "CNY": "CNY",
    "ZAR": "R",
    "SEK": "kr",
}


def convert_from_eur_cents(eur_cents: int, currency: str) -> int:
    """EUR cents → target-currency cents (rounded)."""
    rate = FX_RATES_PER_EUR[currency]
    return int(round(eur_cents * rate))


def to_eur_cents(amount_cents: int, currency: str) -> int:
    """Target-currency cents → EUR cents (rounded)."""
    rate = FX_RATES_PER_EUR[currency]
    return int(round(amount_cents / rate))


def format_amount(amount_cents: int, currency: str, *, locale: str = "en") -> str:
    """Render an amount the way banner copy does.

    German-style locales use a decimal comma and trailing symbol
    ("2,99 €"); English-style ones a leading symbol ("$3.25").
    """
    units, cents = divmod(amount_cents, 100)
    symbol = _SYMBOLS[currency]
    if locale in ("de", "fr", "it", "es", "nl", "da", "sv", "pt"):
        number = f"{units},{cents:02d}"
        return f"{number} {symbol}"
    number = f"{units}.{cents:02d}"
    if symbol in ("CHF", "Rs", "CNY", "kr"):
        return f"{symbol} {number}"
    return f"{symbol}{number}"
