"""A simplified IAB TCF v2 transparency & consent string codec.

Real TC strings are base64url-encoded bitfields carrying the CMP id,
the consent timestamp, purpose consents, and vendor consents.  This
codec keeps that structure (header + purposes bitfield + vendor range)
in a compact, deterministic format::

    2.<cmp_id>.<purposes-bits>.<vendor-ids>.<signal>

encoded with base64url.  It is intentionally *not* wire-compatible
with the IAB format, but exercises the same encode/decode pipeline a
consent auditor needs.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import FrozenSet, List

from repro.errors import ParseError

#: TCF v2 declares ten standard purposes.
NUM_PURPOSES = 10

#: Purposes granted by a blanket "accept all" click.
ALL_PURPOSES: FrozenSet[int] = frozenset(range(1, NUM_PURPOSES + 1))


@dataclass(frozen=True)
class ConsentRecord:
    """A decoded consent state."""

    cmp_id: int
    purposes: FrozenSet[int] = field(default_factory=frozenset)
    vendors: FrozenSet[int] = field(default_factory=frozenset)
    signal: str = "accept"   # accept | reject

    @property
    def is_blanket_accept(self) -> bool:
        return self.signal == "accept" and self.purposes == ALL_PURPOSES

    @property
    def is_reject(self) -> bool:
        return self.signal == "reject"

    def allows_purpose(self, purpose: int) -> bool:
        return purpose in self.purposes


def _purposes_bits(purposes: FrozenSet[int]) -> str:
    return "".join(
        "1" if p in purposes else "0" for p in range(1, NUM_PURPOSES + 1)
    )


def encode_tc_string(record: ConsentRecord) -> str:
    """Encode a :class:`ConsentRecord` into a TC-style string."""
    if not 0 <= record.cmp_id <= 9999:
        raise ParseError(f"cmp_id out of range: {record.cmp_id}")
    if any(p < 1 or p > NUM_PURPOSES for p in record.purposes):
        raise ParseError("purpose ids must be within 1..10")
    if record.signal not in ("accept", "reject"):
        raise ParseError(f"unknown consent signal {record.signal!r}")
    vendors = ",".join(str(v) for v in sorted(record.vendors))
    raw = ".".join(
        [
            "2",
            str(record.cmp_id),
            _purposes_bits(record.purposes),
            vendors,
            record.signal,
        ]
    )
    return base64.urlsafe_b64encode(raw.encode("ascii")).decode("ascii").rstrip("=")


def decode_tc_string(token: str) -> ConsentRecord:
    """Decode a TC-style string; raises :class:`ParseError` when invalid."""
    if not token:
        raise ParseError("empty consent string")
    padding = "=" * (-len(token) % 4)
    try:
        raw = base64.urlsafe_b64decode(token + padding).decode("ascii")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ParseError(f"undecodable consent string: {exc}") from exc
    parts = raw.split(".")
    if len(parts) != 5 or parts[0] != "2":
        raise ParseError(f"malformed consent payload: {raw!r}")
    _, cmp_text, bits, vendor_text, signal = parts
    if not cmp_text.isdigit():
        raise ParseError(f"bad cmp id {cmp_text!r}")
    if len(bits) != NUM_PURPOSES or set(bits) - {"0", "1"}:
        raise ParseError(f"bad purposes bitfield {bits!r}")
    if signal not in ("accept", "reject"):
        raise ParseError(f"bad signal {signal!r}")
    purposes = frozenset(
        i + 1 for i, bit in enumerate(bits) if bit == "1"
    )
    vendors: List[int] = []
    if vendor_text:
        for piece in vendor_text.split(","):
            if not piece.isdigit():
                raise ParseError(f"bad vendor id {piece!r}")
            vendors.append(int(piece))
    return ConsentRecord(
        cmp_id=int(cmp_text),
        purposes=purposes,
        vendors=frozenset(vendors),
        signal=signal,
    )


def accept_all_string(cmp_id: int, vendors: FrozenSet[int] = frozenset()) -> str:
    """The string a blanket accept click produces."""
    return encode_tc_string(
        ConsentRecord(cmp_id=cmp_id, purposes=ALL_PURPOSES,
                      vendors=vendors, signal="accept")
    )


def reject_all_string(cmp_id: int) -> str:
    """The string a reject-all click produces (no purposes granted)."""
    return encode_tc_string(
        ConsentRecord(cmp_id=cmp_id, purposes=frozenset(), signal="reject")
    )
