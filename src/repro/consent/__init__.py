"""Consent-string handling (IAB TCF-style).

Real CMP accept buttons persist consent as a TCF string in a cookie
(``euconsent-v2``); BannerClick's ecosystem checks those cookies.  This
package provides a simplified-but-structural TC string codec and the
glue that writes one on accept clicks.
"""

from repro.consent.tcf import ConsentRecord, decode_tc_string, encode_tc_string

__all__ = ["ConsentRecord", "encode_tc_string", "decode_tc_string"]
