"""The worker side of the wire: ``repro-cookiewalls worker serve``.

A worker dials the coordinator, introduces itself, installs the
run-constant shared state the coordinator sends once, and then runs
each received shard bundle through the exact same
:func:`~repro.measure.engine._run_shard_bundle` the process pool uses
in-process — the wire adds framing, never a second execution path, so
a shard computes the same bytes no matter which transport carried it.

While a bundle runs, a sidecar thread heartbeats the coordinator so a
long shard is distinguishable from a dead worker; the coordinator's
lease only expires on silence.  The worker exits when the coordinator
closes the connection (the run is complete) — a crash simply drops the
socket, which the coordinator converts into a re-dispatch.
"""

from __future__ import annotations

import base64
import os
import pickle
import socket
import threading
from typing import Optional

from repro.distributed.wire import (
    WireBundle,
    WireHeartbeat,
    WireHello,
    WireResult,
    WireShared,
    read_frame,
    write_frame,
)
from repro.errors import WireProtocolError


def _install_shared(message: WireShared) -> None:
    """Decode the shared blob and install it for ``_run_shard_bundle``."""
    from repro.measure.engine import _init_worker_shared

    try:
        shared = pickle.loads(base64.b64decode(message.blob.encode("ascii")))
    except Exception as error:
        raise WireProtocolError(
            f"shared state blob does not unpickle: {error}"
        ) from error
    if not isinstance(shared, dict):
        raise WireProtocolError(
            "shared state blob is not the run-constant dict"
        )
    _init_worker_shared(shared)


class _Heartbeat:
    """Send a heartbeat frame for *shard* every *interval* seconds.

    Socket writes are serialized with the result write through *lock*,
    so a heartbeat can never tear the result frame.
    """

    def __init__(self, wfile, lock: threading.Lock, shard: int,
                 interval: float) -> None:
        self._wfile = wfile
        self._lock = lock
        self._shard = shard
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    write_frame(self._wfile, WireHeartbeat(shard=self._shard))
            except OSError:
                return  # the coordinator went away; the main loop notices

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()


def serve_worker(
    host: str,
    port: int,
    *,
    worker_id: Optional[str] = None,
    heartbeat_interval: float = 1.0,
) -> int:
    """Serve shard bundles from the coordinator at ``host:port``.

    Blocks until the coordinator closes the connection; returns the
    number of shards served.  Protocol violations raise
    :class:`~repro.errors.WireProtocolError` (the coordinator treats
    the dropped connection as a lost worker and re-dispatches).
    """
    shards_served = 0
    name = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    with socket.create_connection((host, port)) as conn:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        write_lock = threading.Lock()
        write_frame(wfile, WireHello(worker=name, pid=os.getpid()))
        while True:
            message = read_frame(rfile)
            if message is None:
                break
            if isinstance(message, WireShared):
                _install_shared(message)
                continue
            if not isinstance(message, WireBundle):
                raise WireProtocolError(
                    f"worker expected a bundle, got "
                    f"{type(message).__name__}"
                )
            from repro.measure.engine import _run_shard_bundle

            with _Heartbeat(
                wfile, write_lock, message.shard, heartbeat_interval
            ):
                payload = _run_shard_bundle(message.to_bundle())
            with write_lock:
                write_frame(wfile, WireResult.from_payload(payload))
            shards_served += 1
    return shards_served
