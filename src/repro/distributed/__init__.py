"""repro.distributed — the shard-bundle wire plane.

The process backend already reduces a shard to a transport-agnostic
bundle (world key + task tuples + per-task visit-id seeds + breaker
snapshots) and gets canonically serialized record lines back.  This
package ships that exact contract over a socket work queue:

- :mod:`repro.distributed.wire` — the JSON-framed message protocol
  (one JSON object per line) and its typed message dataclasses.
- :mod:`repro.distributed.worker` — the worker side: ``repro-cookiewalls
  worker serve --connect HOST:PORT`` dials the coordinator, receives
  the run-constant shared state once, then runs
  :func:`~repro.measure.engine._run_shard_bundle` per bundle behind
  the wire, heartbeating while it works.
- :mod:`repro.distributed.executor` — :class:`DistributedExecutor`,
  the coordinator: a listening socket, a lease per dispatched bundle,
  re-dispatch of shards whose worker died (or went silent past its
  lease), and transport-degraded records when a bundle exhausts its
  re-dispatch budget — record counts always equal the plan size.

Determinism contract: bundles are pure functions of the plan, so a
shard re-run by a different worker (or re-dispatched after a kill)
produces the same bytes — the merged spool stays byte-identical to
the serial backend.
"""

from repro.distributed.executor import (
    DistributedExecutor,
    FaultInjectingDistributedExecutor,
)
from repro.distributed.wire import (
    WIRE_PROTOCOL_VERSION,
    WireBundle,
    WireHeartbeat,
    WireHello,
    WireResult,
    WireShared,
    decode_message,
    read_frame,
    write_frame,
)
from repro.distributed.worker import serve_worker

__all__ = [
    "DistributedExecutor",
    "FaultInjectingDistributedExecutor",
    "WIRE_PROTOCOL_VERSION",
    "WireBundle",
    "WireHeartbeat",
    "WireHello",
    "WireResult",
    "WireShared",
    "decode_message",
    "read_frame",
    "serve_worker",
    "write_frame",
]
