"""The coordinator side of the wire: :class:`DistributedExecutor`.

``EngineSpec.executor="distributed"`` plugs this executor into the
engine's existing bundle path (``uses_processes`` contract): the
engine builds the same picklable shard bundles it ships to the process
pool, and this executor serializes them as JSON frames to workers that
connected over a socket work queue.

Resilience model, riding the existing plane:

- **Heartbeats** — a working worker beats every ``heartbeat_interval``
  seconds; silence is the only thing that expires a lease.
- **Leases** — every dispatched bundle carries a deadline; a worker
  gone silent past ``lease_timeout`` has its connection closed and the
  shard re-queued.
- **Re-dispatch** — a lost worker (dropped socket, expired lease) or a
  malformed reply re-queues the bundle, up to ``max_dispatches`` total
  attempts.  Bundles are pure functions of the plan, so a re-run shard
  produces identical bytes and the merged spool stays byte-identical
  to the serial backend.
- **Transport degradation** — a bundle that exhausts its budget (and
  any undecodable record inside an otherwise valid reply) degrades to
  structured records with a :class:`~repro.errors.TransportError`-
  family error name (taxonomy category ``transport``), never a silent
  drop: record counts always equal the plan size.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import queue
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.distributed.wire import (
    WIRE_PROTOCOL_VERSION,
    WireBundle,
    WireHeartbeat,
    WireHello,
    WireResult,
    WireShared,
    read_frame,
    write_frame,
)
from repro.errors import TransportError, WireProtocolError, WorkerLostError
from repro.measure.engine import Executor


class _BundleState:
    """One shard bundle's dispatch bookkeeping."""

    __slots__ = ("bundle", "wire", "dispatches", "last_error")

    def __init__(self, bundle: Dict) -> None:
        self.bundle = bundle
        self.wire = WireBundle.from_bundle(bundle)
        self.dispatches = 0
        self.last_error = "WorkerLostError"


class DistributedExecutor(Executor):
    """Runs shard bundles on socket-connected worker processes.

    Parameters
    ----------
    workers:
        Local worker processes to spawn (each runs the real
        ``repro-cookiewalls worker serve`` CLI verb against this
        coordinator).  ``0`` spawns none and waits for external
        workers to dial ``host:port``.
    host, port:
        The work-queue listening address; port ``0`` picks an
        ephemeral port (:attr:`address` exposes the bound address
        while a run is live — CLI-started workers connect to it).
    lease_timeout:
        Real seconds of *silence* (no heartbeat, no result) after
        which a dispatched shard's lease expires and the shard is
        re-queued.
    heartbeat_interval:
        Heartbeat period passed to spawned workers.
    max_dispatches:
        Total dispatch attempts per bundle before its tasks degrade
        to transport records.
    connect_timeout:
        Real seconds to wait for the first worker (and, with no live
        worker, for a replacement) before failing the run with
        :class:`~repro.errors.WorkerLostError`.
    """

    uses_processes = True

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        heartbeat_interval: float = 1.0,
        max_dispatches: int = 3,
        connect_timeout: float = 30.0,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = external workers)")
        if max_dispatches < 1:
            raise ValueError("max_dispatches must be >= 1")
        self.workers = workers
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.max_dispatches = max_dispatches
        self.connect_timeout = connect_timeout
        #: ``(host, port)`` of the live work queue (None when idle).
        self.address: Optional[tuple] = None
        self._reset_run_state()

    # -- engine hooks --------------------------------------------------
    def bundle_overrides(self, shard_id: int, task_count: int) -> Dict:
        """Extra bundle keys for *shard_id* (the fault-injection hook)."""
        return {}

    def redispatch_bundle(self, bundle: Dict) -> Dict:
        """The bundle to send on a re-dispatch (hook for fault tests)."""
        return dict(bundle)

    # -- run state -----------------------------------------------------
    def _reset_run_state(self) -> None:
        self._cond = threading.Condition()
        self._pending: deque = deque()
        self._inflight: Dict[int, List] = {}  # key -> [state, deadline]
        self._completed: set = set()
        self._results: "queue.Queue[Dict]" = queue.Queue()
        self._finished = threading.Event()
        self._live_workers = 0
        self._last_live = time.monotonic()
        self._connections: List[socket.socket] = []
        self._procs: List[subprocess.Popen] = []

    # -- public entry point -------------------------------------------
    def run_bundles(
        self,
        bundles: List[Dict],
        on_shard: Callable[[Dict], None],
        shared: Dict[str, object],
    ) -> None:
        """Dispatch *bundles* over the wire; absorb payloads in order
        of completion via *on_shard* (the engine's absorb callback runs
        on the calling thread, exactly like the process pool path)."""
        if not bundles:
            return
        blob = self._encode_shared(shared)
        self._reset_run_state()
        for bundle in bundles:
            self._pending.append(_BundleState(bundle))
        remaining = {bundle["shard"] for bundle in bundles}
        listener = socket.create_server((self.host, self.port))
        self.address = listener.getsockname()[:2]
        self._last_live = time.monotonic()
        accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener, blob), daemon=True
        )
        accept_thread.start()
        self._spawn_workers()
        try:
            while remaining:
                try:
                    payload = self._results.get(timeout=0.2)
                except queue.Empty:
                    self._check_liveness(bool(remaining))
                    continue
                shard = payload["shard"]
                with self._cond:
                    if shard in self._completed:
                        continue  # re-dispatch raced a slow original
                    self._completed.add(shard)
                remaining.discard(shard)
                on_shard(self._sanitize_payload(payload))
        finally:
            self.address = None
            self._finished.set()
            with self._cond:
                self._cond.notify_all()
            try:
                listener.close()
            except OSError:
                pass
            self._shutdown_workers()

    # -- shared state --------------------------------------------------
    @staticmethod
    def _encode_shared(shared: Dict[str, object]) -> str:
        try:
            return base64.b64encode(pickle.dumps(shared)).decode("ascii")
        except Exception as error:
            raise TransportError(
                "the distributed backend ships the run-constant shared "
                "state (detectors, retry policy, plan context) as a "
                f"pickle inside the wire frame, and it does not pickle: "
                f"{error}"
            ) from error

    # -- worker processes ----------------------------------------------
    def _spawn_workers(self) -> None:
        if not self.workers:
            return
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        host, port = self.address
        command = [
            sys.executable, "-m", "repro.cli", "worker", "serve",
            "--connect", f"{host}:{port}",
            "--heartbeat", str(self.heartbeat_interval),
        ]
        for _ in range(self.workers):
            self._procs.append(subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            ))

    def _shutdown_workers(self) -> None:
        for conn in list(self._connections):
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def _check_liveness(self, work_remains: bool) -> None:
        """Fail fast when no worker can ever drain the queue."""
        if not work_remains:
            return
        now = time.monotonic()
        with self._cond:
            if self._live_workers > 0:
                self._expire_leases(now)
                return
        spawned_all_dead = self._procs and all(
            proc.poll() is not None for proc in self._procs
        )
        waited = now - self._last_live
        if spawned_all_dead or waited > self.connect_timeout:
            self._finished.set()
            raise WorkerLostError(
                "the distributed work queue has no live workers "
                f"({'all spawned workers exited' if spawned_all_dead else f'none connected for {waited:.0f}s'}); "
                "completed shards are checkpointed — rerun with resume"
            )

    def _expire_leases(self, now: float) -> None:
        """Re-queue shards whose worker went silent past its lease.

        Called with ``self._cond`` held.  The connection itself is torn
        down by its handler when the re-run result dedupes it, or by
        shutdown — a silent worker holding a dead socket costs nothing.
        """
        for key, entry in list(self._inflight.items()):
            state, deadline = entry
            if now > deadline:
                del self._inflight[key]
                self._requeue_locked(state, "WorkerLostError")

    # -- the work queue ------------------------------------------------
    def _claim(self) -> Optional[_BundleState]:
        with self._cond:
            while True:
                if self._finished.is_set():
                    return None
                if self._pending:
                    state = self._pending.popleft()
                    state.dispatches += 1
                    return state
                self._cond.wait(0.2)

    def _requeue_locked(self, state: _BundleState, error: str) -> None:
        """Strike *state* and re-queue (or degrade) it.  Lock held."""
        shard = state.bundle["shard"]
        state.last_error = error
        if shard in self._completed:
            return  # another dispatch already delivered this shard
        if any(s is state for s in self._pending):
            return  # already re-queued (lease expiry raced the EOF)
        if state.dispatches >= self.max_dispatches:
            self._results.put(self._degraded_payload(state))
            return
        state.bundle = self.redispatch_bundle(state.bundle)
        state.wire = WireBundle.from_bundle(state.bundle)
        self._pending.append(state)
        self._cond.notify_all()

    def _requeue(self, state: _BundleState, error: str) -> None:
        with self._cond:
            self._requeue_locked(state, error)

    # -- transport degradation (taxonomy category "transport") ---------
    def _degraded_payload(self, state: _BundleState) -> Dict:
        """A synthetic shard payload: every task degraded, none dropped."""
        from repro.measure.engine import CrawlTask
        from repro.measure.storage import encode_record_line
        from repro.resilience.degrade import degraded_record

        outcomes = []
        for index, vp, domain, mode, repeats in state.bundle["tasks"]:
            task = CrawlTask(vp=vp, domain=domain, mode=mode, repeats=repeats)
            outcomes.append({
                "index": index,
                "attempts": 0,
                "error": state.last_error,
                "record": encode_record_line(
                    degraded_record(task, state.last_error)
                ),
            })
        return {
            "shard": state.bundle["shard"],
            "pid": 0,
            "elapsed": 0.0,
            "outcomes": outcomes,
            "retries": [],
            "breakers": {},
            "breaker_events": [],
        }

    def _sanitize_payload(self, payload: Dict) -> Dict:
        """Degrade any undecodable record line inside a valid reply.

        The coordinator splices worker record lines into spools and
        checkpoints without a typed decode, so a corrupt line would
        poison the merged output far from its cause.  One structural
        parse here converts it into a transport-degraded record at the
        boundary instead.
        """
        from repro.measure.engine import CrawlTask
        from repro.measure.storage import encode_record_line, validate_record_payload
        from repro.resilience.degrade import degraded_record

        tasks = {
            entry[0]: entry
            for entry in payload.get("_wire_tasks", ())
        }
        for outcome in payload["outcomes"]:
            line = outcome.get("record")
            if line is None:
                continue
            try:
                parsed = json.loads(line)
                validate_record_payload(parsed)
            except (ValueError, TypeError):
                entry = tasks.get(outcome["index"])
                if entry is None:
                    # No task context (should not happen: the wire
                    # result was validated against its bundle) — drop
                    # the record but keep the structured error.
                    outcome["record"] = None
                    outcome["error"] = "WireProtocolError"
                    continue
                _, vp, domain, mode, repeats = entry
                task = CrawlTask(
                    vp=vp, domain=domain, mode=mode, repeats=repeats
                )
                outcome["record"] = encode_record_line(
                    degraded_record(task, "WireProtocolError")
                )
                outcome["error"] = "WireProtocolError"
        payload.pop("_wire_tasks", None)
        return payload

    # -- connection handling -------------------------------------------
    def _accept_loop(self, listener: socket.socket, blob: str) -> None:
        while not self._finished.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: run over
            self._connections.append(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn, blob),
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket, blob: str) -> None:
        key = id(conn)
        state: Optional[_BundleState] = None
        try:
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            hello = read_frame(rfile)
            if not isinstance(hello, WireHello):
                raise WireProtocolError("worker did not introduce itself")
            if hello.protocol != WIRE_PROTOCOL_VERSION:
                raise WireProtocolError(
                    f"worker speaks wire protocol {hello.protocol}, "
                    f"coordinator speaks {WIRE_PROTOCOL_VERSION}"
                )
            write_frame(wfile, WireShared(blob=blob))
            with self._cond:
                self._live_workers += 1
                self._last_live = time.monotonic()
            try:
                while True:
                    state = self._claim()
                    if state is None:
                        return
                    with self._cond:
                        self._inflight[key] = [
                            state, time.monotonic() + self.lease_timeout
                        ]
                    write_frame(wfile, state.wire)
                    delivered = self._pump_until_result(rfile, key, state)
                    # Either way the pump settled this bundle (result
                    # delivered, or strike recorded) — the cleanup
                    # below must not strike it a second time.
                    state = None
                    if not delivered:
                        return
            finally:
                with self._cond:
                    self._live_workers -= 1
                    if self._live_workers > 0:
                        self._last_live = time.monotonic()
        except (OSError, WireProtocolError, ValueError):
            pass
        finally:
            with self._cond:
                entry = self._inflight.pop(key, None)
                if entry is not None:
                    self._requeue_locked(entry[0], "WorkerLostError")
                elif state is not None and not self._finished.is_set():
                    # Claimed but never recorded in-flight (send failed).
                    self._requeue_locked(state, "WorkerLostError")
            try:
                conn.close()
            except OSError:
                pass

    def _pump_until_result(
        self, rfile, key: int, state: _BundleState
    ) -> bool:
        """Read frames until *state*'s result lands; False ends the
        connection (worker lost or protocol violation — the shard is
        re-queued by the caller's cleanup or here)."""
        while True:
            try:
                message = read_frame(rfile)
            except WireProtocolError:
                self._finish_inflight(key, "WireProtocolError")
                return False
            if message is None:  # EOF: the worker died mid-shard
                self._finish_inflight(key, "WorkerLostError")
                return False
            if isinstance(message, WireHeartbeat):
                with self._cond:
                    entry = self._inflight.get(key)
                    if entry is not None:
                        entry[1] = time.monotonic() + self.lease_timeout
                continue
            if not isinstance(message, WireResult):
                self._finish_inflight(key, "WireProtocolError")
                return False
            try:
                message.validate_against(state.wire)
            except WireProtocolError:
                self._finish_inflight(key, "WireProtocolError")
                return False
            with self._cond:
                self._inflight.pop(key, None)
            payload = message.to_payload()
            # Task context rides along so undecodable records can be
            # degraded (not dropped) by the absorbing thread.
            payload["_wire_tasks"] = state.bundle["tasks"]
            self._results.put(payload)
            return True

    def _finish_inflight(self, key: int, error: str) -> None:
        with self._cond:
            entry = self._inflight.pop(key, None)
            if entry is not None:
                self._requeue_locked(entry[0], error)


class FaultInjectingDistributedExecutor(DistributedExecutor):
    """Chaos harness: the chosen shards' *first* worker SIGKILLs itself
    mid-shard (via the bundle's ``kill_after`` hook, exactly like
    :class:`~repro.measure.engine.FaultInjectingProcessExecutor`); the
    re-dispatched bundle runs clean, modelling a worker lost to the
    environment rather than a poisoned shard.  Used by the kill/
    re-dispatch tests; never the default.
    """

    def __init__(self, workers: int, kill_shards, **kwargs) -> None:
        super().__init__(workers, **kwargs)
        self.kill_shards = set(kill_shards)

    def bundle_overrides(self, shard_id: int, task_count: int) -> Dict:
        if shard_id in self.kill_shards:
            return {"kill_after": task_count // 2}
        return {}

    def redispatch_bundle(self, bundle: Dict) -> Dict:
        bundle = dict(bundle)
        bundle.pop("kill_after", None)
        return bundle
