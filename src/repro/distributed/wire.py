"""The JSON-framed wire protocol between coordinator and workers.

One frame is one JSON object on one ``\\n``-terminated line — the same
append-friendly framing the spools and checkpoints use, so a captured
session is greppable and a torn connection can never leave a half-read
frame ambiguous.  Every frame carries a ``type`` tag naming one of the
message dataclasses below; unknown tags and malformed frames raise
:class:`~repro.errors.WireProtocolError`, which the coordinator
converts into re-dispatch (and, past the budget, into structured
transport-degraded records) rather than a silent drop.

The message dataclasses are deliberately primitive-only (ints, floats,
strings, tuples, dicts of the same): they are part of the
``bundle-pickle-safety`` reprolint surface, and the shard bundle they
carry must survive ``dataclass -> JSON -> dataclass`` without losing
the byte-identity of the records computed from it.  The one opaque
field is :attr:`WireShared.blob` — the run-constant shared state
(detector instances, retry policy) crosses as a base64 pickle inside
the JSON frame, exactly the payload the process pool's initializer
ships in-process.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import WireProtocolError

#: Version tag exchanged in the hello; a mismatch is refused up front
#: (a worker from another release must not silently compute different
#: bytes).
WIRE_PROTOCOL_VERSION = 1

#: Upper bound for one frame (a shard of records comes back as one
#: result frame; 128 MiB is ~3 orders of magnitude above the largest
#: shard the benchmarks produce).
MAX_FRAME_BYTES = 128 * 1024 * 1024


@dataclass(frozen=True)
class WireHello:
    """Worker -> coordinator, once per connection."""

    worker: str
    pid: int
    protocol: int = WIRE_PROTOCOL_VERSION


@dataclass(frozen=True)
class WireShared:
    """Coordinator -> worker, once per connection, before any bundle.

    ``blob`` is the base64-encoded pickle of the run-constant shared
    dict (world key, latency, detectors, retry policy, plan context) —
    the exact payload :func:`repro.measure.engine._init_worker_shared`
    installs for the in-process pool.
    """

    blob: str


@dataclass(frozen=True)
class WireBundle:
    """Coordinator -> worker: one shard of work.

    Mirrors the engine's picklable shard bundle
    (:meth:`repro.measure.engine.CrawlEngine._run_process_shards`)
    field for field; :meth:`from_bundle`/:meth:`to_bundle` convert the
    parts JSON cannot hold natively (int dict keys, tuples).
    """

    shard: int
    #: ``(index, vp, domain, mode, repeats)`` per task, plan order.
    tasks: Tuple[Tuple, ...]
    #: ``(index, id_base)`` pairs (JSON object keys must be strings,
    #: so the mapping travels as pairs instead).
    id_bases: Tuple[Tuple[int, int], ...]
    #: Per-domain breaker snapshots entering the shard.
    breakers: Optional[Dict[str, Dict]] = None
    #: Fault-injection hook: die after this many tasks (tests only).
    kill_after: Optional[int] = None

    @classmethod
    def from_bundle(cls, bundle: Dict) -> "WireBundle":
        return cls(
            shard=bundle["shard"],
            tasks=tuple(tuple(entry) for entry in bundle["tasks"]),
            id_bases=tuple(sorted(bundle["id_bases"].items())),
            breakers=bundle.get("breakers") or None,
            kill_after=bundle.get("kill_after"),
        )

    def to_bundle(self) -> Dict:
        """The engine-shaped bundle dict ``_run_shard_bundle`` consumes."""
        bundle: Dict = {
            "shard": self.shard,
            "tasks": [tuple(entry) for entry in self.tasks],
            "id_bases": {
                int(index): int(base) for index, base in self.id_bases
            },
            "breakers": dict(self.breakers) if self.breakers else {},
        }
        if self.kill_after is not None:
            bundle["kill_after"] = self.kill_after
        return bundle


@dataclass(frozen=True)
class WireHeartbeat:
    """Worker -> coordinator while a bundle runs: extend the lease."""

    shard: int


@dataclass(frozen=True)
class WireResult:
    """Worker -> coordinator: one completed shard's payload.

    The fields are exactly the mapping
    :func:`repro.measure.engine._run_shard_bundle` returns — records
    are the worker's canonically serialized JSONL lines, passed through
    to spools and checkpoints without a decode.
    """

    shard: int
    pid: int
    elapsed: float
    outcomes: Tuple[Dict, ...]
    retries: Tuple[Dict, ...] = ()
    breakers: Optional[Dict[str, Dict]] = None
    breaker_events: Tuple[Dict, ...] = ()

    @classmethod
    def from_payload(cls, payload: Dict) -> "WireResult":
        return cls(
            shard=payload["shard"],
            pid=payload["pid"],
            elapsed=payload["elapsed"],
            outcomes=tuple(payload["outcomes"]),
            retries=tuple(payload.get("retries", ())),
            breakers=payload.get("breakers") or None,
            breaker_events=tuple(payload.get("breaker_events", ())),
        )

    def to_payload(self) -> Dict:
        """The engine-shaped payload ``_absorb_process_shard`` consumes."""
        return {
            "shard": self.shard,
            "pid": self.pid,
            "elapsed": self.elapsed,
            "outcomes": list(self.outcomes),
            "retries": list(self.retries),
            "breakers": dict(self.breakers) if self.breakers else {},
            "breaker_events": list(self.breaker_events),
        }

    def validate_against(self, bundle: "WireBundle") -> None:
        """Structural check: the reply must cover the bundle exactly.

        A reply whose outcomes drop, duplicate, or invent task indices
        would silently desynchronise the merge from the plan; raise
        :class:`WireProtocolError` instead and let the coordinator's
        re-dispatch/degrade machinery handle it.
        """
        if self.shard != bundle.shard:
            raise WireProtocolError(
                f"result names shard {self.shard}, expected {bundle.shard}"
            )
        expected = [entry[0] for entry in bundle.tasks]
        got = []
        for entry in self.outcomes:
            if not isinstance(entry, dict):
                raise WireProtocolError(
                    f"shard {self.shard}: outcome is not an object"
                )
            index = entry.get("index")
            record = entry.get("record")
            if record is not None and not isinstance(record, str):
                raise WireProtocolError(
                    f"shard {self.shard}: outcome {index}: record is "
                    "neither null nor a serialized line"
                )
            got.append(index)
        if sorted(got, key=repr) != sorted(expected, key=repr):
            raise WireProtocolError(
                f"shard {self.shard}: reply covers indices {sorted(got, key=repr)!r}, "
                f"bundle holds {sorted(expected, key=repr)!r}"
            )


#: ``type`` tag -> message class (the wire's dispatch table).
MESSAGE_TYPES = {
    "hello": WireHello,
    "shared": WireShared,
    "bundle": WireBundle,
    "heartbeat": WireHeartbeat,
    "result": WireResult,
}
_TYPE_TAGS = {cls: tag for tag, cls in MESSAGE_TYPES.items()}


def encode_message(message) -> bytes:
    """One message as one JSON frame (``\\n``-terminated bytes)."""
    tag = _TYPE_TAGS.get(type(message))
    if tag is None:
        raise WireProtocolError(
            f"cannot encode {type(message).__name__} as a wire frame"
        )
    body = dataclasses.asdict(message)
    body["type"] = tag
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes):
    """Parse one frame back into its message dataclass.

    Every malformation — bad UTF-8, bad JSON, a non-object, an unknown
    or missing ``type``, unexpected fields — raises
    :class:`WireProtocolError` with the offending detail.
    """
    try:
        body = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(body, dict):
        raise WireProtocolError(
            f"frame must be a JSON object, got {type(body).__name__}"
        )
    tag = body.pop("type", None)
    cls = MESSAGE_TYPES.get(tag)
    if cls is None:
        raise WireProtocolError(f"unknown frame type {tag!r}")
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(body) - known)
    if unknown:
        raise WireProtocolError(
            f"frame {tag!r} carries unknown field(s) {', '.join(unknown)}"
        )
    try:
        message = cls(**body)
    except TypeError as error:
        raise WireProtocolError(f"frame {tag!r}: {error}") from error
    # JSON has no tuples; restore the dataclass field shapes so
    # message equality (and validate_against) behaves.
    for field in dataclasses.fields(cls):
        value = getattr(message, field.name)
        if isinstance(value, list):
            object.__setattr__(
                message, field.name,
                tuple(tuple(v) if isinstance(v, list) else v for v in value),
            )
    return message


def write_frame(wfile, message) -> None:
    """Write one message frame to a binary file-like and flush."""
    wfile.write(encode_message(message))
    wfile.flush()


def read_frame(rfile):
    """Read one frame; ``None`` on EOF (orderly close).

    Raises :class:`WireProtocolError` for an overlong or truncated
    frame (a line without its terminator is a torn write, never a
    message).
    """
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame exceeds {MAX_FRAME_BYTES} bytes"
        )
    if not line.endswith(b"\n"):
        raise WireProtocolError("truncated frame (no terminator)")
    return decode_message(line)
