"""Streaming failure taxonomy: what degraded, where, and how badly.

The resilience plane never loses a task — unrecoverable visits yield
deterministic partial records carrying the error name that killed them
(``flags["degraded"]`` on detection records, ``error`` on every record
type).  This module folds a record stream into the failure-taxonomy
table: counts per vantage point × error class, each classified
transient/permanent through :func:`repro.errors.error_category`, with
state bounded by the number of distinct ``(vp, error)`` pairs, never
the stream length — the same contract as the other streaming
aggregators in this package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import error_category


class StreamingFailureTaxonomy:
    """One pass over any record stream → the failure-taxonomy table.

    Accepts every record type the engine produces (detection visits,
    cookie measurements, uBlock records): anything exposing an
    ``error`` attribute counts as degraded when it is non-None.
    Records without a vantage point (uBlock) fold under ``"-"``.

    >>> from repro.measure.records import VisitRecord
    >>> tax = StreamingFailureTaxonomy()
    >>> _ = tax.add(VisitRecord(vp="DE", domain="a.com", reachable=True))
    >>> _ = tax.add(VisitRecord(vp="DE", domain="b.com", reachable=False,
    ...                         error="TimeoutError"))
    >>> tax.degraded, tax.total
    (1, 2)
    >>> tax.rows()[0]["category"]
    'transient'
    """

    def __init__(self) -> None:
        self.total = 0
        self.degraded = 0
        #: (vp, error name) -> count, insertion-ordered by first sight.
        self._counts: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # The single pass
    # ------------------------------------------------------------------
    def add(
        self, record, *, wave: Optional[int] = None
    ) -> "StreamingFailureTaxonomy":
        self.total += 1
        error = getattr(record, "error", None)
        if error is None:
            return self
        self.degraded += 1
        vp = getattr(record, "vp", None) or "-"
        if wave is not None:
            vp = f"{vp}/wave-{wave:02d}"
        key = (vp, str(error))
        self._counts[key] = self._counts.get(key, 0) + 1
        return self

    def consume(self, records: Iterable) -> "StreamingFailureTaxonomy":
        for record in records:
            self.add(record)
        return self

    # ------------------------------------------------------------------
    # Finalisers
    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """Table rows sorted by count desc, then (vp, error) for ties."""
        rows = [
            {
                "vp": vp,
                "error": error,
                "category": error_category(error),
                "count": count,
            }
            for (vp, error), count in self._counts.items()
        ]
        rows.sort(key=lambda r: (-r["count"], r["vp"], r["error"]))
        return rows

    def by_category(self) -> Dict[str, int]:
        """Degraded-record counts folded to transient/permanent/unknown."""
        out: Dict[str, int] = {}
        for (_, error), count in self._counts.items():
            category = error_category(error)
            out[category] = out.get(category, 0) + count
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "degraded": self.degraded,
            "by_category": self.by_category(),
            "rows": self.rows(),
        }

    def render(self) -> str:
        """The taxonomy as an ASCII table (empty stream included)."""
        lines = [
            "Failure taxonomy "
            f"({self.degraded}/{self.total} records degraded)",
            f"{'vp':<14} {'error':<24} {'class':<10} {'count':>6}",
        ]
        lines.append("-" * len(lines[1]))
        for row in self.rows():
            lines.append(
                f"{row['vp']:<14} {row['error']:<24} "
                f"{row['category']:<10} {row['count']:>6}"
            )
        if not self._counts:
            lines.append("(no degraded records)")
        return "\n".join(lines)
