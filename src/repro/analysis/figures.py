"""Figures 1–6: data computation plus ASCII rendering.

Every figure is produced from *measured* inputs (detection records,
extracted prices, cookie measurements) — ground truth is never read
during analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.stats import ecdf_at, mean, median, pearson
from repro.categorize import WebFilterDB
from repro.measure.records import CookieMeasurement, VisitRecord
from repro.pricing import extract_price
from repro.urlkit import public_suffix


def _bar(fraction: float, width: int = 30) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


# ---------------------------------------------------------------------------
# Figure 1 — categories of cookiewall websites
# ---------------------------------------------------------------------------

@dataclass
class Figure1:
    """Category shares among detected cookiewall sites."""

    shares: List[Tuple[str, float]] = field(default_factory=list)
    total_sites: int = 0

    def share_of(self, category: str) -> float:
        for name, share in self.shares:
            if name == category:
                return share
        return 0.0

    def render(self) -> str:
        lines = ["Figure 1: categories of websites showing cookiewalls"]
        for name, share in self.shares:
            lines.append(f"{name:<28}{share * 100:6.1f}%  {_bar(share)}")
        return "\n".join(lines)


def compute_fig1(
    wall_domains: Sequence[str], category_db: WebFilterDB
) -> Figure1:
    counts: Dict[str, int] = {}
    for domain in wall_domains:
        category = category_db.lookup(domain)
        counts[category] = counts.get(category, 0) + 1
    total = max(len(wall_domains), 1)
    shares = sorted(
        ((name, count / total) for name, count in counts.items()),
        key=lambda item: item[1],
        reverse=True,
    )
    return Figure1(shares=shares, total_sites=len(wall_domains))


# ---------------------------------------------------------------------------
# Figure 2 — price distribution: TLD×bucket heatmap + ECDF
# ---------------------------------------------------------------------------

@dataclass
class PriceRecord:
    domain: str
    tld: str
    monthly_eur_cents: int

    @property
    def bucket(self) -> int:
        return max((self.monthly_eur_cents + 99) // 100, 1)

    @property
    def monthly_eur(self) -> float:
        return self.monthly_eur_cents / 100.0


@dataclass
class Figure2:
    records: List[PriceRecord] = field(default_factory=list)
    unparsed_domains: List[str] = field(default_factory=list)

    def add_visit(self, record: VisitRecord) -> None:
        """Fold one wall record in (price extraction + normalisation).

        Both :func:`compute_fig2` and the streaming analysis pass feed
        records through this single entry point, so the two paths
        produce identical figures by construction.
        """
        price = extract_price(record.banner_text)
        if price is None:
            self.unparsed_domains.append(record.domain)
            return
        tld = public_suffix(record.domain) or "?"
        self.records.append(
            PriceRecord(
                domain=record.domain,
                tld=tld,
                monthly_eur_cents=price.monthly_eur_cents,
            )
        )

    @property
    def heatmap(self) -> Dict[str, Dict[int, int]]:
        out: Dict[str, Dict[int, int]] = {}
        for record in self.records:
            row = out.setdefault(record.tld, {})
            row[record.bucket] = row.get(record.bucket, 0) + 1
        return out

    def fraction_at_most(self, euros: float) -> float:
        return ecdf_at([r.monthly_eur for r in self.records], euros)

    def modal_bucket(self) -> int:
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.bucket] = counts.get(record.bucket, 0) + 1
        return max(counts, key=lambda b: counts[b])

    def render(self) -> str:
        heat = self.heatmap
        buckets = list(range(1, 11))
        lines = ["Figure 2: monthly subscription price distribution (EUR)"]
        header = "TLD    " + "".join(f"{b:>5}" for b in buckets)
        lines.append(header)
        for tld in sorted(heat, key=lambda t: -sum(heat[t].values())):
            row = heat[tld]
            cells = "".join(
                f"{row.get(b, ''):>5}" if row.get(b) else f"{'':>5}"
                for b in buckets
            )
            lines.append(f"{tld:<7}" + cells)
        lines.append("")
        lines.append("ECDF:")
        for euros in (1, 2, 3, 4, 5, 9, 10):
            frac = self.fraction_at_most(euros)
            lines.append(f"  <= {euros:>2} EUR: {frac * 100:5.1f}%  {_bar(frac)}")
        return "\n".join(lines)


def compute_fig2(wall_records: Iterable[VisitRecord]) -> Figure2:
    """Extract and normalise prices from detected wall banner text.

    *wall_records* may be any iterable (including a one-shot record
    stream): it is consumed exactly once.
    """
    figure = Figure2()
    for record in wall_records:
        figure.add_visit(record)
    return figure


# ---------------------------------------------------------------------------
# Figure 3 — category vs price
# ---------------------------------------------------------------------------

@dataclass
class Figure3:
    #: category -> list of monthly prices (EUR)
    by_category: Dict[str, List[float]] = field(default_factory=dict)

    def mean_price(self, category: str) -> float:
        return mean(self.by_category[category])

    def render(self) -> str:
        lines = ["Figure 3: website category vs subscription price"]
        for category in sorted(
            self.by_category, key=lambda c: -len(self.by_category[c])
        ):
            prices = self.by_category[category]
            lines.append(
                f"{category:<28} n={len(prices):>3}  "
                f"mean={mean(prices):5.2f} EUR  median={median(prices):5.2f} EUR"
            )
        return "\n".join(lines)


def compute_fig3(figure2: Figure2, category_db: WebFilterDB) -> Figure3:
    figure = Figure3()
    for record in figure2.records:
        category = category_db.lookup(record.domain)
        figure.by_category.setdefault(category, []).append(record.monthly_eur)
    return figure


# ---------------------------------------------------------------------------
# Figures 4 & 5 — cookie count comparisons
# ---------------------------------------------------------------------------

@dataclass
class CookieComparison:
    """Median (and distribution) comparison of two measurement groups."""

    title: str
    label_a: str
    label_b: str
    group_a: List[CookieMeasurement] = field(default_factory=list)
    group_b: List[CookieMeasurement] = field(default_factory=list)

    def medians(self, group: str) -> Tuple[float, float, float]:
        items = self.group_a if group == "a" else self.group_b
        return (
            median([m.avg_first_party for m in items]),
            median([m.avg_third_party for m in items]),
            median([m.avg_tracking for m in items]),
        )

    def ratio(self, metric: str) -> float:
        index = {"first_party": 0, "third_party": 1, "tracking": 2}[metric]
        a = self.medians("a")[index]
        b = self.medians("b")[index]
        if a == 0:
            return float("inf") if b > 0 else 1.0
        return b / a

    def max_tracking(self, group: str) -> float:
        items = self.group_a if group == "a" else self.group_b
        return max((m.avg_tracking for m in items), default=0.0)

    def render(self) -> str:
        lines = [self.title]
        header = (
            f"{'':<26}{'First-party':>12}{'Third-party':>13}{'Tracking':>10}"
        )
        lines.append(header)
        for label, group in ((self.label_a, "a"), (self.label_b, "b")):
            fp, tp, tr = self.medians(group)
            lines.append(f"{label:<26}{fp:>12.1f}{tp:>13.1f}{tr:>10.1f}")
        return "\n".join(lines)

    def render_distribution(self) -> str:
        """Box plots per metric (the paper's figures are box plots)."""
        from repro.analysis.render import ascii_boxplot

        sections = [self.render(), ""]
        for metric, attribute in (
            ("first-party", "avg_first_party"),
            ("third-party", "avg_third_party"),
            ("tracking", "avg_tracking"),
        ):
            groups = {
                self.label_a: [getattr(m, attribute) for m in self.group_a],
                self.label_b: [getattr(m, attribute) for m in self.group_b],
            }
            if not any(groups.values()):
                continue
            sections.append(f"{metric} cookies (log scale):")
            sections.append(ascii_boxplot(groups, log_scale=True))
            sections.append("")
        return "\n".join(sections).rstrip()


def compute_fig4(
    regular: Sequence[CookieMeasurement], walls: Sequence[CookieMeasurement]
) -> CookieComparison:
    return CookieComparison(
        title="Figure 4: average cookies — regular banners vs cookiewalls "
              "(median of per-site 5-visit averages)",
        label_a="Regular cookie banner",
        label_b="Cookiewall",
        group_a=list(regular),
        group_b=list(walls),
    )


def compute_fig5(
    accept: Sequence[CookieMeasurement],
    subscription: Sequence[CookieMeasurement],
) -> CookieComparison:
    return CookieComparison(
        title="Figure 5: contentpass partners — accept vs subscription "
              "(median of per-site 5-visit averages)",
        label_a="Accept",
        label_b="Subscription",
        group_a=list(accept),
        group_b=list(subscription),
    )


# ---------------------------------------------------------------------------
# Figure 6 — tracking cookies vs price correlation
# ---------------------------------------------------------------------------

@dataclass
class Figure6:
    points: List[Tuple[float, float]] = field(default_factory=list)  # (tracking, price)

    @property
    def correlation(self) -> float:
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        if len(xs) < 2:
            return 0.0
        return pearson(xs, ys)

    def render(self) -> str:
        lines = [
            "Figure 6: tracking cookies vs subscription price",
            f"n = {len(self.points)} sites, "
            f"Pearson r = {self.correlation:+.3f}",
        ]
        return "\n".join(lines)

    def render_scatter(self) -> str:
        from repro.analysis.render import ascii_scatter

        if not self.points:
            return self.render()
        return self.render() + "\n" + ascii_scatter(
            self.points,
            x_label="avg tracking cookies",
            y_label="price EUR/month",
        )


def compute_fig6(
    wall_measurements: Iterable[CookieMeasurement], figure2: Figure2
) -> Figure6:
    """Join tracking-cookie counts against fig2 prices.

    *wall_measurements* is consumed in a single pass; only the joined
    (tracking, price) points — one pair per priced wall site — are
    retained, so the correlation works off a measurement *stream*.
    """
    prices = {r.domain: r.monthly_eur for r in figure2.records}
    figure = Figure6()
    for measurement in wall_measurements:
        price = prices.get(measurement.domain)
        if price is None:
            continue
        figure.points.append((measurement.avg_tracking, price))
    return figure
