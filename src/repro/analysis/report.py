"""§4.1 landscape headline statistics from a detection crawl."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.measure.crawl import CrawlResult
from repro.webgen.toplist import BUCKET_TOP1K
from repro.webgen.world import World


@dataclass
class LandscapeReport:
    """Prevalence statistics (the §4.1 'To summarize' numbers)."""

    total_targets: int = 0
    unique_walls: int = 0
    overall_rate: float = 0.0                   # paper: 0.6 %
    germany_top10k_rate: float = 0.0            # paper: 2.9 %
    germany_top1k_rate: float = 0.0             # paper: 8.5 %
    countrywise_top1k_rate: float = 0.0         # paper: 1.7 %
    placement_counts: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            "Cookiewall landscape (§4.1)",
            f"  targets crawled:            {self.total_targets}",
            f"  unique cookiewall websites: {self.unique_walls}"
            f" ({self.overall_rate * 100:.2f}%)",
            f"  Germany top-10k rate:       {self.germany_top10k_rate * 100:.2f}%",
            f"  Germany top-1k rate:        {self.germany_top1k_rate * 100:.2f}%",
            f"  country-wise top-1k rate:   {self.countrywise_top1k_rate * 100:.2f}%",
            "  banner embedding:",
        ]
        for placement, count in sorted(self.placement_counts.items()):
            lines.append(f"    {placement:<14} {count}")
        return "\n".join(lines)


def landscape_from_aggregates(
    world: World,
    wall_domains: Set[str],
    placement_counts: Dict[str, int],
) -> LandscapeReport:
    """Finalise the §4.1 report from crawl aggregates.

    *wall_domains* is the set of domains any VP detected as a
    cookiewall; *placement_counts* counts banner placements over the
    German VP's wall records.  Both :func:`compute_landscape` and the
    single-pass
    :class:`~repro.analysis.streaming.StreamingCrawlAnalysis` reduce
    to these aggregates, so their reports are identical by
    construction.
    """
    report = LandscapeReport()
    report.total_targets = len(world.crawl_targets)
    report.unique_walls = len(wall_domains)
    if report.total_targets:
        report.overall_rate = report.unique_walls / report.total_targets

    # Germany rates (reachable list members only).
    de_list = world.toplists["DE"]
    de_members = [d for d in de_list.domains() if d in world.sites
                  and world.sites[d].reachable]
    de_walls = [d for d in wall_domains if d in de_list]
    if de_members:
        report.germany_top10k_rate = len(de_walls) / len(de_members)
    de_top1k = set(de_list.domains(BUCKET_TOP1K))
    de_top1k_reachable = [d for d in de_top1k if world.sites[d].reachable]
    de_top1k_walls = [d for d in wall_domains if d in de_top1k]
    if de_top1k_reachable:
        report.germany_top1k_rate = len(de_top1k_walls) / len(de_top1k_reachable)

    # Country-wise top-1k rate: union of every country's top bucket.
    union_top1k: Set[str] = set()
    for toplist in world.toplists.values():
        union_top1k.update(toplist.domains(BUCKET_TOP1K))
    union_top1k = {
        d for d in union_top1k if d in world.sites and world.sites[d].reachable
    }
    top1k_walls = wall_domains & union_top1k
    if union_top1k:
        report.countrywise_top1k_rate = len(top1k_walls) / len(union_top1k)

    report.placement_counts = dict(placement_counts)
    return report


def compute_landscape(world: World, crawl: CrawlResult) -> LandscapeReport:
    """The list-based oracle: aggregate a materialised crawl result."""
    wall_domains: Set[str] = set(crawl.cookiewall_domains())
    # Placement mix from the German VP's detections (the most complete).
    placement_counts: Dict[str, int] = {}
    for record in crawl.cookiewalls("DE"):
        location = record.banner_location
        placement_counts[location] = placement_counts.get(location, 0) + 1
    return landscape_from_aggregates(world, wall_domains, placement_counts)
