"""Table 1: detected cookiewalls per vantage point and their splits."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.measure.crawl import CrawlResult
from repro.urlkit import public_suffix
from repro.vantage import VANTAGE_POINTS, VP_ORDER
from repro.webgen.world import World


@dataclass
class Table1Row:
    vp: str
    cookiewalls: int
    toplist: int
    cctld: int
    language: int


@dataclass
class Table1:
    rows: List[Table1Row] = field(default_factory=list)
    total_unique_walls: int = 0

    def row(self, vp: str) -> Table1Row:
        for row in self.rows:
            if row.vp == vp:
                return row
        raise KeyError(vp)

    def render(self) -> str:
        header = (
            f"{'VP':<15}{'Cookiewalls':>12}{'Toplist':>9}"
            f"{'ccTLD':>7}{'Language':>10}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            vp = VANTAGE_POINTS[row.vp]
            lines.append(
                f"{vp.city:<15}{row.cookiewalls:>12}{row.toplist:>9}"
                f"{row.cctld:>7}{row.language:>10}"
            )
        lines.append("-" * len(header))
        lines.append(f"Unique cookiewall websites: {self.total_unique_walls}")
        return "\n".join(lines)


def table1_from_aggregates(
    world: World,
    vp_wall_domains: Dict[str, Set[str]],
    vp_language_counts: Dict[str, int],
) -> Table1:
    """Finalise Table 1 from per-VP aggregates.

    *vp_wall_domains* maps VP code to the set of domains that VP
    detected as cookiewalls; *vp_language_counts* maps VP code to the
    number of that VP's wall records whose detected language matches
    the VP country's language.  Both the list-based
    :func:`compute_table1` and the single-pass
    :class:`~repro.analysis.streaming.StreamingCrawlAnalysis` reduce
    their input to exactly these aggregates, so the finished table is
    byte-identical between the two paths by construction.
    """
    table = Table1()
    all_wall_domains: Set[str] = set()
    for vp_code in VP_ORDER:
        vp = VANTAGE_POINTS[vp_code]
        domains = vp_wall_domains.get(vp_code, set())
        all_wall_domains.update(domains)
        toplist = world.toplists.get(vp.country_code)
        on_toplist = sum(1 for d in domains if toplist is not None and d in toplist)
        cctld = sum(
            1 for d in domains if public_suffix(d) == vp.cctld
        ) if vp.cctld else 0
        table.rows.append(
            Table1Row(
                vp=vp_code,
                cookiewalls=len(domains),
                toplist=on_toplist,
                cctld=cctld,
                language=vp_language_counts.get(vp_code, 0),
            )
        )
    table.total_unique_walls = len(all_wall_domains)
    return table


def compute_table1(world: World, crawl: CrawlResult) -> Table1:
    """Build Table 1 from detection records (measured, not ground truth).

    For each VP: the number of detected cookiewalls, how many of those
    are on the VP country's own toplist, how many use the country's
    ccTLD, and how many are in the country's most common language
    (per the crawl's CLD3-style detection).  This is the list-based
    differential oracle for the streaming analysis path.
    """
    vp_wall_domains: Dict[str, Set[str]] = {}
    vp_language_counts: Dict[str, int] = {}
    for vp_code in VP_ORDER:
        vp = VANTAGE_POINTS[vp_code]
        records = [r for r in crawl.by_vp(vp_code) if r.is_cookiewall]
        vp_wall_domains[vp_code] = {r.domain for r in records}
        vp_language_counts[vp_code] = sum(
            1 for r in records if r.detected_language == vp.language
        )
    return table1_from_aggregates(world, vp_wall_domains, vp_language_counts)
