"""Statistics helpers: list-based reducers and streaming aggregators.

Two families live here.  The list-based functions (:func:`mean`,
:func:`median`, :func:`quantile`, :func:`ecdf`, :func:`ecdf_at`,
:func:`pearson`) materialise their input; they are the *differential
oracles* the streaming analysis layer is tested against.  The
single-pass aggregators (:class:`OnlineStats`, :class:`StreamingECDF`,
:class:`TopK`) consume a value stream once with bounded state, so an
analysis fed from :func:`~repro.measure.storage.iter_merged_jsonl` or
:meth:`~repro.api.result.RunResult.iter_records` never holds the
record stream in memory.

Exactness contract: while :class:`StreamingECDF` stays under its
point budget (every quantile/ECDF query is answered from exact
value counts) its answers are **byte-identical** to the list-based
oracles over the same stream — the property the streaming
figure/table pipeline relies on.  Past the budget it degrades to a
bounded-memory histogram sketch (closest-pair collapse) and answers
become approximate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError


def mean(values: Iterable[float]) -> float:
    items = list(values)
    if not items:
        raise AnalysisError("mean() of empty data")
    return sum(items) / len(items)


def median(values: Iterable[float]) -> float:
    items = sorted(values)
    if not items:
        raise AnalysisError("median() of empty data")
    n = len(items)
    mid = n // 2
    if n % 2:
        return float(items[mid])
    return (items[mid - 1] + items[mid]) / 2.0


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation quantile, q in [0, 1]."""
    if not 0 <= q <= 1:
        raise AnalysisError("quantile q must be within [0, 1]")
    items = sorted(values)
    if not items:
        raise AnalysisError("quantile() of empty data")
    if len(items) == 1:
        return float(items[0])
    position = q * (len(items) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(items[low])
    fraction = position - low
    return items[low] * (1 - fraction) + items[high] * fraction


def ecdf(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    items = sorted(values)
    if not items:
        raise AnalysisError("ecdf() of empty data")
    n = len(items)
    out: List[Tuple[float, float]] = []
    for index, value in enumerate(items, start=1):
        if out and out[-1][0] == value:
            out[-1] = (value, index / n)
        else:
            out.append((value, index / n))
    return out


def ecdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    items = list(values)
    if not items:
        raise AnalysisError("ecdf_at() of empty data")
    return sum(1 for v in items if v <= threshold) / len(items)


class OnlineStats:
    """Single-pass count/mean/variance/min/max (Welford's algorithm).

    O(1) state however long the stream; mean and variance are
    numerically stable (no sum-of-squares cancellation).  ``variance``
    is the population variance, matching
    ``sum((x - mean)**2 for x in xs) / len(xs)``.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> "OnlineStats":
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        return self

    def extend(self, values: Iterable[float]) -> "OnlineStats":
        for value in values:
            self.add(value)
        return self

    @property
    def variance(self) -> float:
        if self.count == 0:
            raise AnalysisError("variance of empty OnlineStats")
        return self._m2 / self.count

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Absorb *other* (Chan's parallel-Welford combination)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


class StreamingECDF:
    """Bounded-memory empirical distribution over a value stream.

    Exact while the number of *distinct* values stays within
    ``max_points`` (the default budget comfortably covers prices,
    cookie counts, and bucket-like measurement values): every query —
    :meth:`fraction_at_most`, :meth:`quantile`, :meth:`median`,
    :meth:`ecdf` — then returns byte-for-byte what the list-based
    oracles return for the same stream, because the same
    interpolation arithmetic runs over the same value multiset.
    When the budget is exceeded the two closest points are collapsed
    (weight-merged, Ben-Haim/Tom-Tov style), turning the structure
    into an approximate histogram sketch; :attr:`exact` reports which
    regime the instance is in.
    """

    def __init__(self, max_points: int = 4096) -> None:
        if max_points < 2:
            raise AnalysisError("StreamingECDF needs max_points >= 2")
        self.max_points = max_points
        self.count = 0
        self.exact = True
        self._counts: Dict[float, int] = {}
        self._sorted: Optional[List[Tuple[float, int]]] = None

    def add(self, value: float, weight: int = 1) -> "StreamingECDF":
        value = float(value)
        self.count += weight
        self._counts[value] = self._counts.get(value, 0) + weight
        self._sorted = None
        if len(self._counts) > self.max_points:
            self._collapse_closest()
        return self

    def extend(self, values: Iterable[float]) -> "StreamingECDF":
        for value in values:
            self.add(value)
        return self

    def merge(self, other: "StreamingECDF") -> "StreamingECDF":
        for value, weight in other._counts.items():
            self.add(value, weight)
        self.exact = self.exact and other.exact
        return self

    def _collapse_closest(self) -> None:
        """Merge the two closest points into their weighted mean."""
        points = sorted(self._counts)
        gaps = (
            (points[i + 1] - points[i], i) for i in range(len(points) - 1)
        )
        _, i = min(gaps)
        a, b = points[i], points[i + 1]
        wa, wb = self._counts.pop(a), self._counts.pop(b)
        merged = (a * wa + b * wb) / (wa + wb)
        self._counts[merged] = self._counts.get(merged, 0) + wa + wb
        self.exact = False
        self._sorted = None

    def _points(self) -> List[Tuple[float, int]]:
        if self._sorted is None:
            self._sorted = sorted(self._counts.items())
        return self._sorted

    def fraction_at_most(self, threshold: float) -> float:
        """Fraction of values <= threshold (the :func:`ecdf_at` oracle)."""
        if self.count == 0:
            raise AnalysisError("fraction_at_most() of empty StreamingECDF")
        covered = sum(w for v, w in self._points() if v <= threshold)
        return covered / self.count

    def _value_at(self, position: int) -> float:
        """The value a sorted materialisation would hold at *position*."""
        seen = 0
        for value, weight in self._points():
            seen += weight
            if position < seen:
                return value
        return self._points()[-1][0]

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile (the :func:`quantile` oracle)."""
        if not 0 <= q <= 1:
            raise AnalysisError("quantile q must be within [0, 1]")
        if self.count == 0:
            raise AnalysisError("quantile() of empty StreamingECDF")
        if self.count == 1:
            return float(self._points()[0][0])
        # Identical arithmetic to stats.quantile over the sorted
        # multiset, so exact-regime answers match byte for byte.
        position = q * (self.count - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        low_value = self._value_at(low)
        if low == high:
            return float(low_value)
        high_value = self._value_at(high)
        if low_value == high_value:
            return float(low_value)
        fraction = position - low
        return low_value * (1 - fraction) + high_value * fraction

    def median(self) -> float:
        """Median via the :func:`median` oracle's midpoint arithmetic."""
        if self.count == 0:
            raise AnalysisError("median() of empty StreamingECDF")
        mid = self.count // 2
        if self.count % 2:
            return float(self._value_at(mid))
        return (self._value_at(mid - 1) + self._value_at(mid)) / 2.0

    def ecdf(self) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) steps (the :func:`ecdf` oracle)."""
        if self.count == 0:
            raise AnalysisError("ecdf() of empty StreamingECDF")
        out: List[Tuple[float, float]] = []
        seen = 0
        for value, weight in self._points():
            seen += weight
            out.append((value, seen / self.count))
        return out


class TopK:
    """Streaming frequency counter with oracle-identical ranking.

    Counts are exact (one dict entry per distinct key — bounded by the
    key domain, e.g. website categories or price buckets, never by the
    stream length).  :meth:`ranked` sorts by descending count with
    Python's stable sort, so ties keep first-seen stream order —
    exactly what the list-based figure computations produce; ``k``
    truncates the ranking.  :meth:`mode` matches ``max(counts,
    key=counts.get)``: the first-seen key among the most frequent.
    """

    def __init__(self) -> None:
        self.counts: Dict[object, int] = {}
        self.total = 0

    def add(self, key, weight: int = 1) -> "TopK":
        self.counts[key] = self.counts.get(key, 0) + weight
        self.total += weight
        return self

    def extend(self, keys: Iterable) -> "TopK":
        for key in keys:
            self.add(key)
        return self

    def ranked(self, k: Optional[int] = None) -> List[Tuple[object, int]]:
        items = sorted(self.counts.items(), key=lambda item: -item[1])
        return items if k is None else items[:k]

    def mode(self):
        if not self.counts:
            raise AnalysisError("mode() of empty TopK")
        return max(self.counts, key=lambda key: self.counts[key])

    def __len__(self) -> int:
        return len(self.counts)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate input)."""
    if len(xs) != len(ys):
        raise AnalysisError("pearson() needs equal-length sequences")
    n = len(xs)
    if n < 2:
        raise AnalysisError("pearson() needs at least two points")
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / math.sqrt(vx * vy)
