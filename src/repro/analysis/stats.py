"""Small statistics helpers (no external dependencies needed)."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.errors import AnalysisError


def mean(values: Iterable[float]) -> float:
    items = list(values)
    if not items:
        raise AnalysisError("mean() of empty data")
    return sum(items) / len(items)


def median(values: Iterable[float]) -> float:
    items = sorted(values)
    if not items:
        raise AnalysisError("median() of empty data")
    n = len(items)
    mid = n // 2
    if n % 2:
        return float(items[mid])
    return (items[mid - 1] + items[mid]) / 2.0


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation quantile, q in [0, 1]."""
    if not 0 <= q <= 1:
        raise AnalysisError("quantile q must be within [0, 1]")
    items = sorted(values)
    if not items:
        raise AnalysisError("quantile() of empty data")
    if len(items) == 1:
        return float(items[0])
    position = q * (len(items) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(items[low])
    fraction = position - low
    return items[low] * (1 - fraction) + items[high] * fraction


def ecdf(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    items = sorted(values)
    if not items:
        raise AnalysisError("ecdf() of empty data")
    n = len(items)
    out: List[Tuple[float, float]] = []
    for index, value in enumerate(items, start=1):
        if out and out[-1][0] == value:
            out[-1] = (value, index / n)
        else:
            out.append((value, index / n))
    return out


def ecdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    items = list(values)
    if not items:
        raise AnalysisError("ecdf_at() of empty data")
    return sum(1 for v in items if v <= threshold) / len(items)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate input)."""
    if len(xs) != len(ys):
        raise AnalysisError("pearson() needs equal-length sequences")
    n = len(xs)
    if n < 2:
        raise AnalysisError("pearson() needs at least two points")
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / math.sqrt(vx * vy)
