"""Data-release bundles (the paper publishes tools, data, and code).

The paper's artefact release [49] ships raw crawl records and analysis
inputs.  :func:`export_dataset` writes the equivalent bundle for a
reproduction run: crawl records, cookie measurements, uBlock records,
the toplists, the tracking list, and a manifest; :func:`load_dataset`
reads a bundle back for offline re-analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.measure.storage import load_records, save_records
from repro.webgen.crux import export_all, import_toplist
from repro.webgen.world import World

_MANIFEST = "manifest.json"


@dataclass
class Dataset:
    """An in-memory view of a released measurement bundle."""

    manifest: Dict = field(default_factory=dict)
    visit_records: List[VisitRecord] = field(default_factory=list)
    cookie_measurements: List[CookieMeasurement] = field(default_factory=list)
    ublock_records: List[UBlockRecord] = field(default_factory=list)
    toplists: Dict[str, object] = field(default_factory=dict)
    tracking_domains: List[str] = field(default_factory=list)

    def cookiewall_domains(self) -> List[str]:
        seen = []
        for record in self.visit_records:
            if record.is_cookiewall and record.domain not in seen:
                seen.append(record.domain)
        return seen


def export_dataset(
    directory: Union[str, Path],
    *,
    world: World,
    visit_records: Sequence[VisitRecord] = (),
    cookie_measurements: Sequence[CookieMeasurement] = (),
    ublock_records: Sequence[UBlockRecord] = (),
    description: str = "",
) -> Path:
    """Write a measurement bundle; returns the directory path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    save_records(visit_records, directory / "visits.jsonl")
    save_records(cookie_measurements, directory / "cookies.jsonl")
    save_records(ublock_records, directory / "ublock.jsonl")
    export_all(world.toplists, directory / "toplists")
    (directory / "justdomains.txt").write_text(
        world.tracking_list.to_text(), encoding="utf-8"
    )
    manifest = {
        "description": description,
        "seed": world.config.seed,
        "scale": world.config.scale,
        "crawl_targets": len(world.crawl_targets),
        "visit_records": len(visit_records),
        "cookie_measurements": len(cookie_measurements),
        "ublock_records": len(ublock_records),
        "files": [
            "visits.jsonl", "cookies.jsonl", "ublock.jsonl",
            "toplists/", "justdomains.txt",
        ],
    }
    (directory / _MANIFEST).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return directory


def load_dataset(directory: Union[str, Path]) -> Dataset:
    """Read a bundle written by :func:`export_dataset`."""
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text(encoding="utf-8"))
    dataset = Dataset(manifest=manifest)
    for record in load_records(directory / "visits.jsonl"):
        dataset.visit_records.append(record)
    for record in load_records(directory / "cookies.jsonl"):
        dataset.cookie_measurements.append(record)
    for record in load_records(directory / "ublock.jsonl"):
        dataset.ublock_records.append(record)
    for csv_path in sorted((directory / "toplists").glob("crux_*.csv")):
        toplist = import_toplist(csv_path)
        dataset.toplists[toplist.country] = toplist
    from repro.blocklists import JustDomainsList

    tracking = JustDomainsList.from_text(
        (directory / "justdomains.txt").read_text(encoding="utf-8")
    )
    dataset.tracking_domains = list(tracking)
    return dataset
