"""Data-release bundles (the paper publishes tools, data, and code).

The paper's artefact release [49] ships raw crawl records and analysis
inputs.  :func:`export_dataset` writes the equivalent bundle for a
reproduction run: crawl records, cookie measurements, uBlock records,
the toplists, the tracking list, and a manifest; :func:`load_dataset`
reads a bundle back for offline re-analysis — either materialised
(:class:`Dataset`) or as a streaming view (:class:`DatasetStream`,
``stream=True``) whose record accessors are single-pass iterators
reading straight from the bundle's JSONL files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from repro.measure.records import CookieMeasurement, UBlockRecord, VisitRecord
from repro.measure.storage import iter_records, save_records
from repro.webgen.crux import export_all, import_toplist
from repro.webgen.world import World

_MANIFEST = "manifest.json"


def _streamed_cookiewall_domains(records: Iterable[VisitRecord]) -> List[str]:
    """Unique cookiewall domains in first-seen order (one pass)."""
    seen = set()
    out: List[str] = []
    for record in records:
        if record.is_cookiewall and record.domain not in seen:
            seen.add(record.domain)
            out.append(record.domain)
    return out


@dataclass
class Dataset:
    """An in-memory view of a released measurement bundle."""

    manifest: Dict = field(default_factory=dict)
    visit_records: List[VisitRecord] = field(default_factory=list)
    cookie_measurements: List[CookieMeasurement] = field(default_factory=list)
    ublock_records: List[UBlockRecord] = field(default_factory=list)
    toplists: Dict[str, object] = field(default_factory=dict)
    tracking_domains: List[str] = field(default_factory=list)

    def cookiewall_domains(self) -> List[str]:
        return _streamed_cookiewall_domains(self.visit_records)


class DatasetStream:
    """A lazy view of a bundle: record accessors are fresh iterators.

    Nothing is materialised at load time beyond the manifest, the
    toplists, and the tracking list; every ``iter_*`` call opens the
    underlying JSONL file again, so repeated passes work and memory
    stays O(one record).
    """

    def __init__(
        self,
        directory: Path,
        manifest: Dict,
        toplists: Dict[str, object],
        tracking_domains: List[str],
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.toplists = toplists
        self.tracking_domains = tracking_domains

    def iter_visit_records(self) -> Iterator[VisitRecord]:
        return iter_records(self.directory / "visits.jsonl")

    def iter_cookie_measurements(self) -> Iterator[CookieMeasurement]:
        return iter_records(self.directory / "cookies.jsonl")

    def iter_ublock_records(self) -> Iterator[UBlockRecord]:
        return iter_records(self.directory / "ublock.jsonl")

    def cookiewall_domains(self) -> List[str]:
        return _streamed_cookiewall_domains(self.iter_visit_records())


def export_dataset(
    directory: Union[str, Path],
    *,
    world: World,
    visit_records: Iterable[VisitRecord] = (),
    cookie_measurements: Iterable[CookieMeasurement] = (),
    ublock_records: Iterable[UBlockRecord] = (),
    description: str = "",
) -> Path:
    """Write a measurement bundle; returns the directory path.

    The record arguments may be one-shot iterators (e.g.
    ``RunResult.iter_records()``): each is consumed exactly once by an
    appending :func:`save_records` pass, and the manifest counts come
    from the number of records actually written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    counts: Dict[str, int] = {}
    for name, records in (
        ("visits.jsonl", visit_records),
        ("cookies.jsonl", cookie_measurements),
        ("ublock.jsonl", ublock_records),
    ):
        path = directory / name
        # Fresh bundle file, then stream-append: a single pass that
        # also composes with callers appending further waves later.
        if path.exists():
            path.unlink()
        counts[name] = save_records(records, path, append=True)
    export_all(world.toplists, directory / "toplists")
    (directory / "justdomains.txt").write_text(
        world.tracking_list.to_text(), encoding="utf-8"
    )
    manifest = {
        "description": description,
        "seed": world.config.seed,
        "scale": world.config.scale,
        "crawl_targets": len(world.crawl_targets),
        "visit_records": counts["visits.jsonl"],
        "cookie_measurements": counts["cookies.jsonl"],
        "ublock_records": counts["ublock.jsonl"],
        "files": [
            "visits.jsonl", "cookies.jsonl", "ublock.jsonl",
            "toplists/", "justdomains.txt",
        ],
    }
    (directory / _MANIFEST).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return directory


def load_dataset(
    directory: Union[str, Path], *, stream: bool = False
) -> Union[Dataset, "DatasetStream"]:
    """Read a bundle written by :func:`export_dataset`.

    With ``stream=True`` the returned :class:`DatasetStream` exposes
    record *iterators* instead of materialised lists — the shape the
    streaming analysis layer consumes directly.
    """
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text(encoding="utf-8"))
    toplists: Dict[str, object] = {}
    for csv_path in sorted((directory / "toplists").glob("crux_*.csv")):
        toplist = import_toplist(csv_path)
        toplists[toplist.country] = toplist
    from repro.blocklists import JustDomainsList

    tracking = JustDomainsList.from_text(
        (directory / "justdomains.txt").read_text(encoding="utf-8")
    )
    tracking_domains = list(tracking)
    if stream:
        return DatasetStream(directory, manifest, toplists, tracking_domains)
    dataset = Dataset(
        manifest=manifest,
        toplists=toplists,
        tracking_domains=tracking_domains,
    )
    dataset.visit_records.extend(iter_records(directory / "visits.jsonl"))
    dataset.cookie_measurements.extend(iter_records(directory / "cookies.jsonl"))
    dataset.ublock_records.extend(iter_records(directory / "ublock.jsonl"))
    return dataset
