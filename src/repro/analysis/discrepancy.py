"""Streaming geo-discrepancy report for multi-vantage campaigns.

The paper's headline result is vantage-dependent: accept-or-pay walls
appear for EU vantage points and mostly vanish outside the EU.  A
multi-vantage campaign visits every domain from N vantage points over
one or more waves; this module answers *how* the vantage points
disagree, domain by domain:

- **wall presence** — walls shown at some VPs but not others, and
  walls appearing/disappearing between waves;
- **price and currency** — :func:`repro.pricing.extract_price` over
  the wall text, spread and currency mix across VPs;
- **TCF strings** — the CMP consent string a banner's accept button
  would persist, diverging or missing at some VPs;
- **third-party cookie sets** — the distinct third-party sites that
  set cookies during the visit, diverging across VPs;
- **geo-blocking** — visits refused with ``error="GeoBlocked"``.

The report is single-pass and never materialises record lists: state
is one small per-domain aggregate (cross-VP *reductions* — counters,
:class:`~repro.analysis.stats.OnlineStats`, distinct-value sets — not
per-VP values) plus per-``(wave, vp)`` counters, so peak memory is
bounded by the domain population and stays flat as vantage points are
added.  Feed it with :meth:`StreamingDiscrepancyReport.add` from any
record stream (``RunResult.iter_records``, ``iter_records`` over wave
spools); identical streams produce identical reports.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.stats import OnlineStats
from repro.pricing import extract_price
from repro.vantage import VANTAGE_POINTS, VP_ORDER

#: Example domains kept per discrepancy category (first seen wins).
_EXAMPLE_LIMIT = 5


def _cookie_digest(sites: Iterable[str]) -> str:
    """A short stable digest of a third-party cookie-site set."""
    joined = "\x00".join(sorted(sites))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:12]


class _DomainDelta:
    """Cross-VP/cross-wave aggregate for one domain (bounded state)."""

    __slots__ = (
        "visits", "visits_by_wave", "walls_by_wave", "consent_ui",
        "tcf_seen", "tcf_strings", "price", "currencies",
        "cookie_visits", "cookie_digests",
    )

    def __init__(self) -> None:
        self.visits = 0                       # reachable visits, all waves
        self.visits_by_wave: Dict[int, int] = {}
        self.walls_by_wave: Dict[int, int] = {}
        self.consent_ui = 0                   # visits showing wall or banner
        self.tcf_seen = 0                     # ... of which offered a TC string
        self.tcf_strings: Set[str] = set()
        self.price = OnlineStats()            # monthly EUR cents
        self.currencies: Set[str] = set()
        self.cookie_visits = 0                # visits with 3p cookies
        self.cookie_digests: Set[str] = set()


class StreamingDiscrepancyReport:
    """Per-domain deltas across vantage points and waves, one pass."""

    def __init__(self) -> None:
        self.record_count = 0
        self._domains: Dict[str, _DomainDelta] = {}
        self._vps: Set[str] = set()
        self._waves: Set[int] = set()
        self._visits: Dict[Tuple[int, str], int] = {}
        self._walls: Dict[Tuple[int, str], int] = {}
        self._blocked: Dict[Tuple[int, str], int] = {}
        self._unreachable: Dict[Tuple[int, str], int] = {}
        self._cookies: Dict[Tuple[int, str], OnlineStats] = {}
        self._prices: Dict[Tuple[int, str], OnlineStats] = {}

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, record, wave: int = 0) -> "StreamingDiscrepancyReport":
        """Absorb one detection record observed in *wave*."""
        if getattr(record, "is_cookiewall", None) is None:
            return self          # not a detection record (e.g. cookie run)
        self.record_count += 1
        wave = int(wave)
        vp = record.vp
        key = (wave, vp)
        self._vps.add(vp)
        self._waves.add(wave)
        if not record.reachable:
            bucket = (
                self._blocked if record.error == "GeoBlocked"
                else self._unreachable
            )
            bucket[key] = bucket.get(key, 0) + 1
            return self
        self._visits[key] = self._visits.get(key, 0) + 1
        state = self._domains.get(record.domain)
        if state is None:
            state = self._domains[record.domain] = _DomainDelta()
        state.visits += 1
        state.visits_by_wave[wave] = state.visits_by_wave.get(wave, 0) + 1
        flags = record.flags or {}
        if record.is_cookiewall:
            self._walls[key] = self._walls.get(key, 0) + 1
            state.walls_by_wave[wave] = state.walls_by_wave.get(wave, 0) + 1
            price = extract_price(record.banner_text)
            if price is not None:
                state.price.add(price.monthly_eur_cents)
                state.currencies.add(price.currency)
                stats = self._prices.get(key)
                if stats is None:
                    stats = self._prices[key] = OnlineStats()
                stats.add(price.monthly_eur_cents)
        if record.banner_found or record.is_cookiewall:
            state.consent_ui += 1
            tcf = flags.get("tcf_accept")
            if tcf:
                state.tcf_seen += 1
                state.tcf_strings.add(str(tcf))
        third_party = flags.get("cookies_third_party") or ()
        stats = self._cookies.get(key)
        if stats is None:
            stats = self._cookies[key] = OnlineStats()
        stats.add(len(third_party))
        if third_party:
            state.cookie_visits += 1
            state.cookie_digests.add(_cookie_digest(third_party))
        return self

    def consume(self, records: Iterable, wave: int = 0) -> "StreamingDiscrepancyReport":
        """Absorb a whole record stream observed in *wave*."""
        for record in records:
            self.add(record, wave=wave)
        return self

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    @property
    def vps(self) -> Tuple[str, ...]:
        """Observed vantage points, in Table-1 order."""
        order = {code: index for index, code in enumerate(VP_ORDER)}
        return tuple(sorted(self._vps, key=lambda c: (order.get(c, 99), c)))

    @property
    def waves(self) -> Tuple[int, ...]:
        return tuple(sorted(self._waves))

    def wall_counts(self, wave: int = 0) -> Dict[str, int]:
        """Wall-showing visits per vantage point in *wave*."""
        return {vp: self._walls.get((wave, vp), 0) for vp in self.vps}

    def eu_delta(self, wave: int = 0) -> Dict[str, float]:
        """The paper-style EU vs non-EU wall-presence delta for *wave*."""
        eu, non_eu = [], []
        for vp in self.vps:
            walls = self._walls.get((wave, vp), 0)
            point = VANTAGE_POINTS.get(vp)
            (eu if point is not None and point.in_eu else non_eu).append(walls)
        eu_mean = sum(eu) / len(eu) if eu else 0.0
        non_eu_mean = sum(non_eu) / len(non_eu) if non_eu else 0.0
        return {
            "eu_mean": eu_mean,
            "non_eu_mean": non_eu_mean,
            "delta": eu_mean - non_eu_mean,
        }

    def discrepancies(self) -> Dict[str, Dict[str, object]]:
        """Per-category counts of discrepant domains, with examples.

        Categories: ``wall_partial`` (wall at some VPs only within a
        wave), ``wall_drift`` (wall presence changed between waves),
        ``price_spread`` (different prices), ``currency_mix``
        (different currencies), ``tcf_divergent`` (different TC
        strings, or a consent UI that only sometimes offers one),
        ``cookie_divergent`` (different third-party cookie sets).
        """
        out: Dict[str, Dict[str, object]] = {
            name: {"domains": 0, "examples": []}
            for name in (
                "wall_partial", "wall_drift", "price_spread",
                "currency_mix", "tcf_divergent", "cookie_divergent",
            )
        }

        def hit(name: str, domain: str) -> None:
            entry = out[name]
            entry["domains"] += 1
            examples: List[str] = entry["examples"]  # type: ignore[assignment]
            if len(examples) < _EXAMPLE_LIMIT:
                examples.append(domain)

        for domain, state in self._domains.items():
            walled_waves = {
                w for w, count in state.walls_by_wave.items() if count
            }
            if any(
                0 < state.walls_by_wave.get(w, 0) < state.visits_by_wave[w]
                for w in state.visits_by_wave
            ):
                hit("wall_partial", domain)
            if walled_waves and walled_waves != set(state.visits_by_wave):
                hit("wall_drift", domain)
            if state.price.count and state.price.max > state.price.min:
                hit("price_spread", domain)
            if len(state.currencies) > 1:
                hit("currency_mix", domain)
            if len(state.tcf_strings) > 1 or (
                state.tcf_seen and state.tcf_seen < state.consent_ui
            ):
                hit("tcf_divergent", domain)
            if len(state.cookie_digests) > 1 or (
                state.cookie_digests and state.cookie_visits < state.visits
            ):
                hit("cookie_divergent", domain)
        return out

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable digest of every product."""
        waves = {}
        for wave in self.waves:
            per_vp = {}
            for vp in self.vps:
                key = (wave, vp)
                cookies = self._cookies.get(key)
                prices = self._prices.get(key)
                per_vp[vp] = {
                    "visits": self._visits.get(key, 0),
                    "walls": self._walls.get(key, 0),
                    "geo_blocked": self._blocked.get(key, 0),
                    "unreachable": self._unreachable.get(key, 0),
                    "third_party_cookies_mean": (
                        cookies.mean if cookies and cookies.count else 0.0
                    ),
                    "wall_price_eur_mean": (
                        prices.mean / 100.0
                        if prices and prices.count else None
                    ),
                }
            waves[str(wave)] = {"vps": per_vp, "eu_delta": self.eu_delta(wave)}
        return {
            "records": self.record_count,
            "domains": len(self._domains),
            "vps": list(self.vps),
            "waves": waves,
            "discrepancies": {
                name: entry["domains"]
                for name, entry in self.discrepancies().items()
            },
        }

    def render(self) -> str:
        """The report as an ASCII table (stable across runs)."""
        lines = [
            f"Geo-discrepancy report ({self.record_count} records, "
            f"{len(self._domains)} domains, {len(self._vps)} VPs, "
            f"{len(self._waves)} waves)"
        ]
        for wave in self.waves:
            lines.append("")
            lines.append(f"wave month {wave}:")
            lines.append(
                "  vp    visits  walls  blocked  3p-cookies  price EUR"
            )
            for vp in self.vps:
                key = (wave, vp)
                cookies = self._cookies.get(key)
                prices = self._prices.get(key)
                cookie_mean = (
                    f"{cookies.mean:10.2f}"
                    if cookies and cookies.count else f"{'-':>10}"
                )
                price_mean = (
                    f"{prices.mean / 100.0:9.2f}"
                    if prices and prices.count else f"{'-':>9}"
                )
                lines.append(
                    f"  {vp:<5} {self._visits.get(key, 0):6d} "
                    f"{self._walls.get(key, 0):6d} "
                    f"{self._blocked.get(key, 0):8d} "
                    f"{cookie_mean}  {price_mean}"
                )
            delta = self.eu_delta(wave)
            lines.append(
                f"  EU mean {delta['eu_mean']:.1f} vs non-EU mean "
                f"{delta['non_eu_mean']:.1f} walls "
                f"(delta {delta['delta']:+.1f})"
            )
        lines.append("")
        lines.append("per-domain discrepancies (across VPs and waves):")
        labels = {
            "wall_partial": "wall shown at some VPs only",
            "wall_drift": "wall presence drifted across waves",
            "price_spread": "price differs across VPs/waves",
            "currency_mix": "currency differs across VPs/waves",
            "tcf_divergent": "TCF string diverges or is missing",
            "cookie_divergent": "third-party cookie sets diverge",
        }
        for name, entry in self.discrepancies().items():
            examples = ", ".join(entry["examples"])
            suffix = f"  e.g. {examples}" if examples else ""
            lines.append(
                f"  {labels[name]:<38} {entry['domains']:6d}{suffix}"
            )
        return "\n".join(lines)


def build_discrepancy_report(
    wave_streams: Iterable[Tuple[int, Iterable]],
    report: Optional[StreamingDiscrepancyReport] = None,
) -> StreamingDiscrepancyReport:
    """Fold ``(wave, record stream)`` pairs into one report."""
    report = report or StreamingDiscrepancyReport()
    for wave, stream in wave_streams:
        report.consume(stream, wave=wave)
    return report
