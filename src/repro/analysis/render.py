"""ASCII rendering helpers: box plots, scatter plots, shaded heatmaps.

The paper's figures are box/scatter/heatmap plots; these helpers give
the benchmark artefacts a visual form that makes the distributions
readable in a terminal or a text file.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.stats import quantile
from repro.errors import AnalysisError

_SHADES = " .:-=+*#%@"


#: A box plot row is fully determined by its five-number summary —
#: (min, first quartile, median, third quartile, max) — which is what
#: lets the streaming analysis path render distributions without ever
#: materialising the underlying value lists.
FiveNumberSummary = Tuple[float, float, float, float, float]


def five_number_summary(values: Sequence[float]) -> FiveNumberSummary:
    """(min, q1, median, q3, max) of *values* (the box-plot summary)."""
    if not values:
        raise AnalysisError("five_number_summary() of empty data")
    return (
        min(values),
        quantile(values, 0.25),
        quantile(values, 0.5),
        quantile(values, 0.75),
        max(values),
    )


def ascii_box_row_from_summary(
    summary: FiveNumberSummary,
    *,
    low: float,
    high: float,
    width: int = 48,
) -> str:
    """One box-and-whisker row from a five-number summary."""
    if high <= low:
        high = low + 1.0

    def column(value: float) -> int:
        fraction = (value - low) / (high - low)
        return max(0, min(width - 1, int(round(fraction * (width - 1)))))

    q0, q1, q2, q3, q4 = (column(value) for value in summary)
    row = [" "] * width
    for i in range(q0, q4 + 1):
        row[i] = "-"
    for i in range(q1, q3 + 1):
        row[i] = "="
    row[q0] = "|"
    row[q4] = "|"
    row[q2] = "#"
    return "".join(row)


def ascii_box_row(
    values: Sequence[float],
    *,
    low: float,
    high: float,
    width: int = 48,
) -> str:
    """One box-and-whisker row scaled to [low, high]."""
    if not values:
        raise AnalysisError("ascii_box_row() of empty data")
    return ascii_box_row_from_summary(
        five_number_summary(values), low=low, high=high, width=width
    )


def ascii_boxplot_from_summaries(
    groups: Dict[str, Optional[FiveNumberSummary]],
    *,
    low: float,
    high: float,
    width: int = 48,
    log_scale: bool = False,
) -> str:
    """Multi-row box plot from per-group five-number summaries.

    A ``None`` summary marks an empty group: it is skipped but still
    participates in label-width layout — matching what
    :func:`ascii_boxplot` does with an empty value list.  The *low* /
    *high* bounds are the extremes across all groups (the caller knows
    them from its summaries); *log_scale* only controls the scale note,
    the summaries are expected to be pre-transformed.
    """
    if not groups:
        raise AnalysisError("ascii_boxplot() of empty groups")
    label_width = max(len(label) for label in groups) + 2
    lines = []
    for label, summary in groups.items():
        if summary is None:
            continue
        row = ascii_box_row_from_summary(
            summary, low=low, high=high, width=width
        )
        lines.append(f"{label:<{label_width}}{row}")
    scale_note = " (log scale)" if log_scale else ""
    lines.append(f"{'':<{label_width}}{'min':<{width - 6}}   max{scale_note}")
    return "\n".join(lines)


def ascii_boxplot(
    groups: Dict[str, Sequence[float]],
    *,
    width: int = 48,
    log_scale: bool = False,
) -> str:
    """Multi-row box plot with a shared (optionally log) scale."""
    if not groups:
        raise AnalysisError("ascii_boxplot() of empty groups")
    transform = (lambda v: math.log10(v + 1)) if log_scale else (lambda v: v)
    all_values = [
        transform(v) for values in groups.values() for v in values
    ]
    low, high = min(all_values), max(all_values)
    summaries = {
        label: (
            five_number_summary([transform(v) for v in values])
            if values else None
        )
        for label, values in groups.items()
    }
    return ascii_boxplot_from_summaries(
        summaries, low=low, high=high, width=width, log_scale=log_scale
    )


def ascii_scatter(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A dot-matrix scatter plot."""
    if not points:
        raise AnalysisError("ascii_scatter() of empty data")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high <= x_low:
        x_high = x_low + 1.0
    if y_high <= y_low:
        y_high = y_low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = int((y - y_low) / (y_high - y_low) * (height - 1))
        row = height - 1 - row  # origin bottom-left
        current = grid[row][col]
        if current == " ":
            grid[row][col] = "o"
        elif current == "o":
            grid[row][col] = "O"
        else:
            grid[row][col] = "@"
    lines = [f"{y_label} ({y_low:.1f} .. {y_high:.1f})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_low:.1f} .. {x_high:.1f})")
    return "\n".join(lines)


def ascii_heatmap(
    matrix: Dict[str, Dict[int, int]],
    *,
    columns: Optional[Sequence[int]] = None,
    cell_width: int = 5,
) -> str:
    """A shaded count matrix (rows sorted by total, descending)."""
    if not matrix:
        raise AnalysisError("ascii_heatmap() of empty matrix")
    if columns is None:
        all_columns = sorted({c for row in matrix.values() for c in row})
    else:
        all_columns = list(columns)
    peak = max(
        (count for row in matrix.values() for count in row.values()),
        default=1,
    )
    lines = ["row    " + "".join(f"{c:>{cell_width}}" for c in all_columns)]
    for key in sorted(matrix, key=lambda k: -sum(matrix[k].values())):
        row = matrix[key]
        cells = []
        for column in all_columns:
            count = row.get(column, 0)
            if count == 0:
                cells.append(" " * cell_width)
                continue
            shade = _SHADES[
                min(int(count / peak * (len(_SHADES) - 1)), len(_SHADES) - 1)
            ]
            cells.append(f"{count:>{cell_width - 1}}{shade}")
        lines.append(f"{key:<7}" + "".join(cells))
    return "\n".join(lines)
