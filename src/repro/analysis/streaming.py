"""One-pass analysis: every paper artefact from a single record stream.

The list-based computations in :mod:`repro.analysis.figures`,
:mod:`~repro.analysis.tables` and :mod:`~repro.analysis.report` take a
materialised crawl — a list the size of the whole measurement (8 VPs ×
45k sites at paper scale) — and walk it once per artefact.  The
classes here consume the record stream exactly once with state bounded
by the *result* of the analysis (detected wall domains, category
counts, distinct cookie-count values), not by the stream length, so a
crawl spooled to JSONL can be analysed at any world scale with flat
memory:

* :class:`StreamingCrawlAnalysis` — one pass over detection
  :class:`~repro.measure.records.VisitRecord` streams producing
  Table 1, the §4.1 landscape report, and Figures 1–3.
* :class:`StreamingCookieComparison` — one pass per measurement group
  producing the Figure 4/5 comparisons from
  :class:`~repro.analysis.stats.StreamingECDF` sketches.

Exactness: both classes reduce to the same aggregates the list-based
oracles reduce to (shared finalisers in ``tables``/``report``; the
same interpolation arithmetic in ``stats``), so every render and data
product is byte-identical to the materialised path — a property CI
checks differentially.  Records are decoded by the storage layer just
before they reach :meth:`add`; nothing here retains them.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.figures import (
    CookieComparison,
    Figure1,
    Figure2,
    Figure3,
    Figure6,
    compute_fig1,
    compute_fig3,
    compute_fig6,
)
from repro.analysis.render import (
    FiveNumberSummary,
    ascii_boxplot_from_summaries,
)
from repro.analysis.report import LandscapeReport, landscape_from_aggregates
from repro.analysis.stats import StreamingECDF
from repro.analysis.tables import Table1, table1_from_aggregates
from repro.measure.records import CookieMeasurement, VisitRecord
from repro.vantage import VANTAGE_POINTS
from repro.webgen.world import World


class StreamingCrawlAnalysis:
    """Single pass over detection records → Table 1, §4.1, Figures 1–3.

    Feed the full multi-VP detection stream through :meth:`consume`
    (or record-by-record through :meth:`add`), then read any artefact.
    State is O(detected wall domains + sites with banners), never
    O(visit records): the stream itself is not retained.

    Verification note: Figure 1–3 inputs are the detections that
    survive the paper's manual check (§3).  A wall record is verified
    exactly when its domain is in ``world.wall_domains`` — the
    predicate is record-local, which is what makes the single
    filtering pass possible.
    """

    def __init__(self, world: World) -> None:
        self.world = world
        self.record_count = 0
        #: First-seen-ordered unique wall domains across all VPs.
        self._wall_seen: Set[str] = set()
        self._wall_order: List[str] = []
        #: Per-VP wall-domain sets and language-match counts (Table 1).
        self._vp_wall_domains: Dict[str, Set[str]] = {}
        self._vp_language_counts: Dict[str, int] = {}
        #: Banner placement counts over DE wall records (§4.1).
        self._placement_counts: Dict[str, int] = {}
        #: Figure 2 built incrementally from verified DE wall records.
        self._figure2 = Figure2()
        #: DE regular-banner domains in record order (§4.3 sample pool).
        self._regular_banner_de: List[str] = []

    # ------------------------------------------------------------------
    # The single pass
    # ------------------------------------------------------------------
    def add(self, record: VisitRecord) -> "StreamingCrawlAnalysis":
        self.record_count += 1
        if record.is_cookiewall:
            if record.domain not in self._wall_seen:
                self._wall_seen.add(record.domain)
                self._wall_order.append(record.domain)
            self._vp_wall_domains.setdefault(record.vp, set()).add(
                record.domain
            )
            vp = VANTAGE_POINTS.get(record.vp)
            if vp is not None and record.detected_language == vp.language:
                self._vp_language_counts[record.vp] = (
                    self._vp_language_counts.get(record.vp, 0) + 1
                )
            if record.vp == "DE":
                location = record.banner_location
                self._placement_counts[location] = (
                    self._placement_counts.get(location, 0) + 1
                )
                if record.domain in self.world.wall_domains:
                    self._figure2.add_visit(record)
        elif record.vp == "DE" and record.banner_found and record.has_accept:
            self._regular_banner_de.append(record.domain)
        return self

    def consume(self, records: Iterable[VisitRecord]) -> "StreamingCrawlAnalysis":
        for record in records:
            self.add(record)
        return self

    # ------------------------------------------------------------------
    # Finalisers (all O(aggregate), stream already consumed)
    # ------------------------------------------------------------------
    def detected_wall_domains(self) -> List[str]:
        """Unique wall domains from any VP, first-seen order."""
        return list(self._wall_order)

    def verified_wall_domains(self) -> List[str]:
        """Detections surviving the §3 manual verification."""
        return [
            d for d in self._wall_order if d in self.world.wall_domains
        ]

    def regular_banner_domains_de(self) -> List[str]:
        """DE domains with a regular (accept-able) banner, record order."""
        return list(self._regular_banner_de)

    def table1(self) -> Table1:
        return table1_from_aggregates(
            self.world, self._vp_wall_domains, self._vp_language_counts
        )

    def landscape(self) -> LandscapeReport:
        return landscape_from_aggregates(
            self.world, set(self._wall_seen), self._placement_counts
        )

    def figure1(self) -> Figure1:
        return compute_fig1(
            self.verified_wall_domains(), self.world.category_db
        )

    def figure2(self) -> Figure2:
        return self._figure2

    def figure3(self) -> Figure3:
        return compute_fig3(self._figure2, self.world.category_db)

    def figure6(
        self, wall_measurements: Iterable[CookieMeasurement]
    ) -> Figure6:
        """Figure 6 from a measurement stream joined against fig2 prices."""
        return compute_fig6(wall_measurements, self._figure2)


#: (metric label, CookieMeasurement attribute) pairs in figure order.
_COOKIE_METRICS: Tuple[Tuple[str, str], ...] = (
    ("first-party", "avg_first_party"),
    ("third-party", "avg_third_party"),
    ("tracking", "avg_tracking"),
)


class _GroupSketch:
    """Per-group distribution state: one ECDF pair per cookie metric.

    The ``raw`` sketches answer medians/ratios; the ``log`` sketches
    hold ``log10(v + 1)``-transformed values for the box-plot renders
    (the transform is applied per value *before* sketching, exactly as
    the materialised renderer applies it before computing quantiles —
    interpolated quantiles do not commute with the transform, so
    sketching raw values only would break byte-identity).
    """

    def __init__(self, max_points: int) -> None:
        self.count = 0
        self.raw = [StreamingECDF(max_points) for _ in _COOKIE_METRICS]
        self.log = [StreamingECDF(max_points) for _ in _COOKIE_METRICS]

    def add(self, measurement: CookieMeasurement) -> None:
        self.count += 1
        for index, (_, attribute) in enumerate(_COOKIE_METRICS):
            value = getattr(measurement, attribute)
            self.raw[index].add(value)
            self.log[index].add(math.log10(value + 1))


class StreamingCookieComparison:
    """Bounded-memory stand-in for :class:`CookieComparison` (Figs 4/5).

    Instead of retaining both measurement groups, each group folds
    into :class:`~repro.analysis.stats.StreamingECDF` sketches per
    metric.  While the sketches stay exact (distinct cookie-count
    averages under the point budget — always true at paper scale),
    :meth:`medians`, :meth:`ratio`, :meth:`max_tracking`,
    :meth:`render` and :meth:`render_distribution` are byte-identical
    to the materialised class over the same streams.
    """

    def __init__(
        self,
        title: str,
        label_a: str,
        label_b: str,
        *,
        max_points: int = 4096,
    ) -> None:
        self.title = title
        self.label_a = label_a
        self.label_b = label_b
        self._groups = {
            "a": _GroupSketch(max_points),
            "b": _GroupSketch(max_points),
        }

    @classmethod
    def like(
        cls, oracle: CookieComparison, *, max_points: int = 4096
    ) -> "StreamingCookieComparison":
        """An empty streaming comparison with *oracle*'s labelling."""
        return cls(
            oracle.title, oracle.label_a, oracle.label_b,
            max_points=max_points,
        )

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def add(self, group: str, measurement: CookieMeasurement) -> None:
        self._groups[group].add(measurement)

    def consume(
        self, group: str, measurements: Iterable[CookieMeasurement]
    ) -> "StreamingCookieComparison":
        sketch = self._groups[group]
        for measurement in measurements:
            sketch.add(measurement)
        return self

    def group_size(self, group: str) -> int:
        return self._groups[group].count

    # ------------------------------------------------------------------
    # CookieComparison-compatible aggregations
    # ------------------------------------------------------------------
    def medians(self, group: str) -> Tuple[float, float, float]:
        sketch = self._groups["a" if group == "a" else "b"]
        first, third, tracking = (ecdf.median() for ecdf in sketch.raw)
        return (first, third, tracking)

    def ratio(self, metric: str) -> float:
        index = {"first_party": 0, "third_party": 1, "tracking": 2}[metric]
        a = self.medians("a")[index]
        b = self.medians("b")[index]
        if a == 0:
            return float("inf") if b > 0 else 1.0
        return b / a

    def max_tracking(self, group: str) -> float:
        sketch = self._groups["a" if group == "a" else "b"]
        ecdf = sketch.raw[2]
        if ecdf.count == 0:
            return 0.0
        return ecdf.quantile(1.0)

    def render(self) -> str:
        lines = [self.title]
        header = (
            f"{'':<26}{'First-party':>12}{'Third-party':>13}{'Tracking':>10}"
        )
        lines.append(header)
        for label, group in ((self.label_a, "a"), (self.label_b, "b")):
            fp, tp, tr = self.medians(group)
            lines.append(f"{label:<26}{fp:>12.1f}{tp:>13.1f}{tr:>10.1f}")
        return "\n".join(lines)

    def _log_summary(
        self, group: str, index: int
    ) -> Optional[FiveNumberSummary]:
        ecdf = self._groups[group].log[index]
        if ecdf.count == 0:
            return None
        return (
            ecdf.quantile(0.0),
            ecdf.quantile(0.25),
            ecdf.quantile(0.5),
            ecdf.quantile(0.75),
            ecdf.quantile(1.0),
        )

    def render_distribution(self) -> str:
        """Box plots per metric from the log-transformed sketches."""
        sections = [self.render(), ""]
        for index, (metric, _) in enumerate(_COOKIE_METRICS):
            summaries = {
                self.label_a: self._log_summary("a", index),
                self.label_b: self._log_summary("b", index),
            }
            present = [s for s in summaries.values() if s is not None]
            if not present:
                continue
            low = min(s[0] for s in present)
            high = max(s[4] for s in present)
            sections.append(f"{metric} cookies (log scale):")
            sections.append(
                ascii_boxplot_from_summaries(
                    summaries, low=low, high=high, log_scale=True
                )
            )
            sections.append("")
        return "\n".join(sections).rstrip()


def streaming_fig4(*, max_points: int = 4096) -> StreamingCookieComparison:
    """An empty Figure 4 comparison (regular banners vs cookiewalls)."""
    return StreamingCookieComparison(
        "Figure 4: average cookies — regular banners vs cookiewalls "
        "(median of per-site 5-visit averages)",
        "Regular cookie banner",
        "Cookiewall",
        max_points=max_points,
    )


def streaming_fig5(*, max_points: int = 4096) -> StreamingCookieComparison:
    """An empty Figure 5 comparison (accept vs subscription)."""
    return StreamingCookieComparison(
        "Figure 5: contentpass partners — accept vs subscription "
        "(median of per-site 5-visit averages)",
        "Accept",
        "Subscription",
        max_points=max_points,
    )
