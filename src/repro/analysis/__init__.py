"""Analysis: statistics and the paper's tables/figures as data + ASCII."""

from repro.analysis.stats import ecdf, mean, median, pearson, quantile

__all__ = ["median", "mean", "quantile", "ecdf", "pearson"]
