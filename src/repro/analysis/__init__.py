"""Analysis: statistics and the paper's tables/figures as data + ASCII.

Two equivalent computation paths live here: the list-based oracle
functions (``compute_*`` over materialised records) and the
single-pass streaming aggregators (:class:`StreamingCrawlAnalysis`,
:class:`StreamingCookieComparison` over record streams).  Their
outputs are byte-identical; the streaming path's memory is bounded by
the analysis result, not the stream length.
"""

from repro.analysis.stats import (
    OnlineStats,
    StreamingECDF,
    TopK,
    ecdf,
    ecdf_at,
    mean,
    median,
    pearson,
    quantile,
)
from repro.analysis.discrepancy import (
    StreamingDiscrepancyReport,
    build_discrepancy_report,
)
from repro.analysis.failures import StreamingFailureTaxonomy
from repro.analysis.streaming import (
    StreamingCookieComparison,
    StreamingCrawlAnalysis,
)

__all__ = [
    "median",
    "mean",
    "quantile",
    "ecdf",
    "ecdf_at",
    "pearson",
    "OnlineStats",
    "StreamingECDF",
    "TopK",
    "StreamingCrawlAnalysis",
    "StreamingCookieComparison",
    "StreamingDiscrepancyReport",
    "StreamingFailureTaxonomy",
    "build_discrepancy_report",
]
