"""Paper-vs-measured comparison (the EXPERIMENTS.md generator).

Holds the paper's reported values for every artefact and compares a
set of :class:`~repro.experiments.runner.ExperimentResult` objects
against them, flagging where the reproduced *shape* holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult

#: The numbers the paper reports, with the tolerance that still counts
#: as "same shape".  ``kind`` controls the comparison:
#:   ratio  — measured within [paper/factor, paper*factor]
#:   exact  — equal
#:   band   — absolute difference <= tolerance
@dataclass(frozen=True)
class PaperValue:
    experiment: str
    metric: str
    paper: float
    kind: str = "ratio"
    tolerance: float = 2.0
    extract: Optional[Callable[[Dict], float]] = None
    note: str = ""

    def measured_from(self, data: Dict) -> Optional[float]:
        if self.extract is not None:
            try:
                return float(self.extract(data))
            except (KeyError, IndexError, TypeError, ZeroDivisionError):
                return None
        value = data.get(self.metric)
        return float(value) if value is not None else None

    def holds(self, measured: Optional[float]) -> bool:
        if measured is None:
            return False
        if self.kind == "exact":
            return measured == self.paper
        if self.kind == "band":
            return abs(measured - self.paper) <= self.tolerance
        if self.paper == 0:
            return measured == 0
        low = self.paper / self.tolerance
        high = self.paper * self.tolerance
        return low <= measured <= high


PAPER_VALUES: List[PaperValue] = [
    # §4.1 landscape
    PaperValue("landscape", "unique cookiewalls", 280, "ratio", 1.15,
               lambda d: d["unique_walls"], "found on 45k targets"),
    PaperValue("landscape", "overall rate", 0.006, "ratio", 2.0,
               lambda d: d["overall_rate"], "0.6% of targets"),
    PaperValue("landscape", "DE top-10k rate", 0.029, "ratio", 1.5,
               lambda d: d["germany_top10k_rate"], "2.9%"),
    PaperValue("landscape", "DE top-1k rate", 0.085, "ratio", 1.5,
               lambda d: d["germany_top1k_rate"], "8.5%"),
    PaperValue("landscape", "country-wise top-1k rate", 0.017, "ratio", 2.0,
               lambda d: d["countrywise_top1k_rate"], "1.7%"),
    # Table 1
    PaperValue("table1", "DE detections", 280, "ratio", 1.15,
               lambda d: d["rows"]["DE"]["cookiewalls"]),
    PaperValue("table1", "SE detections", 276, "ratio", 1.15,
               lambda d: d["rows"]["SE"]["cookiewalls"]),
    PaperValue("table1", "USE detections", 197, "ratio", 1.25,
               lambda d: d["rows"]["USE"]["cookiewalls"]),
    PaperValue("table1", "DE toplist column", 259, "ratio", 1.2,
               lambda d: d["rows"]["DE"]["toplist"]),
    PaperValue("table1", "DE ccTLD column", 233, "ratio", 1.2,
               lambda d: d["rows"]["DE"]["cctld"]),
    PaperValue("table1", "DE language column", 252, "ratio", 1.2,
               lambda d: d["rows"]["DE"]["language"]),
    PaperValue("table1", "US toplist column", 0, "exact", 0,
               lambda d: d["rows"]["USE"]["toplist"]),
    # §3 accuracy
    PaperValue("accuracy", "precision", 0.982, "band", 0.05,
               lambda d: d["full_precision"], "285 detected, 280 true"),
    PaperValue("accuracy", "recall", 1.0, "exact", 0,
               lambda d: d["full_recall"], "no false negatives found"),
    # Figure 2
    PaperValue("fig2", "modal price bucket (EUR)", 3, "exact", 0,
               lambda d: d["modal_bucket"], "most walls charge ~3 EUR"),
    PaperValue("fig2", "share <= 4 EUR", 0.90, "band", 0.10,
               lambda d: d["le4"]),
    PaperValue("fig2", "share <= 3 EUR", 0.80, "band", 0.12,
               lambda d: d["le3"]),
    # Figure 4
    PaperValue("fig4", "regular median tracking", 1.0, "band", 1.5,
               lambda d: d["regular_medians"][2]),
    PaperValue("fig4", "wall median tracking", 43.0, "ratio", 1.6,
               lambda d: d["wall_medians"][2]),
    PaperValue("fig4", "third-party ratio", 6.4, "ratio", 2.0,
               lambda d: d["third_party_ratio"], "walls send 6.4x more TP"),
    PaperValue("fig4", "tracking ratio", 42.0, "ratio", 2.5,
               lambda d: d["tracking_ratio"], "walls send 42x more tracking"),
    # Figure 5
    PaperValue("fig5", "accept median tracking", 16.0, "ratio", 1.6,
               lambda d: d["accept_medians"][2]),
    PaperValue("fig5", "subscription median tracking", 0.0, "exact", 0,
               lambda d: d["subscription_medians"][2],
               "subscribers see no tracking cookies"),
    PaperValue("fig5", "max tracking on accept", 100.0, "ratio", 3.0,
               lambda d: d["max_tracking_accept"], "extremes >100"),
    # Figure 6
    PaperValue("fig6", "|Pearson r|", 0.0, "band", 0.35,
               lambda d: abs(d["pearson_r"]), "no meaningful correlation"),
    # §4.5 uBlock
    PaperValue("ublock", "suppressed share", 0.70, "band", 0.12,
               lambda d: d["suppressed_share"], "196/280 walls blocked"),
    PaperValue("ublock", "broken sites", 2, "band", 1,
               lambda d: len(d["broken"]), "hausbau-forum / promipool"),
    # §4.4 SMPs
    PaperValue("smp", "contentpass partners", 219, "ratio", 1.1,
               lambda d: d["contentpass"]["partners"]),
    PaperValue("smp", "freechoice partners", 167, "ratio", 1.1,
               lambda d: d["freechoice"]["partners"]),
    PaperValue("smp", "contentpass on toplist", 76, "ratio", 1.2,
               lambda d: d["contentpass"]["on_toplist"]),
]


@dataclass
class ComparisonRow:
    experiment: str
    metric: str
    paper: float
    measured: Optional[float]
    holds: bool
    note: str = ""


@dataclass
class PaperComparison:
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.rows)

    @property
    def holding(self) -> int:
        return sum(1 for row in self.rows if row.holds)

    def failing_rows(self) -> List[ComparisonRow]:
        return [row for row in self.rows if not row.holds]

    def render_markdown(self) -> str:
        lines = [
            "| Experiment | Metric | Paper | Measured | Shape holds |",
            "|---|---|---|---|---|",
        ]
        for row in self.rows:
            measured = "n/a" if row.measured is None else f"{row.measured:g}"
            check = "yes" if row.holds else "**NO**"
            note = f" ({row.note})" if row.note else ""
            lines.append(
                f"| {row.experiment} | {row.metric}{note} | "
                f"{row.paper:g} | {measured} | {check} |"
            )
        lines.append("")
        lines.append(
            f"**{self.holding}/{self.total}** paper observations reproduced."
        )
        return "\n".join(lines)

    def render_text(self) -> str:
        lines = []
        for row in self.rows:
            measured = "n/a" if row.measured is None else f"{row.measured:g}"
            mark = "ok " if row.holds else "FAIL"
            lines.append(
                f"[{mark}] {row.experiment:<10} {row.metric:<32} "
                f"paper={row.paper:<10g} measured={measured}"
            )
        lines.append(f"{self.holding}/{self.total} observations hold")
        return "\n".join(lines)


def compare_with_paper(
    results: Sequence[ExperimentResult],
    values: Optional[List[PaperValue]] = None,
) -> PaperComparison:
    """Check measured experiment data against the paper's numbers."""
    by_id = {r.experiment_id: r for r in results}
    comparison = PaperComparison()
    for value in values if values is not None else PAPER_VALUES:
        result = by_id.get(value.experiment)
        measured = (
            value.measured_from(result.data) if result is not None else None
        )
        comparison.rows.append(
            ComparisonRow(
                experiment=value.experiment,
                metric=value.metric,
                paper=value.paper,
                measured=measured,
                holds=value.holds(measured),
                note=value.note,
            )
        )
    return comparison
