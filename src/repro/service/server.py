"""The campaign service: a thin long-lived HTTP server over Session.

One background runner thread drains the :class:`JobQueue` and executes
each campaign through exactly the path every other entry point uses —
``Session(spec).run()`` — with the output redirected under the
service's data directory and the engine forced resumable.  The HTTP
layer (stdlib ``ThreadingHTTPServer``; the service adds no
dependencies) only translates between the wire and the queue:

========================================  =================================
``GET  /v1/health``                       liveness + schema versions
``POST /v1/campaigns``                    submit ``{"spec": <versioned
                                          RunSpec dict>, "tenant", "priority"}``
``GET  /v1/campaigns``                    list jobs
``GET  /v1/campaigns/<id>``               one job's status
``GET  /v1/campaigns/<id>/records``       stream the finished JSONL
``POST /v1/campaigns/<id>/cancel``        cancel queued/running
========================================  =================================

Error mapping: an invalid or future-versioned spec is HTTP 400 (with
the readable :class:`~repro.api.SpecVersionError` message), a quota
breach is 429, an unknown id is 404, records of an unfinished
campaign are 409.

Because job ids are content-addressed and each job's outputs live
under ``campaigns/<id>/``, a killed service restarted with
``--resume`` simply requeues its persisted unfinished jobs; each
campaign's engine then reconciles the checkpoints it left behind
(fingerprint-checked), re-running only what never completed.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.session import Session
from repro.api.spec import (
    SPEC_SCHEMA_VERSION,
    RunSpec,
    SpecError,
)
from repro.service.jobs import (
    ACTIVE_STATES,
    Job,
    JobCancelled,
    JobQueue,
    QuotaExceeded,
    job_id,
    load_jobs,
    persist_job,
)


class CampaignService:
    """Owns the queue, the runner thread, and the HTTP front-end."""

    def __init__(
        self,
        data_dir,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        quota: int = 4,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.host = host
        self.port = port
        self.queue = JobQueue(quota=quota)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._runner: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self, *, resume: bool = False) -> "CampaignService":
        self.data_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._restore_jobs()
        self._stop.clear()
        self._httpd = ThreadingHTTPServer(
            (self.host, self.port), _handler_for(self)
        )
        self.port = self._httpd.server_address[1]
        threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        ).start()
        self._runner = threading.Thread(target=self._run_jobs, daemon=True)
        self._runner.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._runner is not None:
            self._runner.join(timeout=10.0)
            self._runner = None

    def serve_forever(self, *, resume: bool = False) -> int:
        """CLI mode: start, print the address, block until interrupted."""
        self.start(resume=resume)
        print(f"campaign service listening on {self.url} "
              f"(data under {self.data_dir})", flush=True)
        try:
            self._stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
        return 0

    def _restore_jobs(self) -> None:
        """Requeue persisted unfinished jobs (the ``--resume`` path).

        A job found ``running`` died with its service; its campaign
        directory holds whatever checkpoints the engine flushed, so
        requeueing it re-runs only the unfinished remainder.
        """
        for job in load_jobs(self.data_dir / "jobs"):
            if job.state in ACTIVE_STATES:
                job.state = "queued"
                self.queue.submit(job)
                self._persist(job)
            else:
                # Finished jobs stay visible (status/records endpoints).
                self.queue.jobs[job.id] = job

    # ------------------------------------------------------------------
    # Submission / execution
    # ------------------------------------------------------------------
    def submit(
        self, spec: RunSpec, *, tenant: str = "default", priority: int = 0
    ) -> Job:
        job = self.queue.submit(Job(
            id=job_id(spec, tenant),
            spec=spec,
            tenant=tenant,
            priority=priority,
        ))
        self._persist(job)
        return job

    def _persist(self, job: Job) -> None:
        persist_job(self.data_dir / "jobs", job)

    def _campaign_dir(self, claimed_id: str) -> Path:
        return self.data_dir / "campaigns" / claimed_id

    def _localized_spec(self, job: Job) -> RunSpec:
        """The job's spec with output owned by the service.

        Output lands under ``campaigns/<id>/`` regardless of what the
        submitted spec asked for (the service never writes to
        client-chosen paths), checkpointing is forced on, and resume is
        forced on — against this job's own directory that is a no-op
        for a fresh campaign and a fingerprint-checked restore for an
        interrupted one.
        """
        campaign_dir = self._campaign_dir(job.id)
        campaign_dir.mkdir(parents=True, exist_ok=True)
        if job.spec.kind in ("crawl", "measure"):
            output = {
                "path": str(campaign_dir / "records.jsonl"),
                "out_dir": None,
            }
        else:
            output = {"path": None, "out_dir": str(campaign_dir)}
        return job.spec.override({
            "output": output,
            "engine": {"resume": True, "checkpoint": True},
        })

    def _run_jobs(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=0.2)
            if job is None:
                continue
            self._persist(job)
            self._execute(job)

    def _execute(self, job: Job) -> None:
        def progress(done: int, total: int, task) -> None:
            if job.cancel_requested or self._stop.is_set():
                raise JobCancelled(
                    f"campaign {job.id} cancelled at task {done}/{total}"
                )

        try:
            spec = self._localized_spec(job)
            result = Session(spec, progress=progress).run()
        except JobCancelled:
            job.state = "cancelled"
        except Exception as error:  # noqa: BLE001 — jobs never kill the service
            job.state = "failed"
            job.error = f"{type(error).__name__}: {error}"
        else:
            job.state = "done"
            summary = result.summary()
            job.summary = {
                "record_count": result.record_count,
                "executed": summary.get("executed", result.executed),
                "resumed": result.resumed,
                "failures": len(result.failures),
                "elapsed": result.elapsed,
            }
        self._persist(job)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def record_paths(self, job: Job) -> List[Path]:
        campaign_dir = self._campaign_dir(job.id)
        if job.spec.kind in ("crawl", "measure"):
            spool = campaign_dir / "records.jsonl"
            return [spool] if spool.exists() else []
        return sorted(campaign_dir.glob("wave-*.jsonl"))


def _handler_for(service: CampaignService):
    """A request-handler class bound to *service* (stdlib idiom)."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # The service narrates through its own channel, not stderr spam.
        def log_message(self, format, *args):  # noqa: A002
            pass

        # -- plumbing ---------------------------------------------------
        def _send_json(self, status: int, body: Dict) -> None:
            encoded = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def _read_body(self) -> Dict:
            length = int(self.headers.get("Content-Length", "0") or "0")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            body = json.loads(raw.decode("utf-8"))
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
            return body

        def _job_or_404(self, claimed_id: str) -> Optional[Job]:
            job = service.queue.jobs.get(claimed_id)
            if job is None:
                self._send_json(
                    404, {"error": f"unknown campaign {claimed_id!r}"}
                )
            return job

        # -- routes -----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["v1", "health"]:
                self._send_json(200, {
                    "ok": True,
                    "spec_schema_version": SPEC_SCHEMA_VERSION,
                })
                return
            if parts == ["v1", "campaigns"]:
                self._send_json(200, {"campaigns": [
                    job.to_dict() for job in service.queue.snapshot()
                ]})
                return
            if len(parts) == 3 and parts[:2] == ["v1", "campaigns"]:
                job = self._job_or_404(parts[2])
                if job is not None:
                    self._send_json(200, job.to_dict())
                return
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "campaigns"]
                and parts[3] == "records"
            ):
                self._stream_records(parts[2])
                return
            self._send_json(404, {"error": f"no route {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["v1", "campaigns"]:
                self._submit()
                return
            if (
                len(parts) == 4
                and parts[:2] == ["v1", "campaigns"]
                and parts[3] == "cancel"
            ):
                job = self._job_or_404(parts[2])
                if job is not None:
                    job = service.queue.cancel(parts[2])
                    service._persist(job)
                    self._send_json(200, job.to_dict())
                return
            self._send_json(404, {"error": f"no route {self.path!r}"})

        def _submit(self) -> None:
            try:
                body = self._read_body()
            except ValueError as error:
                self._send_json(400, {"error": str(error)})
                return
            if "spec" not in body:
                self._send_json(
                    400, {"error": "body must carry a 'spec' object"}
                )
                return
            try:
                spec = RunSpec.from_dict(body["spec"])
            except SpecError as error:
                # SpecVersionError included: the readable rejection for
                # a future schema_version crosses the wire verbatim.
                self._send_json(400, {"error": str(error)})
                return
            tenant = str(body.get("tenant", "default"))
            priority = body.get("priority", 0)
            if not isinstance(priority, int) or isinstance(priority, bool):
                self._send_json(
                    400, {"error": f"priority must be an integer, "
                                   f"got {priority!r}"}
                )
                return
            try:
                job = service.submit(spec, tenant=tenant, priority=priority)
            except QuotaExceeded as error:
                self._send_json(429, {"error": str(error)})
                return
            self._send_json(202, job.to_dict())

        def _stream_records(self, claimed_id: str) -> None:
            job = self._job_or_404(claimed_id)
            if job is None:
                return
            if job.state != "done":
                self._send_json(409, {
                    "error": f"campaign {claimed_id} is {job.state}; "
                             "records stream once it is done",
                })
                return
            paths = service.record_paths(job)
            total = sum(path.stat().st_size for path in paths)
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(total))
            self.end_headers()
            for path in paths:
                with path.open("rb") as handle:
                    while True:
                        chunk = handle.read(1 << 16)
                        if not chunk:
                            break
                        self.wfile.write(chunk)

    return Handler
