"""A minimal stdlib client for the campaign service.

Used by the ``submit`` CLI verb and the tests; embedders with their
own HTTP stack only need the endpoint table in
:mod:`repro.service.server`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.api.spec import RunSpec
from repro.errors import ReproError

from repro.service.jobs import ACTIVE_STATES


class ServiceError(ReproError):
    """An HTTP-level failure talking to the campaign service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None,
        *, raw: bool = False,
    ):
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=(
                {"Content-Type": "application/json"} if data else {}
            ),
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                payload = response.read()
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(
                    error.read().decode("utf-8")
                ).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServiceError(
                f"HTTP {error.code}: {detail or error.reason}",
                status=error.code,
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach campaign service at {self.base_url}: "
                f"{error.reason}"
            ) from error
        if raw:
            return payload
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/v1/health")

    def submit(
        self, spec: RunSpec, *, tenant: str = "default", priority: int = 0
    ) -> Dict:
        return self._request("POST", "/v1/campaigns", {
            "spec": spec.to_dict(),
            "tenant": tenant,
            "priority": priority,
        })

    def campaigns(self) -> Dict:
        return self._request("GET", "/v1/campaigns")

    def status(self, campaign_id: str) -> Dict:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def records(self, campaign_id: str) -> bytes:
        """The finished campaign's merged JSONL bytes."""
        return self._request(
            "GET", f"/v1/campaigns/{campaign_id}/records", raw=True
        )

    def cancel(self, campaign_id: str) -> Dict:
        return self._request("POST", f"/v1/campaigns/{campaign_id}/cancel")

    def wait(
        self,
        campaign_id: str,
        *,
        timeout: Optional[float] = None,
        poll: float = 0.3,
    ) -> Dict:
        """Poll status until the campaign leaves the active states."""
        deadline = time.monotonic() + timeout if timeout else None
        while True:
            job = self.status(campaign_id)
            if job["state"] not in ACTIVE_STATES:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"campaign {campaign_id} still {job['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)
