"""repro.service — the campaign service plane.

A thin long-lived server wrapping :class:`~repro.api.Session`:
campaigns are submitted as versioned :class:`~repro.api.RunSpec` JSON
and executed through exactly the code path the CLI and library use,
with submit/status/stream/cancel endpoints, a FIFO-with-priorities
queue, per-tenant quotas, and resumable campaigns keyed by the
engine's checkpoint fingerprints (job ids are content-addressed, so a
restarted service re-queues a half-finished campaign against its own
checkpoint directory).

- :mod:`repro.service.jobs` — the job model, priority queue, quotas,
  and crash-safe persistence.
- :mod:`repro.service.server` — :class:`CampaignService`, the stdlib
  ``ThreadingHTTPServer`` front-end plus the runner thread.
- :mod:`repro.service.client` — :class:`ServiceClient`, the stdlib
  client the ``submit`` CLI verb uses.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    ACTIVE_STATES,
    JOB_STATES,
    Job,
    JobCancelled,
    JobQueue,
    QuotaExceeded,
    job_id,
)
from repro.service.server import CampaignService

__all__ = [
    "ACTIVE_STATES",
    "CampaignService",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobQueue",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceError",
    "job_id",
]
