"""Job model, priority queue, quotas, and persistence for the service.

A *job* is one submitted campaign: a versioned :class:`RunSpec` plus
the scheduling envelope (tenant, priority, state).  Jobs are
content-addressed — the id is a hash of the canonical spec JSON and
the tenant — so resubmitting the same campaign is idempotent, and a
job's output directory (keyed by the id) is exactly where its earlier
checkpoints live: restoring a half-finished campaign is the engine's
ordinary fingerprint-checked resume, not a service-level mechanism.

The queue is FIFO within a priority level (a heap over
``(-priority, sequence)``), with a per-tenant quota on *active* jobs
(queued + running); submits beyond it raise :class:`QuotaExceeded`,
which the server maps to HTTP 429.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.spec import RunSpec
from repro.errors import ReproError

#: Lifecycle: queued -> running -> done | failed | cancelled
#: (queued jobs may also go straight to cancelled).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States that count against a tenant's quota.
ACTIVE_STATES = ("queued", "running")


class QuotaExceeded(ReproError):
    """A tenant's active-campaign quota is exhausted (HTTP 429)."""


class JobCancelled(ReproError):
    """Raised inside a running campaign's progress hook to stop it."""


def job_id(spec: RunSpec, tenant: str) -> str:
    """The content-addressed id: hash of canonical spec JSON + tenant.

    Stable across submits (idempotence) and across service restarts
    (the resumable-campaign key).
    """
    canonical = json.dumps(spec.to_dict(), sort_keys=True)
    digest = hashlib.sha256(
        f"{tenant}\n{canonical}".encode("utf-8")
    ).hexdigest()
    return digest[:12]


@dataclasses.dataclass
class Job:
    """One submitted campaign and its scheduling envelope."""

    id: str
    spec: RunSpec
    tenant: str = "default"
    priority: int = 0
    state: str = "queued"
    error: Optional[str] = None
    summary: Optional[Dict] = None
    #: Set while running when a cancel arrived; the progress hook
    #: converts it into :class:`JobCancelled`.
    cancel_requested: bool = False

    def to_dict(self) -> Dict:
        """JSON-safe wire/persistence form (spec in versioned form)."""
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "summary": self.summary,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Job":
        return cls(
            id=data["id"],
            spec=RunSpec.from_dict(data["spec"]),
            tenant=data.get("tenant", "default"),
            priority=data.get("priority", 0),
            state=data.get("state", "queued"),
            error=data.get("error"),
            summary=data.get("summary"),
        )


class JobQueue:
    """FIFO-with-priorities queue with per-tenant active-job quotas."""

    def __init__(self, quota: int = 4) -> None:
        if quota < 1:
            raise ValueError("quota must be >= 1")
        self.quota = quota
        self.jobs: Dict[str, Job] = {}
        self._heap: List = []  # (-priority, sequence, job_id)
        self._sequence = 0
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)

    def submit(self, job: Job) -> Job:
        """Enqueue *job*; idempotent for an already-known id.

        An active or finished job with the same id is returned as-is
        (same spec + tenant → same id → same campaign).  A failed or
        cancelled one is re-queued — with its output directory intact,
        the re-run resumes from the campaign's checkpoints.
        """
        with self._lock:
            existing = self.jobs.get(job.id)
            if existing is not None and existing.state not in (
                "failed", "cancelled"
            ):
                return existing
            active = sum(
                1 for other in self.jobs.values()
                if other.tenant == job.tenant
                and other.state in ACTIVE_STATES
            )
            if active >= self.quota:
                raise QuotaExceeded(
                    f"tenant {job.tenant!r} already has {active} active "
                    f"campaign(s) (quota {self.quota}); wait or cancel one"
                )
            if existing is not None:
                job = existing
                job.error = None
                job.summary = None
                job.cancel_requested = False
            job.state = "queued"
            self.jobs[job.id] = job
            self._push_locked(job)
            return job

    def _push_locked(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, self._sequence, job.id))
        self._sequence += 1
        self._available.notify()

    def next_job(self, timeout: float = 0.2) -> Optional[Job]:
        """Claim the highest-priority queued job (FIFO within a level);
        ``None`` when nothing is claimable within *timeout*."""
        with self._lock:
            if not self._heap:
                self._available.wait(timeout)
            while self._heap:
                _, _, claimed_id = heapq.heappop(self._heap)
                job = self.jobs.get(claimed_id)
                if job is None or job.state != "queued":
                    continue  # cancelled (or superseded) while queued
                job.state = "running"
                return job
            return None

    def cancel(self, claimed_id: str) -> Optional[Job]:
        """Cancel a job: queued ones flip to ``cancelled`` immediately,
        running ones get ``cancel_requested`` (the campaign's progress
        hook stops it at the next task boundary)."""
        with self._lock:
            job = self.jobs.get(claimed_id)
            if job is None:
                return None
            if job.state == "queued":
                job.state = "cancelled"
            elif job.state == "running":
                job.cancel_requested = True
            return job

    def snapshot(self) -> List[Job]:
        with self._lock:
            return sorted(self.jobs.values(), key=lambda job: job.id)


def persist_job(jobs_dir: Path, job: Job) -> Path:
    """Durably record *job* (atomic replace, crash-safe)."""
    jobs_dir.mkdir(parents=True, exist_ok=True)
    path = jobs_dir / f"{job.id}.json"
    scratch = jobs_dir / f"{job.id}.json.tmp"
    scratch.write_text(
        json.dumps(job.to_dict(), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    scratch.replace(path)
    return path


def load_jobs(jobs_dir: Path) -> List[Job]:
    """All persisted jobs, unreadable files skipped (never fatal)."""
    jobs: List[Job] = []
    if not jobs_dir.is_dir():
        return jobs
    for path in sorted(jobs_dir.glob("*.json")):
        try:
            jobs.append(Job.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            ))
        except (OSError, ValueError, KeyError, ReproError):
            continue
    return jobs
