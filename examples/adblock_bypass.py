#!/usr/bin/env python3
"""Bypassing cookiewalls with uBlock Origin (paper §4.5).

Enables the Annoyances filter lists and measures which walls survive::

    python examples/adblock_bypass.py
"""

from collections import Counter

from repro.measure import Crawler
from repro.webgen import build_world


def main() -> None:
    world = build_world(scale=0.1, seed=2023)
    crawler = Crawler(world)
    walls = sorted(world.wall_domains)
    print(f"testing {len(walls)} cookiewall sites with uBlock Origin "
          f"(Annoyances lists enabled)\n")

    suppressed, surviving = [], []
    broken = []
    for domain in walls:
        record = crawler.measure_ublock("DE", domain, iterations=5)
        if record.suppressed:
            suppressed.append(domain)
            if record.broken:
                broken.append((domain, record.broken_reason))
        else:
            surviving.append(domain)

    share = len(suppressed) / len(walls)
    print(f"suppressed: {len(suppressed)}/{len(walls)} ({share:.0%})")
    print(f"broken while suppressed: {len(broken)}")
    for domain, reason in broken:
        print(f"  {domain}: {reason}")

    by_serving = Counter(
        world.sites[d].wall.serving for d in surviving
    )
    print("\nwalls that survive uBlock, by delivery mechanism:")
    for serving, count in by_serving.most_common():
        print(f"  {serving:<8} {count}")
    print("\n(inline walls and walls from unlisted CMP domains evade "
          "the filter lists — §4.5's explanation.)")


if __name__ == "__main__":
    main()
