#!/usr/bin/env python3
"""Revoking cookiewall acceptance (paper §5).

Demonstrates the trap the paper describes: a user who first accepted a
cookiewall and later bought a subscription *keeps being tracked* until
they delete the site's cookies::

    python examples/revoking_acceptance.py
"""

from repro.bannerclick import BannerClick, accept_banner
from repro.httpkit import CookieJar
from repro.measure import count_cookies
from repro.webgen import build_world


def main() -> None:
    world = build_world(scale=0.02, seed=7)
    platform = world.platforms["contentpass"]
    platform.create_account("victim@example.org", "pw")
    partner = platform.partner_domains[0]
    print(f"partner site: https://{partner}/\n")

    jar = CookieJar()
    browser = world.browser("DE", jar=jar)
    detector = BannerClick()

    # Day 1: the user clicks "accept" on the cookiewall.
    page = browser.visit(partner)
    detection = detector.detect(page)
    assert detection.is_cookiewall
    accept_banner(browser, page, detection)
    browser.reload(page)
    counts = count_cookies(jar, partner, world.tracking_list)
    print(f"after accepting:       {counts.tracking} tracking cookies")

    # Day 2: they buy a subscription and log in.
    platform.purchase_subscription("victim@example.org")
    browser.visit(
        f"https://{platform.domain}/login?email=victim@example.org&password=pw"
    )
    browser.visit(partner)
    counts = count_cookies(jar, partner, world.tracking_list)
    print(f"subscribed + revisit:  {counts.tracking} tracking cookies "
          "(the old consent cookie still wins!)")

    # The fix the paper describes: delete the site's cookies, revisit.
    removed = browser.clear_site_data(partner)
    print(f"\ncleared {removed} cookies for {partner}")
    baseline = jar.snapshot()
    page = browser.visit(partner)
    counts = count_cookies(jar, partner, world.tracking_list, baseline=baseline)
    detection = detector.detect(page)
    print(f"after clearing:        {counts.tracking} tracking cookies, "
          f"wall shown: {detection.is_cookiewall}, "
          f"subscriber recognised: {bool(page.flags.get('smp_subscriber'))}")


if __name__ == "__main__":
    main()
