#!/usr/bin/env python3
"""Quickstart: build a small synthetic web, detect a cookiewall, accept it.

Runs in a few seconds::

    python examples/quickstart.py
"""

from repro.bannerclick import BannerClick, accept_banner
from repro.measure import Crawler, count_cookies
from repro.httpkit import CookieJar
from repro.webgen import build_world


def main() -> None:
    # 1. Build a 2%-scale world (~1k sites, deterministic).
    world = build_world(scale=0.02, seed=7)
    print("world:", world.stats())

    # 2. Pick a cookiewall site and visit it from the Frankfurt VP.
    domain = sorted(world.wall_domains)[0]
    jar = CookieJar()
    browser = world.browser("DE", jar=jar)
    page = browser.visit(domain)
    print(f"\nvisited https://{domain}/ from Frankfurt")

    # 3. Run the BannerClick detector.
    detector = BannerClick()
    detection = detector.detect(page)
    print(f"banner found:    {detection.found} ({detection.location})")
    print(f"is cookiewall:   {detection.is_cookiewall}")
    print(f"matched words:   {detection.wall_word_match}, "
          f"currency: {detection.currency_matches}")
    print(f"banner text:     {detection.text[:100]}...")

    # 4. Accept the wall and reload — trackers now load.
    accept_banner(browser, page, detection)
    page = browser.reload(page)
    counts = count_cookies(jar, page.site, world.tracking_list)
    print(f"\nafter accepting: {counts.first_party} first-party, "
          f"{counts.third_party} third-party, "
          f"{counts.tracking} tracking cookies")

    # 5. The same site shows no trackers before consent.
    fresh = CookieJar()
    browser2 = world.browser("DE", jar=fresh)
    page2 = browser2.visit(domain)
    counts2 = count_cookies(fresh, page2.site, world.tracking_list)
    print(f"without consent: {counts2.first_party} first-party, "
          f"{counts2.third_party} third-party, "
          f"{counts2.tracking} tracking cookies")

    # 6. Convenience: the crawler wraps this whole flow with repeats.
    crawler = Crawler(world)
    measurement = crawler.measure_accept_cookies("DE", domain, repeats=5)
    print(f"\n5-visit average: fp={measurement.avg_first_party:.1f} "
          f"tp={measurement.avg_third_party:.1f} "
          f"tracking={measurement.avg_tracking:.1f}")


if __name__ == "__main__":
    main()
