#!/usr/bin/env python3
"""Quickstart: detect a cookiewall by hand, then run campaigns via repro.api.

Runs in a few seconds::

    python examples/quickstart.py
"""

from repro.api import (
    CrawlSpec,
    EngineSpec,
    MeasureSpec,
    OutputSpec,
    RunSpec,
    Session,
    WorldSpec,
)
from repro.bannerclick import BannerClick, accept_banner
from repro.httpkit import CookieJar
from repro.measure import count_cookies


def main() -> None:
    # 1. One Session owns the world (built lazily, cached) and the
    #    engine configuration every campaign in this script shares.
    session = Session(WorldSpec(scale=0.02, seed=7),
                      engine=EngineSpec(workers=2))
    world = session.world
    print("world:", world.stats())

    # 2. Pick a cookiewall site and visit it from the Frankfurt VP.
    domain = sorted(world.wall_domains)[0]
    jar = CookieJar()
    browser = world.browser("DE", jar=jar)
    page = browser.visit(domain)
    print(f"\nvisited https://{domain}/ from Frankfurt")

    # 3. Run the BannerClick detector on the raw page.
    detector = BannerClick()
    detection = detector.detect(page)
    print(f"banner found:    {detection.found} ({detection.location})")
    print(f"is cookiewall:   {detection.is_cookiewall}")
    print(f"matched words:   {detection.wall_word_match}, "
          f"currency: {detection.currency_matches}")
    print(f"banner text:     {detection.text[:100]}...")

    # 4. Accept the wall and reload — trackers now load.
    accept_banner(browser, page, detection)
    page = browser.reload(page)
    counts = count_cookies(jar, page.site, world.tracking_list)
    print(f"\nafter accepting: {counts.first_party} first-party, "
          f"{counts.third_party} third-party, "
          f"{counts.tracking} tracking cookies")

    # 5. A whole detection crawl is one session call.
    crawl = session.crawl(CrawlSpec(vps=("DE",)))
    walls = sum(1 for r in crawl.iter_records() if r.is_cookiewall)
    print(f"\ndetection crawl: {crawl.record_count} visits, "
          f"{walls} cookiewall sightings "
          f"({crawl.summary()['tasks_per_sec']:.0f} tasks/s)")

    # 6. Repeated accept-mode cookie measurements on that one site.
    measurement = session.measure(
        MeasureSpec(vp="DE", mode="accept", repeats=5, domains=(domain,))
    ).records[0]
    print(f"5-visit average: fp={measurement.avg_first_party:.1f} "
          f"tp={measurement.avg_third_party:.1f} "
          f"tracking={measurement.avg_tracking:.1f}")

    # 7. The same campaign as one serialisable artefact: a RunSpec
    #    round-trips through dict/TOML/JSON and replays anywhere.
    spec = RunSpec(
        kind="measure",
        world=WorldSpec(scale=0.02, seed=7),
        engine=EngineSpec(workers=2),
        measure=MeasureSpec(vp="DE", mode="accept", repeats=5,
                            domains=(domain,)),
        output=OutputSpec(),
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec
    replayed = Session(spec).run().records[0]
    assert replayed.to_dict() == measurement.to_dict()
    print("\nspec round-trip: RunSpec.from_dict(spec.to_dict()) == spec")
    print("spec replay:     Session(spec).run() reproduced the "
          "measurement exactly")


if __name__ == "__main__":
    main()
