#!/usr/bin/env python3
"""Country landscape: the Table 1 / §4.1 pipeline on a small world.

Crawls every vantage point, prints Table 1 and the landscape summary —
the miniature version of the paper's headline measurement::

    python examples/country_landscape.py [scale]
"""

import sys

from repro.analysis.report import compute_landscape
from repro.analysis.tables import compute_table1
from repro.measure import Crawler
from repro.webgen import build_world


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    world = build_world(scale=scale, seed=2023)
    print(f"built world: {len(world.crawl_targets)} reachable targets, "
          f"{len(world.wall_domains)} true cookiewalls\n")

    crawler = Crawler(world)
    crawl = crawler.crawl_all()  # all 8 vantage points

    table = compute_table1(world, crawl)
    print(table.render())
    print()
    print(compute_landscape(world, crawl).render())

    # Which sites does only the EU see?
    eu_only = sorted(
        set(crawl.cookiewall_domains("DE")) - set(crawl.cookiewall_domains("USE"))
    )
    print(f"\nwalls visible from Frankfurt but not Ashburn: {len(eu_only)}")
    for domain in eu_only[:5]:
        print(f"  {domain}")


if __name__ == "__main__":
    main()
