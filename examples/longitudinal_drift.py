#!/usr/bin/env python3
"""Longitudinal drift: re-measure the web four months later.

Models the movement the paper observed between its May and September
2023 snapshots (§4.4 footnote 5): SMP rosters grow, new walls appear,
a few disappear.  The campaign runs through the sharded crawl engine
(every wave is a :class:`CrawlPlan`), so it parallelises and resumes
like any other engine workload::

    python examples/longitudinal_drift.py
"""

from repro.measure.instrumentation import EventLog
from repro.measure.longitudinal import run_longitudinal
from repro.webgen import build_world


def main() -> None:
    world_may = build_world(scale=0.05, seed=2023)
    targets = [
        d for d in world_may.toplists["DE"].domains()
        if world_may.sites[d].reachable
    ]

    log = EventLog()
    campaign = run_longitudinal(
        world_may, months=(0, 4), vp="DE", domains=targets,
        workers=4, event_log=log,
    )

    september = campaign.waves[-1]
    print(september.summary.render())
    print()
    print(campaign.render())

    plans = log.by_kind("plan")
    print()
    print(f"(engine executed {len(plans)} wave plans, "
          f"{sum(p.detail['tasks'] for p in plans)} tasks)")

    comparison = campaign.comparisons()[-1]
    if comparison.appeared:
        print("\nnewly walled sites include:")
        for domain in comparison.appeared[:5]:
            print(f"  {domain}")


if __name__ == "__main__":
    main()
