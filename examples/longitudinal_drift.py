#!/usr/bin/env python3
"""Longitudinal drift: re-measure the web four months later.

Models the movement the paper observed between its May and September
2023 snapshots (§4.4 footnote 5): SMP rosters grow, new walls appear,
a few disappear::

    python examples/longitudinal_drift.py
"""

from repro.measure import Crawler
from repro.measure.longitudinal import compare_rounds, smp_growth
from repro.webgen import build_world
from repro.webgen.evolve import evolve_world


def main() -> None:
    world_may = build_world(scale=0.05, seed=2023)
    world_sept, summary = evolve_world(world_may, months=4)
    print(summary.render())
    print()
    print(smp_growth(world_may, world_sept).render())

    # Crawl the same German toplist in both snapshots.
    targets = [
        d for d in world_may.toplists["DE"].domains()
        if world_may.sites[d].reachable
    ]
    round1 = Crawler(world_may).crawl_all(["DE"], targets)
    targets2 = [d for d in targets if world_sept.sites[d].reachable]
    round2 = Crawler(world_sept).crawl_all(["DE"], targets2)

    print()
    comparison = compare_rounds(round1, round2)
    print(comparison.render())
    if comparison.appeared:
        print("\nnewly walled sites include:")
        for domain in comparison.appeared[:5]:
            print(f"  {domain}")


if __name__ == "__main__":
    main()
