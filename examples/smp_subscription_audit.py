#!/usr/bin/env python3
"""SMP audit: does paying actually stop tracking? (paper §4.4, Fig. 5)

Creates a contentpass account, buys a subscription, then compares the
cookies a subscriber accumulates on partner sites against a user who
clicks "accept"::

    python examples/smp_subscription_audit.py
"""

import statistics

from repro.measure import Crawler
from repro.webgen import build_world


def main() -> None:
    world = build_world(scale=0.05, seed=2023)
    crawler = Crawler(world)
    platform = world.platforms["contentpass"]

    # The paper's manual step: account + one-month subscription (§4.4).
    platform.create_account("auditor@example.org", "s3cret")
    platform.purchase_subscription("auditor@example.org")
    partners = platform.partner_domains
    print(f"contentpass: {len(partners)} partner websites "
          f"({len(world.offlist_partner_domains['contentpass'])} off-toplist)")

    accept, subscribe = [], []
    for domain in partners:
        accept.append(crawler.measure_accept_cookies("DE", domain, repeats=5))
        subscribe.append(
            crawler.measure_subscription_cookies(
                "DE", domain, platform, "auditor@example.org", "s3cret",
                repeats=5,
            )
        )

    def medians(group):
        return (
            statistics.median(m.avg_first_party for m in group),
            statistics.median(m.avg_third_party for m in group),
            statistics.median(m.avg_tracking for m in group),
        )

    fp_a, tp_a, tr_a = medians(accept)
    fp_s, tp_s, tr_s = medians(subscribe)
    print(f"\n{'':<14}{'first-party':>12}{'third-party':>13}{'tracking':>10}")
    print(f"{'accept':<14}{fp_a:>12.1f}{tp_a:>13.1f}{tr_a:>10.1f}")
    print(f"{'subscription':<14}{fp_s:>12.1f}{tp_s:>13.1f}{tr_s:>10.1f}")

    worst = max(accept, key=lambda m: m.avg_tracking)
    print(f"\nheaviest tracker on accept: {worst.domain} "
          f"({worst.avg_tracking:.0f} tracking cookies)")
    assert tr_s == 0.0, "subscribers should see zero tracking cookies"
    print("subscribers see zero tracking cookies — paying works.")


if __name__ == "__main__":
    main()
