"""Determinism + resume guarantees, per executor backend.

The engine promises that for a fixed world seed the final JSONL is
**byte-identical** across ``executor ∈ {serial, thread, process}`` ×
any workers/shards combination × resumed-vs-uninterrupted runs.  This
module is that promise as a test matrix: CI runs it once per backend
(``REPRO_EXECUTOR_BACKEND=serial|thread|process``) so a regression in
any one backend fails its own job; locally, with the variable unset,
every backend runs in one pass.
"""

import os

import pytest

from repro.measure import (
    EXECUTOR_BACKENDS,
    CrawlEngine,
    Crawler,
    FaultInjectingExecutor,
    FaultInjectingProcessExecutor,
)
from repro.measure.instrumentation import EventLog

_ENV_BACKEND = os.environ.get("REPRO_EXECUTOR_BACKEND")
if _ENV_BACKEND is not None and _ENV_BACKEND not in EXECUTOR_BACKENDS:
    raise RuntimeError(
        f"REPRO_EXECUTOR_BACKEND={_ENV_BACKEND!r} is not one of "
        f"{EXECUTOR_BACKENDS}"
    )
BACKENDS = (_ENV_BACKEND,) if _ENV_BACKEND else EXECUTOR_BACKENDS

#: Enough shards that fault injection always hits non-empty ones.
SHARDS = 6
WORKERS = 3


def make_engine(backend, crawler, **kwargs):
    """An engine for *backend* with this module's standard geometry."""
    workers = 1 if backend == "serial" else WORKERS
    return CrawlEngine(
        crawler, workers=workers, shards=SHARDS, backend=backend, **kwargs
    )


def crash_executor(backend, fail_shards):
    """A fault-injecting executor matching *backend*'s failure mode.

    The process harness runs one worker so shards complete in
    submission order: everything before the first killed shard is
    deterministically checkpointed before the pool breaks (a broken
    pool voids *running* futures, so a multi-worker kill could
    otherwise lose arbitrary in-flight shards and make ``resumed``
    flaky).
    """
    if backend == "process":
        return FaultInjectingProcessExecutor(1, fail_shards)
    workers = 1 if backend == "serial" else WORKERS
    return FaultInjectingExecutor(workers, fail_shards, partial=True)


@pytest.fixture(scope="module")
def small_crawler(small_world):
    return Crawler(small_world)


@pytest.fixture(scope="module")
def detection_plan(small_world, small_crawler):
    return small_crawler.plan_detection_crawl(
        ["DE"], small_world.crawl_targets[:48]
    )


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory, small_crawler, detection_plan):
    """The uninterrupted serial spool every backend must reproduce."""
    path = tmp_path_factory.mktemp("reference") / "serial.jsonl"
    CrawlEngine(small_crawler, spool_path=path).execute(detection_plan)
    return path.read_bytes()


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendDeterminism:
    def test_detection_spool_matches_serial_reference(
        self, backend, tmp_path, small_crawler, detection_plan,
        serial_reference,
    ):
        out = tmp_path / f"{backend}.jsonl"
        result = make_engine(
            backend, small_crawler, spool_path=out
        ).execute(detection_plan)
        assert len(result) == len(detection_plan)
        assert out.read_bytes() == serial_reference

    def test_spool_merge_matches_memory_merge(
        self, backend, tmp_path, small_crawler, detection_plan,
        serial_reference,
    ):
        out = tmp_path / "streamed.jsonl"
        result = make_engine(
            backend, small_crawler, spool_path=out, merge="spool"
        ).execute(detection_plan)
        assert result.streamed
        assert result.outcomes is None
        assert result.record_count == len(detection_plan)
        assert out.read_bytes() == serial_reference
        # The per-shard part files are consumed by the join.
        assert not list(tmp_path.glob("streamed.jsonl.shard*"))

    def test_checkpointed_cookie_measurements_identical(
        self, backend, tmp_path, small_world, small_crawler,
    ):
        """Visit-id-consuming measurements: every checkpointed backend
        uses the per-task id regime, so the spools must agree."""
        domains = sorted(small_world.wall_domains)[:4]
        plan = small_crawler.plan_cookie_measurements(
            "DE", domains, mode="accept", repeats=2
        )
        reference = tmp_path / "serial-checkpointed.jsonl"
        CrawlEngine(
            small_crawler, spool_path=reference,
            checkpoint_path=f"{reference}.checkpoint",
        ).execute(plan)
        out = tmp_path / f"{backend}.jsonl"
        make_engine(
            backend, small_crawler, spool_path=out,
            checkpoint_path=f"{out}.checkpoint",
        ).execute(plan)
        assert out.read_bytes() == reference.read_bytes()

    @pytest.mark.parametrize("merge", ["memory", "spool"])
    def test_crashed_run_resumes_byte_identical(
        self, backend, merge, tmp_path, small_crawler, detection_plan,
        serial_reference,
    ):
        """Kill part of the run (worker SIGKILL under the process
        backend, injected crash under threads/serial), resume, and the
        final JSONL must equal the uninterrupted serial run's."""
        out = tmp_path / "crashed.jsonl"
        checkpoint = tmp_path / "crashed.jsonl.checkpoint"
        engine = make_engine(
            backend, small_crawler, spool_path=out, merge=merge,
            checkpoint_path=checkpoint,
            executor=crash_executor(backend, fail_shards=(1, 4)),
        )
        # BrokenProcessPool (process) subclasses RuntimeError, like the
        # thread harness's injected crash.
        with pytest.raises(RuntimeError):
            engine.execute(detection_plan)
        assert checkpoint.exists()
        assert not out.exists()

        log = EventLog()
        result = make_engine(
            backend, small_crawler, spool_path=out, merge=merge,
            checkpoint_path=checkpoint, resume=True, event_log=log,
        ).execute(detection_plan)
        assert result.resumed > 0
        assert result.resumed < len(detection_plan)
        assert out.read_bytes() == serial_reference
        assert not checkpoint.exists()
        (resume_event,) = log.by_kind("resume")
        assert resume_event.detail["completed"] == result.resumed


@pytest.mark.skipif(
    "process" not in BACKENDS,
    reason="process backend excluded by REPRO_EXECUTOR_BACKEND",
)
class TestProcessBackendSpecifics:
    def test_worker_death_loses_only_unfinished_shards(
        self, tmp_path, small_crawler, detection_plan, serial_reference,
    ):
        """A SIGKILLed worker must not take completed shards' work
        with it: the checkpoint retains them and the resume replays
        them instead of re-crawling."""
        out = tmp_path / "killed.jsonl"
        checkpoint = tmp_path / "killed.jsonl.checkpoint"
        engine = make_engine(
            "process", small_crawler, spool_path=out,
            checkpoint_path=checkpoint,
            # One worker processes shards in submission order, so the
            # shards before the killed one deterministically complete
            # (and checkpoint) first.
            executor=FaultInjectingProcessExecutor(1, (SHARDS - 1,)),
        )
        with pytest.raises(RuntimeError):
            engine.execute(detection_plan)
        result = make_engine(
            "process", small_crawler, spool_path=out,
            checkpoint_path=checkpoint, resume=True,
        ).execute(detection_plan)
        assert result.resumed > 0
        assert out.read_bytes() == serial_reference

    def test_per_process_throughput_events(
        self, small_crawler, detection_plan
    ):
        log = EventLog()
        make_engine(
            "process", small_crawler, event_log=log
        ).execute(detection_plan)
        events = log.by_kind("process-throughput")
        assert events, "no per-process throughput emitted"
        assert sum(e.detail["tasks"] for e in events) == len(detection_plan)
        for event in events:
            assert event.detail["pid"] > 0
            assert event.detail["tasks_per_sec"] > 0
        # Shard events carry the worker pid for attribution.
        pids = {e.detail["pid"] for e in events}
        for shard_event in log.by_kind("shard"):
            assert shard_event.detail["pid"] in pids

    def test_custom_crawler_refused(self, small_world):
        class TweakedCrawler(Crawler):
            pass

        engine = make_engine("process", TweakedCrawler(small_world))
        plan = Crawler(small_world).plan_detection_crawl(
            ["DE"], small_world.crawl_targets[:2]
        )
        with pytest.raises(ValueError, match="process backend"):
            engine.execute(plan)

    def test_hand_tuned_world_config_refused(self):
        """A spawn-started worker rebuilds from (seed, scale) alone, so
        non-default population knobs must be refused up front instead
        of silently crawling a different web in the worker."""
        from repro.webgen import build_world
        from repro.webgen.config import WorldConfig

        world = build_world(
            config=WorldConfig(seed=7, scale=0.01, smp_price_cents=399)
        )
        crawler = Crawler(world)
        engine = make_engine("process", crawler)
        plan = crawler.plan_detection_crawl(
            ["DE"], world.crawl_targets[:2]
        )
        with pytest.raises(ValueError, match="non-default knobs"):
            engine.execute(plan)

    def test_configured_detector_crosses_the_process_boundary(
        self, tmp_path, small_world
    ):
        """A non-default BannerClick travels in the shard bundle: the
        process backend must produce the same records as threads, not
        silently fall back to a default detector."""
        from repro.bannerclick import BannerClick

        ablated = Crawler(
            small_world,
            bannerclick=BannerClick(subscription_words=False),
        )
        stock = Crawler(small_world)
        # Pick domains where the ablation is *observable* (the
        # cookiewall classifier half it disables fires on wall sites),
        # so a worker silently substituting a default detector could
        # not pass the byte-equality below.
        differing = [
            domain for domain in sorted(small_world.wall_domains)
            if stock.visit("DE", domain).to_dict()
            != ablated.visit("DE", domain).to_dict()
        ][:10]
        assert differing, "ablation not observable on any wall domain"
        plan = ablated.plan_detection_crawl(["DE"], differing)
        thread_out = tmp_path / "thread.jsonl"
        make_engine(
            "thread", ablated, spool_path=thread_out
        ).execute(plan)
        process_out = tmp_path / "process.jsonl"
        make_engine(
            "process", ablated, spool_path=process_out
        ).execute(plan)
        assert process_out.read_bytes() == thread_out.read_bytes()
        # And the stock detector really does record these differently.
        default_out = tmp_path / "default.jsonl"
        make_engine(
            "process", stock, spool_path=default_out
        ).execute(plan)
        assert default_out.read_bytes() != process_out.read_bytes()

    def test_spool_merge_into_fresh_directory(
        self, tmp_path, small_crawler, detection_plan, serial_reference
    ):
        """Shard part files open before the final join — a not-yet-
        existing output directory must be created, as in memory mode."""
        out = tmp_path / "new" / "dir" / "out.jsonl"
        result = make_engine(
            "process", small_crawler, spool_path=out, merge="spool"
        ).execute(detection_plan)
        assert result.record_count == len(detection_plan)
        assert out.read_bytes() == serial_reference

    def test_injected_process_executor_forces_per_task_ids(
        self, tmp_path, small_world, small_crawler
    ):
        """An explicitly injected ProcessExecutor is as parallel as
        backend='process': it must flip the visit-id regime (worker
        processes cannot share the serial counter) and the shards
        default, or the engine misreports the records it produces."""
        from repro.measure import CrawlEngine, ProcessExecutor

        engine = CrawlEngine(
            small_crawler, executor=ProcessExecutor(2)
        )
        assert engine.per_task_ids
        assert engine.shards > 1
        domains = sorted(small_world.wall_domains)[:3]
        plan = small_crawler.plan_cookie_measurements(
            "DE", domains, mode="accept", repeats=2
        )
        injected = [m.to_dict() for m in engine.execute(plan).records]
        named = [
            m.to_dict()
            for m in make_engine("process", small_crawler).execute(plan).records
        ]
        assert injected == named

    def test_crashed_join_preserves_previous_output(
        self, tmp_path, small_crawler, detection_plan, serial_reference
    ):
        """The k-way join streams to a sibling and renames on success:
        a failure mid-join must never truncate an older complete
        output."""
        from repro.measure.storage import merge_record_spools

        out = tmp_path / "out.jsonl"
        out.write_bytes(serial_reference)
        part = tmp_path / "bad.part"
        part.write_text(
            '{"kind": "outcome", "index": 0, "record": {"type": "Nope"}}\n'
            '{"kind": "outcome", "index": 1, "record": null}\n'
        )
        with pytest.raises(ValueError):
            merge_record_spools([part], out)
        assert out.read_bytes() == serial_reference

    def test_plan_event_names_backend(self, small_crawler, detection_plan):
        log = EventLog()
        make_engine(
            "process", small_crawler, event_log=log
        ).execute(detection_plan)
        (plan_event,) = log.by_kind("plan")
        assert plan_event.detail["backend"] == "process"
