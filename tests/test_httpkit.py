"""Tests for headers, cookies (RFC 6265 subset), and HTTP messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CookieError
from repro.httpkit import (
    Cookie,
    CookieJar,
    Headers,
    NaiveCookieJar,
    Request,
    Response,
    domain_match,
    parse_set_cookie,
)
from repro.httpkit.cookies import path_match
from repro.urlkit import parse

PAGE = parse("https://www.news.de/article")


class TestHeaders:
    def test_case_insensitive_get(self):
        h = Headers()
        h.add("Content-Type", "text/html")
        assert h.get("content-type") == "text/html"
        assert "CONTENT-TYPE" in h

    def test_multi_value(self):
        h = Headers()
        h.add("Set-Cookie", "a=1")
        h.add("set-cookie", "b=2")
        assert h.get_all("Set-Cookie") == ["a=1", "b=2"]
        assert h.get("set-cookie") == "a=1"

    def test_set_replaces(self):
        h = Headers([("X", "1"), ("x", "2")])
        h.set("X", "3")
        assert h.get_all("x") == ["3"]

    def test_remove_and_len(self):
        h = Headers({"a": "1", "b": "2"})
        h.remove("a")
        assert len(h) == 1

    def test_copy_is_independent(self):
        h = Headers({"a": "1"})
        c = h.copy()
        c.add("b", "2")
        assert "b" not in h

    def test_to_dict_first_wins(self):
        h = Headers([("A", "1"), ("a", "2")])
        assert h.to_dict() == {"a": "1"}


class TestDomainMatch:
    def test_exact(self):
        assert domain_match("news.de", "news.de")

    def test_subdomain(self):
        assert domain_match("www.news.de", "news.de")

    def test_not_suffix_trick(self):
        assert not domain_match("evilnews.de", "news.de")

    def test_no_reverse_match(self):
        assert not domain_match("news.de", "www.news.de")

    def test_path_match(self):
        assert path_match("/a/b", "/a")
        assert path_match("/a/b", "/a/")
        assert path_match("/a", "/a")
        assert not path_match("/ab", "/a")
        assert not path_match("/", "/a")


class TestParseSetCookie:
    def test_simple(self):
        c = parse_set_cookie("sid=abc123", PAGE)
        assert c.name == "sid"
        assert c.value == "abc123"
        assert c.domain == "www.news.de"
        assert c.host_only

    def test_domain_attribute(self):
        c = parse_set_cookie("sid=x; Domain=news.de; Path=/a", PAGE)
        assert c.domain == "news.de"
        assert not c.host_only
        assert c.path == "/a"

    def test_leading_dot_domain(self):
        c = parse_set_cookie("sid=x; Domain=.news.de", PAGE)
        assert c.domain == "news.de"

    def test_flags(self):
        c = parse_set_cookie("sid=x; Secure; HttpOnly; SameSite=None", PAGE)
        assert c.secure and c.http_only and c.same_site == "none"

    def test_max_age(self):
        c = parse_set_cookie("sid=x; Max-Age=3600", PAGE)
        assert c.max_age == 3600
        assert not c.is_session

    def test_rejects_foreign_domain(self):
        with pytest.raises(CookieError):
            parse_set_cookie("sid=x; Domain=other.de", PAGE)

    def test_rejects_public_suffix(self):
        with pytest.raises(CookieError):
            parse_set_cookie("sid=x; Domain=de", PAGE)

    def test_rejects_nameless(self):
        with pytest.raises(CookieError):
            parse_set_cookie("=value", PAGE)
        with pytest.raises(CookieError):
            parse_set_cookie("novalue", PAGE)

    def test_rejects_bad_max_age(self):
        with pytest.raises(CookieError):
            parse_set_cookie("sid=x; Max-Age=soon", PAGE)

    def test_quoted_value(self):
        assert parse_set_cookie('sid="abc"', PAGE).value == "abc"


class TestCookieJar:
    def make_jar(self):
        jar = CookieJar()
        jar.set_from_header("fp=1; Domain=news.de", PAGE)
        tracker = parse("https://ads.trackmax.com/pixel")
        jar.set_from_header("uid=42; Domain=trackmax.com", tracker)
        return jar

    def test_set_and_len(self):
        assert len(self.make_jar()) == 2

    def test_replacement_same_key(self):
        jar = CookieJar()
        jar.set_from_header("a=1; Domain=news.de", PAGE)
        jar.set_from_header("a=2; Domain=news.de", PAGE)
        assert len(jar) == 1
        assert jar.get("a", "news.de").value == "2"

    def test_rejected_cookie_returns_none(self):
        jar = CookieJar()
        assert jar.set_from_header("a=1; Domain=evil.com", PAGE) is None
        assert len(jar) == 0

    def test_expired_deletes(self):
        jar = CookieJar()
        jar.set_from_header("a=1; Domain=news.de", PAGE)
        jar.set_from_header("a=gone; Domain=news.de; Max-Age=0", PAGE)
        assert len(jar) == 0

    def test_cookies_for_matching(self):
        jar = self.make_jar()
        got = jar.cookies_for(parse("https://sub.news.de/x"))
        assert [c.name for c in got] == ["fp"]

    def test_host_only_restriction(self):
        jar = CookieJar()
        jar.set_from_header("h=1", PAGE)  # host-only on www.news.de
        assert jar.cookies_for(parse("https://news.de/")) == []
        assert len(jar.cookies_for(PAGE)) == 1

    def test_secure_requires_https(self):
        jar = CookieJar()
        jar.set_from_header("s=1; Secure", PAGE)
        assert jar.cookies_for(parse("http://www.news.de/")) == []

    def test_path_restriction(self):
        jar = CookieJar()
        jar.set_from_header("p=1; Path=/admin", PAGE)
        assert jar.cookies_for(parse("https://www.news.de/other")) == []
        assert len(jar.cookies_for(parse("https://www.news.de/admin/x"))) == 1

    def test_samesite_strict_cross_site(self):
        jar = CookieJar()
        jar.set_from_header("ss=1; SameSite=Strict", PAGE)
        tracker_url = parse("https://www.news.de/embed")
        got = jar.cookies_for(tracker_url, first_party_site="other.de")
        assert got == []

    def test_partition_by_party(self):
        jar = self.make_jar()
        first, third = jar.partition_by_party("news.de")
        assert [c.name for c in first] == ["fp"]
        assert [c.name for c in third] == ["uid"]

    def test_clear_site_only(self):
        jar = self.make_jar()
        removed = jar.clear(site="news.de")
        assert removed == 1
        assert len(jar) == 1

    def test_clear_all(self):
        jar = self.make_jar()
        assert jar.clear() == 2
        assert len(jar) == 0

    def test_snapshot_independent(self):
        jar = self.make_jar()
        snap = jar.snapshot()
        jar.clear()
        assert len(snap) == 2

    def test_has(self):
        jar = self.make_jar()
        assert jar.has("fp", "news.de")
        assert not jar.has("fp", "other.de")


class TestIndexedCookieJar:
    """The registrable-domain bucket index behind ``cookies_for``.

    The randomized half of this evidence lives in
    ``tests/test_hotpaths_differential.py`` (indexed vs
    :class:`NaiveCookieJar` under generated cookie workloads); these
    are the deliberate edge cases.
    """

    def test_unbucketable_domains_still_match(self):
        # A cookie on a host with no registrable domain (bare public
        # suffix, localhost) cannot be site-bucketed but must still be
        # carried — the catch-all bucket is always scanned.
        jar = CookieJar()
        jar.set_cookie(Cookie(name="lh", value="1", domain="localhost"))
        jar.set_cookie(Cookie(
            name="ps", value="1", domain="co.uk", host_only=False
        ))
        got = jar.cookies_for(parse("http://localhost/"))
        assert [c.name for c in got] == ["lh"]
        got = jar.cookies_for(parse("http://deep.under.co.uk/"))
        assert [c.name for c in got] == ["ps"]

    def test_order_spans_buckets_in_insertion_order(self):
        jar, naive = CookieJar(), NaiveCookieJar()
        for j in (jar, naive):
            j.set_cookie(Cookie(
                name="a", value="1", domain="news.de", host_only=False
            ))
            j.set_cookie(Cookie(name="b", value="1", domain="localhost"))
            j.set_cookie(Cookie(
                name="c", value="1", domain="sub.news.de", host_only=False
            ))
        # A host matching both the site bucket and nothing unbucketed
        # keeps the global insertion order a linear scan would give.
        url = parse("https://x.sub.news.de/")
        assert [c.name for c in jar.cookies_for(url)] == ["a", "c"]
        assert [c.name for c in naive.cookies_for(url)] == ["a", "c"]

    def test_replacement_keeps_original_position(self):
        jar = CookieJar()
        naive = NaiveCookieJar()
        for j in (jar, naive):
            j.set_cookie(Cookie(
                name="first", value="1", domain="news.de", host_only=False
            ))
            j.set_cookie(Cookie(
                name="second", value="1", domain="news.de", host_only=False
            ))
            j.set_cookie(Cookie(       # replaces "first", keeps its slot
                name="first", value="2", domain="news.de", host_only=False
            ))
        url = parse("https://news.de/")
        assert [c.name for c in jar.cookies_for(url)] == [
            c.name for c in naive.cookies_for(url)
        ] == ["first", "second"]
        assert jar.cookies_for(url)[0].value == "2"

    def test_clear_site_prunes_index(self):
        jar = CookieJar()
        jar.set_cookie(Cookie(
            name="a", value="1", domain="news.de", host_only=False
        ))
        jar.set_cookie(Cookie(
            name="b", value="1", domain="trackmax.com", host_only=False
        ))
        assert jar.clear(site="news.de") == 1
        assert jar.cookies_for(parse("https://news.de/")) == []
        assert [
            c.name for c in jar.cookies_for(parse("https://trackmax.com/"))
        ] == ["b"]

    def test_snapshot_copies_index(self):
        jar = CookieJar()
        jar.set_cookie(Cookie(
            name="a", value="1", domain="news.de", host_only=False
        ))
        snap = jar.snapshot()
        jar.clear()
        url = parse("https://news.de/")
        assert [c.name for c in snap.cookies_for(url)] == ["a"]
        assert jar.cookies_for(url) == []

    def test_naive_jar_is_a_cookiejar(self):
        # The oracle shares storage/mutation with the indexed jar; only
        # the query strategy differs.
        naive = NaiveCookieJar()
        naive.set_from_header("fp=1; Domain=news.de", PAGE)
        assert len(naive.cookies_for(parse("https://sub.news.de/"))) == 1
        assert isinstance(naive.snapshot(), NaiveCookieJar)


class TestMessages:
    def test_request_coerces_strings(self):
        r = Request(url="https://a.de/x", initiator="https://b.de/")
        assert r.url.host == "a.de"
        assert r.is_third_party

    def test_first_party_request(self):
        r = Request(url="https://cdn.a.de/x", initiator="https://www.a.de/")
        assert not r.is_third_party

    def test_no_initiator_is_first_party(self):
        assert not Request(url="https://a.de/").is_third_party

    def test_bad_resource_type(self):
        with pytest.raises(ValueError):
            Request(url="https://a.de/", resource_type="wasm")

    def test_response_cookies(self):
        req = Request(url="https://a.de/")
        resp = Response(request=req)
        resp.add_cookie("a=1")
        resp.add_cookie("b=2; Secure")
        assert resp.set_cookie_headers == ["a=1", "b=2; Secure"]
        assert resp.ok

    def test_response_content_type_default(self):
        resp = Response(request=Request(url="https://a.de/"))
        assert resp.content_type == "text/html"


class TestCookieProperties:
    @given(
        name=st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
        value=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", max_size=12),
    )
    def test_simple_cookie_round_trip(self, name, value):
        c = parse_set_cookie(f"{name}={value}", PAGE)
        assert c.name == name
        assert c.value == value

    @given(sub=st.sampled_from(["www", "m", "shop", "news"]))
    def test_domain_cookie_matches_all_subdomains(self, sub):
        jar = CookieJar()
        jar.set_from_header("x=1; Domain=news.de", PAGE)
        assert len(jar.cookies_for(parse(f"https://{sub}.news.de/"))) == 1
